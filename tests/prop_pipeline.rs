//! Cross-crate property tests: invariants of the full feature-config and
//! practicality pipeline under randomly shaped star schemas.

use proptest::prelude::*;

use hamlet::prelude::*;

/// Random small OneXr-shaped parameter sets.
fn params_strategy() -> impl Strategy<Value = OneXrParams> {
    (
        50usize..300, // n_s
        2u32..60,     // n_r
        1usize..5,    // d_s
        1usize..5,    // d_r
        0u64..1000,   // seed
    )
        .prop_map(|(n_s, n_r, d_s, d_r, seed)| OneXrParams {
            n_s,
            n_r,
            d_s,
            d_r,
            seed,
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn feature_configs_partition_the_feature_space(params in params_strategy()) {
        let g = onexr::generate(params);
        let all = build_dataset(&g.star, &FeatureConfig::JoinAll).unwrap();
        let nojoin = build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap();
        let nofk = build_dataset(&g.star, &FeatureConfig::NoFK).unwrap();
        // JoinAll = home + fk + foreign; NoJoin = home + fk; NoFK = home + foreign.
        prop_assert_eq!(all.n_features(), params.d_s + 1 + params.d_r);
        prop_assert_eq!(nojoin.n_features(), params.d_s + 1);
        prop_assert_eq!(nofk.n_features(), params.d_s + params.d_r);
        // Labels identical across configs.
        prop_assert_eq!(all.labels(), nojoin.labels());
        prop_assert_eq!(all.labels(), nofk.labels());
    }

    #[test]
    fn splits_are_a_partition(params in params_strategy()) {
        let g = onexr::generate(params);
        let (train, val, test) = (g.train_idx(), g.val_idx(), g.test_idx());
        prop_assert_eq!(train.len() + val.len() + test.len(), g.n_total());
        // Contiguous, disjoint, ordered.
        prop_assert!(train.iter().max().unwrap() < val.iter().min().unwrap());
        prop_assert!(val.iter().max().unwrap() < test.iter().min().unwrap());
    }

    #[test]
    fn compression_maps_are_total_and_within_budget(
        params in params_strategy(),
        budget in 1u32..20,
    ) {
        let g = onexr::generate(params);
        let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap();
        let fk = params.d_s; // FK comes after the home features
        for method in [
            CompressionMethod::RandomHash { seed: 5 },
            CompressionMethod::SortBased,
            CompressionMethod::RateBased,
        ] {
            let comp = build_compression(&ds, fk, budget, method).unwrap();
            prop_assert_eq!(comp.map.len() as u32, params.n_r);
            let max_group = comp.map.iter().copied().max().unwrap();
            prop_assert!(max_group < comp.budget);
            prop_assert!(comp.budget <= params.n_r.max(budget));
            let applied = comp.apply(&ds).unwrap();
            prop_assert!(applied.feature(fk).cardinality <= params.n_r.max(1));
        }
    }

    #[test]
    fn tree_predictions_are_total_over_the_domain(params in params_strategy()) {
        // Whatever rows exist in the domain (seen or not), prediction must
        // not panic and must return a boolean.
        let g = onexr::generate(params);
        let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
        let tree = DecisionTree::fit(
            &data.train,
            TreeParams::new(SplitCriterion::Gini).with_minsplit(2).with_cp(0.0),
        )
        .unwrap();
        // Build an adversarial row per FK code.
        let d = data.train.n_features();
        for code in 0..params.n_r {
            let mut row = vec![0u32; d];
            row[params.d_s] = code;
            let _ = tree.predict_row(&row);
        }
    }

    #[test]
    fn bias_variance_identity_against_bayes_labels(
        n in 3usize..40,
        runs in 2usize..8,
        seed in 0u64..500,
    ) {
        // Noise-free: labels == optimal ⇒ error = bias + net variance.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let truth: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let preds: Vec<Vec<bool>> = (0..runs)
            .map(|_| (0..n).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        prop_assert!((bv.avg_error - (bv.bias + bv.net_variance)).abs() < 1e-12);
        prop_assert!(bv.bias >= 0.0 && bv.bias <= 1.0);
        prop_assert!(bv.unbiased_variance >= 0.0);
        prop_assert!(bv.biased_variance >= 0.0);
    }
}
