//! End-to-end integration tests: the full pipeline (generator → star schema
//! → feature config → tuned model → accuracy) across crates, pinned to the
//! paper's headline claims at test-friendly scales.

use hamlet::prelude::*;

fn quick() -> Budget {
    Budget::quick()
}

#[test]
fn nojoin_tracks_joinall_for_every_model_family_on_onexr() {
    // The paper's central claim, exercised through every model family on a
    // healthy-tuple-ratio OneXr instance (ratio 1000/40 = 25).
    let g = onexr::generate(OneXrParams {
        n_s: 600,
        ..Default::default()
    });
    let budget = quick();
    for spec in [
        ModelSpec::TreeGini,
        ModelSpec::SvmRbf,
        ModelSpec::NaiveBayesBfs,
        ModelSpec::LogRegL1,
    ] {
        let ja = run_experiment(&g, spec, &FeatureConfig::JoinAll, &budget).unwrap();
        let nj = run_experiment(&g, spec, &FeatureConfig::NoJoin, &budget).unwrap();
        let gap = (ja.test_accuracy - nj.test_accuracy).abs();
        assert!(
            gap < 0.08,
            "{}: JoinAll {} vs NoJoin {} (gap {gap})",
            spec.name(),
            ja.test_accuracy,
            nj.test_accuracy
        );
    }
}

#[test]
fn yelp_low_tuple_ratio_degrades_nojoin() {
    // The exception that proves the rule: Yelp's users dimension (ratio
    // ≈ 2.5) carries signal NoJoin cannot fully recover.
    let g = EmulatorSpec::yelp().generate_scaled(4000, 99);
    let budget = quick();
    let ja = run_experiment(
        &g,
        ModelSpec::NaiveBayesBfs,
        &FeatureConfig::JoinAll,
        &budget,
    )
    .unwrap();
    let nj = run_experiment(
        &g,
        ModelSpec::NaiveBayesBfs,
        &FeatureConfig::NoJoin,
        &budget,
    )
    .unwrap();
    assert!(
        ja.test_accuracy - nj.test_accuracy > 0.015,
        "expected a visible NoJoin drop on Yelp: JoinAll {} vs NoJoin {}",
        ja.test_accuracy,
        nj.test_accuracy
    );
}

#[test]
fn advisor_agrees_with_measured_accuracy_on_safe_dataset() {
    // Walmart: both dimensions clear every threshold, and measured NoJoin
    // accuracy confirms the call.
    let g = EmulatorSpec::walmart().generate_scaled(3000, 5);
    let report = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
    assert!(report.all_avoidable());

    let budget = quick();
    let ja = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::JoinAll, &budget).unwrap();
    let nj = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::NoJoin, &budget).unwrap();
    assert!((ja.test_accuracy - nj.test_accuracy).abs() < 0.05);
}

#[test]
fn experiment_pipeline_is_seeded_and_reproducible() {
    let budget = quick();
    let run = || {
        let g = EmulatorSpec::books().generate_scaled(1500, 21);
        run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::NoJoin, &budget)
            .unwrap()
            .test_accuracy
    };
    assert_eq!(run(), run());
}

#[test]
fn nofk_loses_fk_effect_signal() {
    // LastFM plants a strong per-user FK effect that X_R cannot express
    // (profile pooling): NoFK must land visibly below JoinAll.
    let g = EmulatorSpec::lastfm().generate_scaled(4000, 3);
    let budget = quick();
    let ja = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::JoinAll, &budget).unwrap();
    let nofk = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::NoFK, &budget).unwrap();
    assert!(
        ja.test_accuracy - nofk.test_accuracy > 0.03,
        "JoinAll {} vs NoFK {}",
        ja.test_accuracy,
        nofk.test_accuracy
    );
}

#[test]
fn open_domain_dimension_never_discarded() {
    // Expedia's searches table is open-domain: even NoJoin keeps its
    // features, and its FK is never a feature in any config.
    let g = EmulatorSpec::expedia().generate_scaled(1200, 8);
    for config in [
        FeatureConfig::JoinAll,
        FeatureConfig::NoJoin,
        FeatureConfig::NoFK,
    ] {
        let ds = build_dataset(&g.star, &config).unwrap();
        let has_open_foreign = ds
            .features()
            .iter()
            .any(|f| f.provenance == Provenance::Foreign { dim: 1 });
        let has_open_fk = ds
            .features()
            .iter()
            .any(|f| f.provenance == Provenance::ForeignKey { dim: 1 });
        assert!(
            has_open_foreign,
            "{}: open dim features missing",
            config.name()
        );
        assert!(!has_open_fk, "{}: open-domain FK leaked in", config.name());
    }
}

#[test]
fn materialized_joins_preserve_the_fd_on_every_emulator() {
    for spec in EmulatorSpec::all() {
        let g = spec.generate_scaled(800, 13);
        let joined = g.star.materialize_all().unwrap();
        for (i, dim) in g.star.dims().iter().enumerate() {
            let fk_name = format!("fk_{}", dim.table.name());
            let foreign: Vec<String> = joined
                .schema()
                .columns()
                .iter()
                .filter(|c|

                    matches!(c.role, hamlet::relation::schema::ColumnRole::ForeignFeature { dim } if dim == i))
                .map(|c| c.name.clone())
                .collect();
            let refs: Vec<&str> = foreign.iter().map(String::as_str).collect();
            assert!(
                hamlet::relation::fd::check_fd(&joined, &fk_name, &refs).unwrap(),
                "{}: FD {} -> X_R violated",
                spec.name,
                fk_name
            );
        }
    }
}
