//! Integration tests for the §6 practicality machinery (FK compression and
//! smoothing) running over the full pipeline.

use hamlet::ml::dataset::Provenance;
use hamlet::prelude::*;

fn fk_index(ds: &CatDataset) -> usize {
    ds.features()
        .iter()
        .position(|f| matches!(f.provenance, Provenance::ForeignKey { .. }))
        .expect("dataset has an FK feature")
}

#[test]
fn compression_is_consistent_across_splits() {
    let g = onexr::generate(OneXrParams {
        n_s: 800,
        n_r: 100,
        ..Default::default()
    });
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let fk = fk_index(&data.train);
    for method in [
        CompressionMethod::RandomHash { seed: 4 },
        CompressionMethod::SortBased,
        CompressionMethod::RateBased,
    ] {
        let comp = build_compression(&data.train, fk, 8, method).unwrap();
        let train = comp.apply(&data.train).unwrap();
        let test = comp.apply(&data.test).unwrap();
        // Same feature space on both splits.
        assert_eq!(train.feature(fk).cardinality, test.feature(fk).cardinality);
        assert!(train.feature(fk).cardinality <= 8);
        // And a model trained on one can score the other.
        let tree = DecisionTree::fit(&train, TreeParams::new(SplitCriterion::Gini)).unwrap();
        let acc = tree.accuracy(&test);
        assert!(acc > 0.4, "degenerate accuracy {acc} for {method:?}");
    }
}

#[test]
fn rate_based_compression_preserves_fk_signal_where_entropy_sort_cannot() {
    // OneXr: all signal flows through the FK. Rate-based compression to 4
    // groups must stay near the uncompressed accuracy; the class-symmetric
    // entropy sort collapses (documented limitation of the paper's method).
    let g = onexr::generate(OneXrParams {
        n_s: 1500,
        n_r: 300,
        ..Default::default()
    });
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let fk = fk_index(&data.train);
    let budget = Budget::quick();

    let acc_of = |method: Option<CompressionMethod>| -> f64 {
        let (train, val, test) = match method {
            Some(m) => {
                let comp = build_compression(&data.train, fk, 4, m).unwrap();
                (
                    comp.apply(&data.train).unwrap(),
                    comp.apply(&data.val).unwrap(),
                    comp.apply(&data.test).unwrap(),
                )
            }
            None => (data.train.clone(), data.val.clone(), data.test.clone()),
        };
        let tuned = ModelSpec::TreeGini
            .fit_tuned(&train, &val, &budget)
            .unwrap();
        tuned.model.accuracy(&test)
    };

    let uncompressed = acc_of(None);
    let rate = acc_of(Some(CompressionMethod::RateBased));
    assert!(
        uncompressed - rate < 0.05,
        "rate-based lost too much: {uncompressed} -> {rate}"
    );
}

#[test]
fn xr_smoothing_beats_random_on_onexr() {
    // Figure 11's qualitative claim as a pinned test: at γ = 0.5, X_R-based
    // smoothing should beat random reassignment.
    let budget = Budget::quick();
    let mut random_acc = 0.0;
    let mut xr_acc = 0.0;
    let runs = 5;
    for k in 0..runs {
        let g = onexr::generate(OneXrParams {
            n_s: 1000,
            n_r: 40,
            unseen_frac: 0.5,
            seed: 1000 + k,
            ..Default::default()
        });
        let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
        let fk = fk_index(&data.train);
        let dim = &g.star.dims()[0].table;
        for (is_xr, acc_sum) in [(false, &mut random_acc), (true, &mut xr_acc)] {
            let method = if is_xr {
                SmoothingMethod::XrBased
            } else {
                SmoothingMethod::Random { seed: 77 }
            };
            let smoothing = build_smoothing(&data.train, fk, method, Some(dim)).unwrap();
            assert!(smoothing.n_unseen > 0, "γ=0.5 must hide some codes");
            let val = smoothing.apply(&data.val).unwrap();
            let test = smoothing.apply(&data.test).unwrap();
            let tuned = ModelSpec::TreeGini
                .fit_tuned(&data.train, &val, &budget)
                .unwrap();
            *acc_sum += tuned.model.accuracy(&test);
        }
    }
    random_acc /= runs as f64;
    xr_acc /= runs as f64;
    assert!(
        xr_acc > random_acc + 0.05,
        "X_R smoothing {xr_acc} should beat random {random_acc}"
    );
}

#[test]
fn smoothing_map_is_total_and_identity_on_seen() {
    let g = onexr::generate(OneXrParams {
        n_s: 400,
        n_r: 60,
        unseen_frac: 0.4,
        ..Default::default()
    });
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let fk = fk_index(&data.train);
    let seen = seen_mask(&data.train, fk);
    let smoothing =
        build_smoothing(&data.train, fk, SmoothingMethod::Random { seed: 2 }, None).unwrap();
    for (code, &is_seen) in seen.iter().enumerate() {
        let target = smoothing.map[code] as usize;
        if is_seen {
            assert_eq!(target, code);
        } else {
            assert!(seen[target], "unseen code {code} mapped to unseen {target}");
        }
    }
}
