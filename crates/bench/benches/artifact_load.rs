//! Artifact format benchmarks: parse-bounded (JSON) vs page-fault-bounded
//! (v3 binary, heap and mmap) loading, and the v2-vs-v3 size ratio.
//!
//! ```bash
//! cargo bench --bench artifact_load
//! ```
//!
//! The interesting comparison is `v2_json_parse` against `v3_mmap`: the
//! JSON path re-parses every weight float on each load, while the mmap
//! path does a handful of header reads and borrows the weight sections —
//! the kernel pages them in lazily on first prediction (measured separately
//! by `v3_mmap_then_predict`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::model::Classifier;
use hamlet_relation::domain::CatDomain;
use hamlet_serve::artifact::{Format, LoadMode, ModelArtifact, TrainingMetadata, FORMAT_VERSION};

/// A paper-shaped ANN (256 + 64 hidden units) over a moderately wide
/// one-hot space, so the artifact is genuinely weight-dominated (~1 MB of
/// f32s) like the models the format was built for.
fn ann_artifact() -> ModelArtifact {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE);
    let d = 8usize;
    let k = 16u32;
    let n = 64usize;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), k).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let ds = CatDataset::new(features, rows, labels).unwrap();
    let model = Mlp::fit(
        &ds,
        AnnParams {
            epochs: 1,
            ..AnnParams::new(1e-4, 0.01)
        },
    )
    .unwrap();
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "bench-ann".into(),
        version: 1,
        model: model.into(),
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xB33F,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::Ann,
            train_rows: n,
            metrics: RunResult {
                model: "ANN".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

fn artifact_load(c: &mut Criterion) {
    let artifact = ann_artifact();
    let dir = std::env::temp_dir().join(format!("hamlet-bench-v3-{}", std::process::id()));
    let v3_path = artifact.save(&dir).unwrap();
    let v2_path = artifact.save_format(&dir, Format::V2).unwrap();
    let v3_bytes = std::fs::metadata(&v3_path).unwrap().len();
    let v2_bytes = std::fs::metadata(&v2_path).unwrap().len();
    eprintln!(
        "artifact sizes: v2 json = {v2_bytes} B, v3 binary = {v3_bytes} B \
         (ratio {:.2}x)",
        v2_bytes as f64 / v3_bytes as f64
    );

    let probe: Vec<u32> = vec![1; artifact.contract.width()];
    let mut group = c.benchmark_group("artifact_load");
    group.sample_size(20);
    group.bench_function("v2_json_parse", |b| {
        b.iter(|| black_box(ModelArtifact::load(&v2_path).unwrap()))
    });
    group.bench_function("v3_heap", |b| {
        b.iter(|| black_box(ModelArtifact::load(&v3_path).unwrap()))
    });
    group.bench_function("v3_mmap", |b| {
        b.iter(|| black_box(ModelArtifact::load_with(&v3_path, LoadMode::Mmap).unwrap()))
    });
    // End-to-end "boot and answer one request": load + first prediction,
    // which is where the mmap path pays its (lazy) page faults.
    group.bench_function("v3_mmap_then_predict", |b| {
        b.iter(|| {
            let art = ModelArtifact::load_with(&v3_path, LoadMode::Mmap).unwrap();
            black_box(art.model.predict_row(black_box(&probe)))
        })
    });
    group.bench_function("v3_head_only", |b| {
        b.iter(|| black_box(ModelArtifact::load_head(&v3_path).unwrap()))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, artifact_load);
criterion_main!(benches);
