//! Tiered-cascade serving benchmarks: a calibrated cheap-tree front tier
//! short-circuiting for a weight-heavy MLP, vs. each tier served alone.
//!
//! The cascade's front tree is *distilled*: trained on the MLP's own
//! predictions over the deterministic evaluation rows, then calibrated
//! against agreement-with-the-MLP and thresholded via `pick_threshold` at
//! 0.99 — exactly the construction `hamlet-serve cascade build` performs.
//! The bench asserts ≥99% label agreement between the cascade and the
//! MLP-only artifact on those rows before timing anything, so the speedup
//! numbers are only recorded for a cascade that actually preserves the top
//! tier's answers.
//!
//! All three artifacts run through `execute_batch` — the merged
//! (coalesced) executor path — at 1, 64 and 512 single-row segments.
//! Acceptance: `exec_merged_casc_64x1` ≤ 25% of `exec_merged_mlp_64x1`.
//!
//! Medians land in `BENCH_serve.json` (see the vendored criterion shim).
//!
//! Run with `cargo bench -p hamlet-bench --bench serve_cascade`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::cascade::{pick_threshold, Calibrator, CascadeModel, CascadeTier};
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::server::{execute_batch, AppState, WarmOptions};

/// Single-row segment counts per merged batch (the coalesced shapes).
const SIZES: [usize; 3] = [1, 64, 512];

fn dataset(seed: u64, n: usize) -> CatDataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = 8usize;
    let k = 16u32;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), k).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    CatDataset::new(features, rows, labels).unwrap()
}

fn artifact_for(model: AnyClassifier, ds: &CatDataset, name: &str) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xCA5C,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "bench".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

fn in_domain_rows(ds: &CatDataset, count: usize, seed: u64) -> Vec<Vec<u32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cards = ds.cardinalities();
    (0..count)
        .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
        .collect()
}

/// MLP top tier, distilled-tree front tier, and the evaluation rows the
/// distillation/calibration ran over.
fn cascade_setup() -> (CatDataset, AnyClassifier, AnyClassifier, Vec<Vec<u32>>) {
    let ds = dataset(0xC0, 96);
    let d = ds.n_features();
    let mlp: AnyClassifier = Mlp::fit(
        &ds,
        AnnParams {
            epochs: 1,
            ..AnnParams::new(1e-4, 0.01)
        },
    )
    .unwrap()
    .into();

    let rows = in_domain_rows(&ds, *SIZES.last().unwrap(), 7);
    let flat: Vec<u32> = rows.iter().flatten().copied().collect();
    let top = mlp.predict_batch(&flat, d);

    // Distill: the tree learns the MLP's answers on the evaluation rows,
    // then gets calibrated against agreement with those same answers.
    let distill =
        CatDataset::new(ds.contract().features().to_vec(), flat.clone(), top.clone()).unwrap();
    let tree: AnyClassifier = DecisionTree::fit(
        &distill,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into();
    let scores = tree.score_batch(&flat, d);
    let agree: Vec<bool> = tree
        .predict_batch(&flat, d)
        .iter()
        .zip(&top)
        .map(|(a, b)| a == b)
        .collect();
    let calibrator = Calibrator::fit_platt(&scores, &agree).unwrap();
    let conf_agree: Vec<(f64, bool)> = scores
        .iter()
        .map(|&s| calibrator.confidence(s))
        .zip(agree)
        .collect();
    let threshold = pick_threshold(&conf_agree, 0.99);
    let cascade = AnyClassifier::Cascade(
        CascadeModel::new(vec![
            CascadeTier {
                model: tree.clone(),
                calibrator,
                threshold,
            },
            CascadeTier {
                model: mlp.clone(),
                calibrator: Calibrator::Platt { a: 0.0, b: 0.0 },
                threshold: 1.0,
            },
        ])
        .unwrap(),
    );

    // Gate before timing: the cascade must preserve ≥99% of the MLP's
    // labels on the deterministic rows, and must actually short-circuit.
    let got = cascade.predict_batch(&flat, d);
    let agreement = got.iter().zip(&top).filter(|(a, b)| a == b).count() as f64 / top.len() as f64;
    assert!(
        agreement >= 0.99,
        "cascade/MLP agreement {agreement:.4} below the 0.99 acceptance bar"
    );
    let AnyClassifier::Cascade(ref c) = cascade else {
        unreachable!()
    };
    let hist = c
        .predict_batch_tiered(&flat, d, 1, flat.len())
        .tier_histogram();
    assert!(hist[0] > 0, "cascade never short-circuited: {hist:?}");
    eprintln!(
        "serve_cascade: threshold {threshold:.4}, agreement {agreement:.4}, tier rows {:?}",
        &hist[..2]
    );
    (ds, tree, cascade, rows)
}

/// Merged executor-path comparison: tree-only, MLP-only and the cascade
/// over 1 / 64 / 512 coalesced single-row segments.
fn exec_cascade(c: &mut Criterion) {
    let (ds, tree, cascade, rows) = cascade_setup();
    let d = ds.n_features();
    let mlp = {
        let AnyClassifier::Cascade(ref casc) = cascade else {
            unreachable!()
        };
        casc.tiers.last().unwrap().model.clone()
    };
    let (state, _) = AppState::warm_full(
        std::env::temp_dir().join("hamlet-bench-cascade-none"),
        WarmOptions::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("serve_cascade");
    for (tag, model) in [("tree", tree), ("mlp", mlp), ("casc", cascade)] {
        let artifact = artifact_for(model, &ds, &format!("casc-{tag}"));
        for n in SIZES {
            let segments: Vec<&[u32]> = rows[..n].iter().map(Vec::as_slice).collect();
            // Warm the EWMA so every shape runs with adaptive shard sizing.
            execute_batch(&state, &artifact, &segments, d);
            group.bench_function(format!("exec_merged_{tag}_{n}x1"), |b| {
                b.iter(|| black_box(execute_batch(&state, &artifact, black_box(&segments), d)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, exec_cascade);
criterion_main!(benches);
