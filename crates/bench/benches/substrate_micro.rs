//! Micro-benchmarks of the substrate hot paths: KFK join materialization,
//! decision-tree split search over a large-domain FK, SMO training on a
//! precomputed match matrix, match-matrix construction, and the two FK
//! compression methods. These are the operations Figure 1's end-to-end
//! numbers decompose into.
//!
//! Run with `cargo bench -p hamlet-bench --bench substrate_micro`.

use criterion::{criterion_group, criterion_main, Criterion};

use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;
use hamlet_ml::prelude::*;

fn join_vs_nojoin_materialization(c: &mut Criterion) {
    let g = EmulatorSpec::movies().generate_scaled(4000, 0x31);
    let mut group = c.benchmark_group("materialize");
    group.bench_function("join_all", |b| {
        b.iter(|| build_dataset(&g.star, &FeatureConfig::JoinAll).expect("builds"))
    });
    group.bench_function("no_join", |b| {
        b.iter(|| build_dataset(&g.star, &FeatureConfig::NoJoin).expect("builds"))
    });
    group.finish();
}

fn tree_fit_large_fk_domain(c: &mut Criterion) {
    let g = onexr::generate(OneXrParams {
        n_s: 2000,
        n_r: 500,
        ..Default::default()
    });
    let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).expect("builds");
    c.bench_function("tree_fit/nojoin_nr500", |b| {
        b.iter(|| {
            DecisionTree::fit(
                &ds,
                TreeParams::new(SplitCriterion::Gini)
                    .with_minsplit(10)
                    .with_cp(1e-3),
            )
            .expect("fits")
        })
    });
}

fn smo_training(c: &mut Criterion) {
    let g = onexr::generate(OneXrParams {
        n_s: 600,
        ..Default::default()
    });
    let ds = build_dataset(&g.star, &FeatureConfig::JoinAll).expect("builds");
    let train = ds.subset(&g.train_idx());
    let mm = MatchMatrix::compute(&train);
    c.bench_function("smo/rbf_n600", |b| {
        b.iter(|| {
            SvmModel::fit_precomputed(
                &train,
                &mm,
                SvmParams::new(KernelKind::Rbf { gamma: 0.1 }, 10.0),
            )
            .expect("fits")
        })
    });
    c.bench_function("match_matrix/n600", |b| {
        b.iter(|| MatchMatrix::compute(&train))
    });
}

fn fk_compression(c: &mut Criterion) {
    let g = onexr::generate(OneXrParams {
        n_s: 4000,
        n_r: 1000,
        ..Default::default()
    });
    let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).expect("builds");
    let train = ds.subset(&g.train_idx());
    let fk = train
        .features()
        .iter()
        .position(|f| {
            matches!(
                f.provenance,
                hamlet_ml::dataset::Provenance::ForeignKey { .. }
            )
        })
        .expect("has an FK");
    let mut group = c.benchmark_group("fk_compression");
    group.bench_function("random_hash", |b| {
        b.iter(|| {
            build_compression(&train, fk, 25, CompressionMethod::RandomHash { seed: 1 })
                .expect("builds")
        })
    });
    group.bench_function("sort_based", |b| {
        b.iter(|| build_compression(&train, fk, 25, CompressionMethod::SortBased).expect("builds"))
    });
    group.finish();
}

criterion_group!(
    benches,
    join_vs_nojoin_materialization,
    tree_fit_large_fk_domain,
    smo_training,
    fk_compression
);
criterion_main!(benches);
