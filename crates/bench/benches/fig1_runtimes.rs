//! Criterion counterpart of **Figure 1**: statistically measured end-to-end
//! runtimes (join materialization + tuning + training + testing) of JoinAll
//! vs NoJoin. The reproduced claim is the *ratio* — NoJoin is consistently
//! faster because it never touches closed-domain dimension tables and
//! trains on fewer features.
//!
//! Run with `cargo bench -p hamlet-bench --bench fig1_runtimes`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

/// Small-scale emulators so a Criterion iteration stays in the tens of
/// milliseconds; the JoinAll/NoJoin ratio is scale-stable.
const BENCH_N_S: usize = 1500;

fn bench_model(c: &mut Criterion, model: ModelSpec, budget: &Budget) {
    let mut group = c.benchmark_group(format!("fig1/{}", model.name()));
    group.sample_size(10);
    for spec in [
        EmulatorSpec::walmart(),
        EmulatorSpec::movies(),
        EmulatorSpec::flights(),
    ] {
        let g = spec.generate_scaled(BENCH_N_S, 0xBE);
        for config in [FeatureConfig::JoinAll, FeatureConfig::NoJoin] {
            group.bench_with_input(
                BenchmarkId::new(config.name(), spec.name),
                &(&g, &config),
                |b, (g, config)| {
                    b.iter(|| run_experiment(g, model, config, budget).expect("experiment runs"));
                },
            );
        }
    }
    group.finish();
}

fn fig1_runtimes(c: &mut Criterion) {
    let budget = Budget::quick();
    // The paper's Figure 1 panels span tree, 1-NN, RBF-SVM, ANN, NB-BFS and
    // LogReg; the tree, NB and LogReg panels capture the three runtime
    // regimes (cheap model / feature-selection-bound / path-solver-bound)
    // without hour-long bench runs. Use the fig1 binary for the full table.
    bench_model(c, ModelSpec::TreeGini, &budget);
    bench_model(c, ModelSpec::NaiveBayesBfs, &budget);
    bench_model(c, ModelSpec::LogRegL1, &budget);
}

criterion_group!(benches, fig1_runtimes);
criterion_main!(benches);
