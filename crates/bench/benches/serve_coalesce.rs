//! Cross-request predict coalescing benchmarks: the many-small-requests
//! hot path with coalescing on vs. off.
//!
//! Two vantage points:
//!
//! - `exec_*` — the executor boundary in isolation: N independent 1-row
//!   requests through the solo path (`execute_predict`, paying latency
//!   cell + fan-out budget + EWMA bookkeeping per request) vs. one merged
//!   `execute_batch` over the same rows. This is the pure dispatch
//!   amortization, visible even on a single core.
//! - `http_*` — end to end over real sockets: a saturation round of small
//!   concurrent predict requests against a server with coalescing at its
//!   default tuning vs. disabled (`window = 0`). On multi-core hosts the
//!   merged batches additionally shard across the fan-out budget, which is
//!   where the big multiplier lives.
//!
//! Medians land in `BENCH_serve.json` (see the vendored criterion shim),
//! so the trajectory is tracked across commits.
//!
//! Run with `cargo bench -p hamlet-bench --bench serve_coalesce`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::coalesce::CoalesceConfig;
use hamlet_serve::http::ServerOptions;
use hamlet_serve::server::{execute_batch, execute_predict, serve_with, AppState, WarmOptions};

/// Requests per end-to-end saturation round.
const HTTP_REQUESTS: usize = 256;
/// Concurrent client connections driving them.
const HTTP_CLIENTS: usize = 16;
/// Single-row requests per executor-boundary round.
const EXEC_REQUESTS: usize = 64;

fn dataset(seed: u64, n: usize) -> CatDataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = 8usize;
    let k = 16u32;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), k).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    CatDataset::new(features, rows, labels).unwrap()
}

fn artifact_for(model: AnyClassifier, ds: &CatDataset, name: &str) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xBE7C,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "bench".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

/// A cheap tree and a weight-heavy MLP over the same contract: the two
/// ends of the per-row-cost spectrum the coalescer adapts between.
fn models() -> (CatDataset, AnyClassifier, AnyClassifier) {
    let ds = dataset(0xC0, 96);
    let tree: AnyClassifier = DecisionTree::fit(
        &ds,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into();
    let mlp: AnyClassifier = Mlp::fit(
        &ds,
        AnnParams {
            epochs: 1,
            ..AnnParams::new(1e-4, 0.01)
        },
    )
    .unwrap()
    .into();
    (ds, tree, mlp)
}

fn in_domain_rows(ds: &CatDataset, count: usize, seed: u64) -> Vec<Vec<u32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cards = ds.cardinalities();
    (0..count)
        .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
        .collect()
}

/// Executor-boundary comparison: N solo dispatches vs one merged batch.
fn exec_boundary(c: &mut Criterion) {
    let (ds, tree, mlp) = models();
    let d = ds.n_features();
    let rows = in_domain_rows(&ds, EXEC_REQUESTS, 7);
    let (state, _) = AppState::warm_full(
        std::env::temp_dir().join("hamlet-bench-coal-none"),
        WarmOptions::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("serve_coalesce");
    for (tag, model) in [("tree", &tree), ("mlp", &mlp)] {
        let artifact = artifact_for(model.clone(), &ds, &format!("x-{tag}"));
        // Warm the EWMA so both paths run with adaptive shard sizing.
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();
        execute_predict(&state, &artifact, &flat, d);
        group.bench_function(format!("exec_solo_{tag}_{EXEC_REQUESTS}x1"), |b| {
            b.iter(|| {
                for row in &rows {
                    black_box(execute_predict(&state, &artifact, black_box(row), d));
                }
            })
        });
        let segments: Vec<&[u32]> = rows.iter().map(Vec::as_slice).collect();
        group.bench_function(format!("exec_merged_{tag}_{EXEC_REQUESTS}x1"), |b| {
            b.iter(|| black_box(execute_batch(&state, &artifact, black_box(&segments), d)))
        });
    }
    group.finish();
}

/// One saturation round: every client thread owns `per_client` sockets,
/// writes all its requests, then reads all responses — so up to
/// `HTTP_REQUESTS` requests are in flight against the server at once.
fn saturation_round(addr: std::net::SocketAddr, bodies: &[String]) {
    let per_client = bodies.len() / HTTP_CLIENTS;
    std::thread::scope(|scope| {
        for chunk in bodies.chunks(per_client) {
            scope.spawn(move || {
                let mut sockets: Vec<TcpStream> = chunk
                    .iter()
                    .map(|body| {
                        let mut s = TcpStream::connect(addr).expect("connect");
                        s.set_nodelay(true).unwrap();
                        let request = format!(
                            "POST /v1/predict HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\
                             Connection: close\r\n\r\n{body}",
                            body.len()
                        );
                        s.write_all(request.as_bytes()).expect("send");
                        s
                    })
                    .collect();
                for s in &mut sockets {
                    let resp = hamlet_serve::http::read_response(s).expect("response");
                    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                }
            });
        }
    });
}

/// End-to-end: coalescing on (default tuning) vs. off, same traffic.
fn http_saturation(c: &mut Criterion) {
    let (ds, _tree, mlp) = models();
    let mut group = c.benchmark_group("serve_coalesce");
    group.sample_size(10);
    // 1–8 row bodies, the paper-serving shape: many tiny requests.
    let rows = in_domain_rows(&ds, HTTP_REQUESTS * 3, 23);
    let bodies: Vec<String> = (0..HTTP_REQUESTS)
        .map(|i| {
            let n = 1 + (i % 8);
            let batch: Vec<&Vec<u32>> = (0..n).map(|j| &rows[(i * 3 + j) % rows.len()]).collect();
            format!(
                "{{\"model\":\"sat\",\"rows\":{}}}",
                serde_json::to_string(&batch).unwrap()
            )
        })
        .collect();
    for (tag, coalesce) in [
        (
            "http_off",
            CoalesceConfig {
                window: Duration::ZERO,
                max_rows: 0,
            },
        ),
        ("http_on", CoalesceConfig::default()),
    ] {
        let dir = std::env::temp_dir().join(format!("hamlet-bench-coal-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let (state, _) = AppState::warm_full(
            dir.clone(),
            WarmOptions {
                executors: 2,
                coalesce,
                ..WarmOptions::default()
            },
        )
        .unwrap();
        state.registry.insert(artifact_for(mlp.clone(), &ds, "sat"));
        let server = serve_with(
            "127.0.0.1:0",
            ServerOptions {
                workers: 2,
                max_conns: 2048,
                ..ServerOptions::default()
            },
            Arc::clone(&state),
        )
        .unwrap();
        let addr = server.addr();
        group.bench_function(format!("{tag}_{HTTP_REQUESTS}x1to8"), |b| {
            b.iter(|| saturation_round(addr, &bodies))
        });
        let stats = state.coalescer.stats.snapshot();
        eprintln!("{tag}: coalesce stats {stats:?}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, exec_boundary, http_saturation);
criterion_main!(benches);
