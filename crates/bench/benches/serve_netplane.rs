//! Network-plane benchmarks: reactor sharding and vectored writes.
//!
//! Measures one saturation round of small keep-alive requests (the
//! many-small-requests serving shape) against servers configured with
//! 1 / 2 / 4 reactors, crossed with vectored (`writev`) vs. per-segment
//! response writes. The handler is synthetic — no models — so the numbers
//! isolate accept sharding, epoll dispatch and the write path rather than
//! inference cost.
//!
//! Medians land in `BENCH_serve.json` (see the vendored criterion shim),
//! so the trajectory is tracked across commits.
//!
//! Run with `cargo bench -p hamlet-bench --bench serve_netplane`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use hamlet_serve::http::{Request, Responder, Response, Server, ServerOptions};

/// Client threads per round.
const CLIENTS: usize = 8;
/// Pipelined requests per client connection per round.
const PER_CLIENT: usize = 32;

/// Echo-ish handler with a ~1 KiB body: big enough that header + body as
/// separate segments is a real two-write cost without `writev`, small
/// enough that syscall count (not byte throughput) dominates.
fn handler() -> hamlet_serve::http::Handler {
    Arc::new(|req: &Request, responder: Responder| {
        let tag = format!("{}:{};", req.path, req.body.len());
        let mut body = Vec::with_capacity(1024);
        while body.len() < 1024 {
            body.extend_from_slice(tag.as_bytes());
        }
        responder.send(Response::text(200, body))
    })
}

/// One saturation round: every client opens a fresh keep-alive socket,
/// writes its whole pipeline in one burst, then reads every response.
/// Fresh connections each round keep the accept path (the sharded part)
/// in the measured loop.
fn round(addr: std::net::SocketAddr) {
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).unwrap();
                let mut burst = String::new();
                for n in 0..PER_CLIENT {
                    burst.push_str(&format!(
                        "POST /c{c} HTTP/1.1\r\nHost: b\r\nContent-Length: 4\r\n\r\nn={n:02}"
                    ));
                }
                s.write_all(burst.as_bytes()).expect("send");
                for _ in 0..PER_CLIENT {
                    let resp = hamlet_serve::http::read_response(&mut s).expect("response");
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });
}

fn netplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_netplane");
    group.sample_size(10);
    let total = CLIENTS * PER_CLIENT;
    for reactors in [1usize, 2, 4] {
        for vectored in [true, false] {
            let server = Server::bind_with(
                "127.0.0.1:0",
                handler(),
                ServerOptions {
                    workers: 2,
                    reactors,
                    vectored_writes: vectored,
                    max_conns: 2048,
                    ..ServerOptions::default()
                },
            )
            .unwrap();
            let addr = server.addr();
            let wv = if vectored { "writev_on" } else { "writev_off" };
            group.bench_function(format!("reactors{reactors}_{wv}_{total}req"), |b| {
                b.iter(|| round(addr))
            });
            server.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, netplane);
criterion_main!(benches);
