//! Serving-layer microbenchmarks: the enum-dispatch predict hot path vs the
//! boxed-trait-object path, batch throughput through `predict_batch`,
//! saturation (large-batch scoped-thread fan-out vs single thread), the
//! reactor's idle-keep-alive headline (HTTP predict throughput with 0 vs
//! 256 parked connections), raw label encoding, and artifact save/load
//! costs.
//!
//! Run with `cargo bench -p hamlet-bench --bench serve_latency`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_core::experiment::run_experiment_with_model;
use hamlet_core::feature_config::{build_dataset, build_splits, FeatureConfig};
use hamlet_core::model_zoo::{Budget, ModelSpec};
use hamlet_datagen::prelude::*;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::model::Classifier;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::http::ServerOptions;
use hamlet_serve::server::{serve_with, AppState};

fn trained_tree() -> (AnyClassifier, Vec<u32>, usize, GeneratedStar) {
    let g = onexr::generate(OneXrParams {
        n_s: 1200,
        n_r: 100,
        ..Default::default()
    });
    let config = FeatureConfig::NoJoin;
    let trained =
        run_experiment_with_model(&g, ModelSpec::TreeGini, &config, &Budget::quick()).unwrap();
    let data = build_splits(&g, &config).unwrap();
    let d = data.test.n_features();
    let mut rows = Vec::with_capacity(data.test.n_rows() * d);
    for i in 0..data.test.n_rows() {
        rows.extend_from_slice(data.test.row(i));
    }
    (trained.model, rows, d, g)
}

fn predict_dispatch(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    let boxed: Box<dyn Classifier> = Box::new(model.clone());
    let first_row = &rows[..d];

    let mut group = c.benchmark_group("predict_row");
    group.bench_function("enum_dispatch", |b| {
        b.iter(|| black_box(model.predict_row(black_box(first_row))))
    });
    group.bench_function("boxed_dyn", |b| {
        b.iter(|| black_box(boxed.predict_row(black_box(first_row))))
    });
    group.finish();
}

fn predict_batch_throughput(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    let n = rows.len() / d;
    c.bench_function(&format!("predict_batch/n{n}"), |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&rows), d)))
    });
}

/// Saturation case: a predict batch large enough to shard across every
/// core, single-threaded vs the scoped-thread fan-out `/v1/predict` uses.
fn predict_batch_saturation(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    // Tile the holdout rows up to ~20k rows — the "one huge client batch"
    // shape the parallel path exists for.
    let base_n = rows.len() / d;
    let reps = 20_000usize.div_ceil(base_n);
    let mut big = Vec::with_capacity(rows.len() * reps);
    for _ in 0..reps {
        big.extend_from_slice(&rows);
    }
    let n = big.len() / d;
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let mut group = c.benchmark_group(format!("serve_saturation/n{n}"));
    group.bench_function("single_thread", |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&big), d)))
    });
    group.bench_function(format!("parallel_t{threads}"), |b| {
        b.iter(|| black_box(model.predict_batch_parallel(black_box(&big), d, threads)))
    });
    group.finish();
}

/// Reads one HTTP response off a keep-alive socket, returning its body.
fn read_one_response(s: &mut TcpStream) -> Vec<u8> {
    hamlet_serve::http::read_response(s)
        .expect("one response")
        .body
}

/// The reactor's headline: end-to-end HTTP predict throughput with 0 vs
/// 256 *idle* keep-alive connections parked on the server. Before the
/// epoll refactor every parked connection pinned a worker thread, so 256
/// parked connections starved the pool outright; with the reactor they
/// must cost (close to) nothing.
fn idle_keepalive_throughput(c: &mut Criterion) {
    let (model, rows, d, g) = trained_tree();
    let dir = std::env::temp_dir().join(format!("hamlet-bench-idle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (state, _) = AppState::warm(dir.clone()).unwrap();
    let contract = build_dataset(&g.star, &FeatureConfig::NoJoin)
        .unwrap()
        .contract();
    state.registry.insert(ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "bench-idle".into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract,
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: ModelSpec::TreeGini,
            train_rows: g.n_train,
            metrics: hamlet_core::experiment::RunResult {
                model: "DT-Gini".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    });
    let server = serve_with(
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            max_conns: 2048,
            // Parked connections must survive the whole measurement.
            idle_timeout: Duration::from_secs(3600),
            ..ServerOptions::default()
        },
        Arc::clone(&state),
    )
    .unwrap();
    let addr = server.addr();

    // A fixed 64-row predict request, sent over one keep-alive socket.
    let coded: Vec<Vec<u32>> = rows.chunks_exact(d).take(64).map(<[u32]>::to_vec).collect();
    let request_body = format!(
        "{{\"model\":\"bench-idle\",\"rows\":{}}}",
        serde_json::to_string(&coded).unwrap()
    );
    let request = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{request_body}",
        request_body.len()
    );

    let mut group = c.benchmark_group("idle_keepalive");
    let mut parked: Vec<TcpStream> = Vec::new();
    for n_parked in [0usize, 256] {
        while parked.len() < n_parked {
            let mut s = TcpStream::connect(addr).expect("park");
            // One real request each, so every parked socket is a live
            // keep-alive connection in the reactor, not an unused fd.
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
                .unwrap();
            read_one_response(&mut s);
            parked.push(s);
        }
        // The server closes keep-alive sockets after 100 requests (the
        // per-connection cap), so the bench client reconnects shy of it.
        let mut client = TcpStream::connect(addr).expect("bench client");
        client.set_nodelay(true).unwrap();
        let mut served = 0usize;
        group.bench_function(format!("predict64/parked{n_parked}"), |b| {
            b.iter(|| {
                if served + 1 >= hamlet_serve::http::MAX_KEEPALIVE_REQUESTS {
                    client = TcpStream::connect(addr).expect("bench reconnect");
                    client.set_nodelay(true).unwrap();
                    served = 0;
                }
                served += 1;
                client.write_all(request.as_bytes()).unwrap();
                black_box(read_one_response(&mut client));
            })
        });
    }
    group.finish();
    drop(parked);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cost of the server-side dictionary encoding that `rows_raw` adds on top
/// of a pre-encoded predict.
fn raw_encode_overhead(c: &mut Criterion) {
    let (_model, rows, d, g) = trained_tree();
    let contract = build_dataset(&g.star, &FeatureConfig::NoJoin)
        .unwrap()
        .contract();
    let coded: Vec<Vec<u32>> = rows.chunks_exact(d).map(<[u32]>::to_vec).collect();
    let raw: Vec<Vec<String>> = coded
        .iter()
        .map(|r| contract.decode_row(r).unwrap())
        .collect();
    let n = coded.len();
    let mut group = c.benchmark_group(format!("ingest/n{n}"));
    group.bench_function("validate_coded", |b| {
        b.iter(|| black_box(contract.validate_batch(black_box(&coded)).unwrap()))
    });
    group.bench_function("encode_raw", |b| {
        b.iter(|| black_box(contract.encode_batch(black_box(&raw)).unwrap()))
    });
    group.finish();
}

fn artifact_io(c: &mut Criterion) {
    let (model, _rows, _d, g) = trained_tree();
    let config = FeatureConfig::NoJoin;
    let contract = build_dataset(&g.star, &config).unwrap().contract();
    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "bench-tree".into(),
        version: 1,
        model,
        feature_config: config,
        contract,
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: ModelSpec::TreeGini,
            train_rows: g.n_train,
            metrics: hamlet_core::experiment::RunResult {
                model: "DT-Gini".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    };
    let dir = std::env::temp_dir().join(format!("hamlet-bench-art-{}", std::process::id()));
    let path = artifact.save(&dir).unwrap();

    let mut group = c.benchmark_group("artifact");
    group.bench_function("save", |b| b.iter(|| artifact.save(&dir).unwrap()));
    group.bench_function("load", |b| b.iter(|| ModelArtifact::load(&path).unwrap()));
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    predict_dispatch,
    predict_batch_throughput,
    predict_batch_saturation,
    idle_keepalive_throughput,
    raw_encode_overhead,
    artifact_io
);
criterion_main!(benches);
