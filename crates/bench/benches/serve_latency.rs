//! Serving-layer microbenchmarks: the enum-dispatch predict hot path vs the
//! boxed-trait-object path, batch throughput through `predict_batch`,
//! saturation (large-batch scoped-thread fan-out vs single thread), raw
//! label encoding, and artifact save/load costs.
//!
//! Run with `cargo bench -p hamlet-bench --bench serve_latency`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_core::experiment::run_experiment_with_model;
use hamlet_core::feature_config::{build_dataset, build_splits, FeatureConfig};
use hamlet_core::model_zoo::{Budget, ModelSpec};
use hamlet_datagen::prelude::*;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::model::Classifier;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};

fn trained_tree() -> (AnyClassifier, Vec<u32>, usize, GeneratedStar) {
    let g = onexr::generate(OneXrParams {
        n_s: 1200,
        n_r: 100,
        ..Default::default()
    });
    let config = FeatureConfig::NoJoin;
    let trained =
        run_experiment_with_model(&g, ModelSpec::TreeGini, &config, &Budget::quick()).unwrap();
    let data = build_splits(&g, &config).unwrap();
    let d = data.test.n_features();
    let mut rows = Vec::with_capacity(data.test.n_rows() * d);
    for i in 0..data.test.n_rows() {
        rows.extend_from_slice(data.test.row(i));
    }
    (trained.model, rows, d, g)
}

fn predict_dispatch(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    let boxed: Box<dyn Classifier> = Box::new(model.clone());
    let first_row = &rows[..d];

    let mut group = c.benchmark_group("predict_row");
    group.bench_function("enum_dispatch", |b| {
        b.iter(|| black_box(model.predict_row(black_box(first_row))))
    });
    group.bench_function("boxed_dyn", |b| {
        b.iter(|| black_box(boxed.predict_row(black_box(first_row))))
    });
    group.finish();
}

fn predict_batch_throughput(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    let n = rows.len() / d;
    c.bench_function(&format!("predict_batch/n{n}"), |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&rows), d)))
    });
}

/// Saturation case: a predict batch large enough to shard across every
/// core, single-threaded vs the scoped-thread fan-out `/v1/predict` uses.
fn predict_batch_saturation(c: &mut Criterion) {
    let (model, rows, d, _g) = trained_tree();
    // Tile the holdout rows up to ~20k rows — the "one huge client batch"
    // shape the parallel path exists for.
    let base_n = rows.len() / d;
    let reps = 20_000usize.div_ceil(base_n);
    let mut big = Vec::with_capacity(rows.len() * reps);
    for _ in 0..reps {
        big.extend_from_slice(&rows);
    }
    let n = big.len() / d;
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let mut group = c.benchmark_group(format!("serve_saturation/n{n}"));
    group.bench_function("single_thread", |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&big), d)))
    });
    group.bench_function(format!("parallel_t{threads}"), |b| {
        b.iter(|| black_box(model.predict_batch_parallel(black_box(&big), d, threads)))
    });
    group.finish();
}

/// Cost of the server-side dictionary encoding that `rows_raw` adds on top
/// of a pre-encoded predict.
fn raw_encode_overhead(c: &mut Criterion) {
    let (_model, rows, d, g) = trained_tree();
    let contract = build_dataset(&g.star, &FeatureConfig::NoJoin)
        .unwrap()
        .contract();
    let coded: Vec<Vec<u32>> = rows.chunks_exact(d).map(<[u32]>::to_vec).collect();
    let raw: Vec<Vec<String>> = coded
        .iter()
        .map(|r| contract.decode_row(r).unwrap())
        .collect();
    let n = coded.len();
    let mut group = c.benchmark_group(format!("ingest/n{n}"));
    group.bench_function("validate_coded", |b| {
        b.iter(|| black_box(contract.validate_batch(black_box(&coded)).unwrap()))
    });
    group.bench_function("encode_raw", |b| {
        b.iter(|| black_box(contract.encode_batch(black_box(&raw)).unwrap()))
    });
    group.finish();
}

fn artifact_io(c: &mut Criterion) {
    let (model, _rows, _d, g) = trained_tree();
    let config = FeatureConfig::NoJoin;
    let contract = build_dataset(&g.star, &config).unwrap().contract();
    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "bench-tree".into(),
        version: 1,
        model,
        feature_config: config,
        contract,
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: ModelSpec::TreeGini,
            train_rows: g.n_train,
            metrics: hamlet_core::experiment::RunResult {
                model: "DT-Gini".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    };
    let dir = std::env::temp_dir().join(format!("hamlet-bench-art-{}", std::process::id()));
    let path = artifact.save(&dir).unwrap();

    let mut group = c.benchmark_group("artifact");
    group.bench_function("save", |b| b.iter(|| artifact.save(&dir).unwrap()));
    group.bench_function("load", |b| b.iter(|| ModelArtifact::load(&path).unwrap()));
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    predict_dispatch,
    predict_batch_throughput,
    predict_batch_saturation,
    raw_encode_overhead,
    artifact_io
);
criterion_main!(benches);
