//! SIMD inference-kernel benchmarks: the runtime-dispatched kernels vs the
//! bit-exact scalar reference at the raw-kernel level, and the model-level
//! f32 / i8 / f16 encodings for MLP, SVM and logreg at 1/64/512-row
//! batches (the coalescer's merged-batch shapes).
//!
//! Medians land in `BENCH_serve.json` (see the vendored criterion shim),
//! so the trajectory is tracked across commits.
//!
//! Run with `cargo bench -p hamlet-bench --bench kernels`. Note the
//! dispatched tier is chosen once per process: run with
//! `HAMLET_FORCE_SCALAR=1` to measure the scalar tier through the
//! dispatch entry points too.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::kernels;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::quant::QuantEncoding;
use hamlet_ml::svm::{KernelKind, SvmModel, SvmParams};
use hamlet_relation::domain::CatDomain;

const BATCHES: [usize; 3] = [1, 64, 512];

fn dataset(seed: u64, n: usize) -> CatDataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = 8usize;
    let k = 16u32;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), k).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
    let labels: Vec<bool> = (0..n)
        .map(|i| rng.gen_bool(if i % 3 == 0 { 0.8 } else { 0.3 }))
        .collect();
    CatDataset::new(features, rows, labels).unwrap()
}

/// Raw kernel dispatch vs the scalar reference, on vectors long enough to
/// amortize the dispatch load and show the SIMD width.
fn raw_kernels(c: &mut Criterion) {
    let n = 4096usize;
    let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let b2: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
    let qa: Vec<i8> = (0..n).map(|i| (i % 255) as i8).collect();
    let qb: Vec<i8> = (0..n).map(|i| ((i * 7) % 251) as i8).collect();
    let mut relu_out = vec![0.0f32; n];

    let mut group = c.benchmark_group("kernels");
    group.bench_function(format!("dot_f32_dispatch_{n}"), |b| {
        b.iter(|| black_box(kernels::dot_f32(0.0, black_box(&a), black_box(&b2))))
    });
    group.bench_function(format!("dot_f32_scalar_{n}"), |b| {
        b.iter(|| black_box(kernels::scalar::dot_f32(0.0, black_box(&a), black_box(&b2))))
    });
    group.bench_function(format!("dot_i8_dispatch_{n}"), |b| {
        b.iter(|| black_box(kernels::dot_i8(black_box(&qa), black_box(&qb))))
    });
    group.bench_function(format!("dot_i8_scalar_{n}"), |b| {
        b.iter(|| black_box(kernels::scalar::dot_i8(black_box(&qa), black_box(&qb))))
    });
    group.bench_function(format!("relu_f32_dispatch_{n}"), |b| {
        b.iter(|| kernels::relu_f32(black_box(&a), black_box(&mut relu_out)))
    });
    group.bench_function(format!("relu_f32_scalar_{n}"), |b| {
        b.iter(|| kernels::scalar::relu_f32(black_box(&a), black_box(&mut relu_out)))
    });
    group.finish();
}

/// Model-level batched inference across weight encodings. Every model
/// sees identical row batches; names encode family, encoding and batch.
fn model_encodings(c: &mut Criterion) {
    use rand::{Rng, SeedableRng};
    let ds = dataset(0xBEEF, 96);
    let d = ds.n_features();
    let cards = ds.cardinalities();
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let max_rows = *BATCHES.iter().max().unwrap();
    let flat: Vec<u32> = (0..max_rows * d)
        .map(|i| rng.gen_range(0..cards[i % d]))
        .collect();

    let mlp: AnyClassifier = Mlp::fit(
        &ds,
        AnnParams {
            epochs: 1,
            ..AnnParams::new(1e-4, 0.01)
        },
    )
    .unwrap()
    .into();
    let svm: AnyClassifier =
        SvmModel::fit(&ds, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, 4.0))
            .unwrap()
            .into();
    let logreg: AnyClassifier = LogRegL1::fit_single(
        &ds,
        1e-3,
        LogRegParams {
            max_iter: 30,
            ..Default::default()
        },
    )
    .unwrap()
    .into();

    let mut group = c.benchmark_group("kernels");
    for (family, model) in [("mlp", mlp), ("svm", svm), ("logreg", logreg)] {
        let variants: Vec<(&str, AnyClassifier)> = vec![
            ("f32", model.clone()),
            ("i8", model.quantize(QuantEncoding::I8).unwrap()),
            ("f16", model.quantize(QuantEncoding::F16).unwrap()),
        ];
        for (enc, m) in &variants {
            for rows in BATCHES {
                let batch = &flat[..rows * d];
                group.bench_function(format!("{family}_{enc}_{rows}rows"), |b| {
                    b.iter(|| black_box(m.predict_batch(black_box(batch), d)))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, raw_kernels, model_encodings);
criterion_main!(benches);
