//! **Table 4** — robustness study: discard dimension tables one at a time
//! (`NoR_i`), and two at a time for Flights, with the gini decision tree.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin table4
//! ```

use hamlet_bench::{acc, table_budget, target_n_s, write_json, TablePrinter};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let target = target_n_s();
    let mut artifacts: Vec<RunResult> = Vec::new();
    // Two tree variants: rpart-style subset partitions (the default), and
    // the one-vs-rest style a tree over one-hot-encoded inputs exhibits.
    // With subset partitions, the greedy search prefers FK partitions so
    // strongly that all configurations retain FK-driven trees (columns
    // coincide); the one-vs-rest variant surfaces the per-dimension
    // differences Table 4 is about. See EXPERIMENTS.md.
    for one_vs_rest in [false, true] {
        let mut budget = table_budget();
        if one_vs_rest {
            budget.tree_categorical = hamlet_ml::tree::CategoricalSplit::OneVsRest;
        }
        let style = if one_vs_rest {
            "one-vs-rest (one-hot-style) splits"
        } else {
            "subset-partition (rpart-style) splits"
        };
        println!("\nTable 4: discarding dimension tables one at a time — gini tree, {style}\n");
        run_table(target, &budget, &mut artifacts);
    }
    write_json("table4", &artifacts);
    println!("\nShape check (paper §3.3): dropping any single dimension ≈ NoJoin ≈ JoinAll,");
    println!("except Yelp NoR2 (users; tuple ratio 2.5), which drops noticeably.");
}

fn run_table(target: usize, budget: &Budget, artifacts: &mut Vec<RunResult>) {
    let printer = TablePrinter::new(
        &["Dataset", "NoR1", "NoR2", "JoinAll", "NoJoin"],
        &[8, 8, 8, 8, 8],
    );

    let run = |g: &GeneratedStar, config: &FeatureConfig, artifacts: &mut Vec<RunResult>| -> f64 {
        let r = run_experiment(g, ModelSpec::TreeGini, config, budget).expect("experiment runs");
        let a = r.test_accuracy;
        artifacts.push(r);
        a
    };

    for spec in EmulatorSpec::all() {
        if spec.name == "Flights" {
            continue; // three dimensions: printed separately below
        }
        let g = spec.generate_scaled(target, 0xDA7A);
        let no_r1 = run(&g, &FeatureConfig::DropDims(vec![0]), artifacts);
        // Expedia's R2 is open-domain and can never be discarded: N/A.
        let no_r2 = if g.star.dims()[1].open_domain {
            f64::NAN
        } else {
            run(&g, &FeatureConfig::DropDims(vec![1]), artifacts)
        };
        let join_all = run(&g, &FeatureConfig::JoinAll, artifacts);
        let no_join = run(&g, &FeatureConfig::NoJoin, artifacts);
        printer.row(&[
            spec.name,
            &acc(no_r1),
            &if no_r2.is_nan() {
                "X".to_string()
            } else {
                acc(no_r2)
            },
            &acc(join_all),
            &acc(no_join),
        ]);
    }

    // Flights: singles and pairs over its three dimensions.
    let spec = EmulatorSpec::flights();
    let g = spec.generate_scaled(target, 0xDA7A);
    println!("\nFlights (three dimensions):");
    let mut line = String::new();
    for (label, dims) in [
        ("NoR1", vec![0usize]),
        ("NoR2", vec![1]),
        ("NoR3", vec![2]),
        ("NoR1,R2", vec![0, 1]),
        ("NoR1,R3", vec![0, 2]),
        ("NoR2,R3", vec![1, 2]),
    ] {
        let a = run(&g, &FeatureConfig::DropDims(dims), artifacts);
        line.push_str(&format!("{label}: {}   ", acc(a)));
    }
    println!("{line}");
    let join_all = run(&g, &FeatureConfig::JoinAll, artifacts);
    let no_join = run(&g, &FeatureConfig::NoJoin, artifacts);
    println!("JoinAll: {}   NoJoins: {}", acc(join_all), acc(no_join));
}
