//! **Tables 3 and 6** — holdout test accuracy (T3) and training accuracy
//! (T6) for the three SVMs (linear / quadratic / RBF), the ANN, Naive Bayes
//! with backward selection and L1 logistic regression, each under JoinAll
//! and NoJoin, on all seven emulated datasets.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin table3
//! ```

use hamlet_bench::{acc, table_budget, target_n_s, two_configs, write_json, TablePrinter};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let budget = table_budget();
    let target = target_n_s();
    let specs = [
        ModelSpec::SvmLinear,
        ModelSpec::SvmQuadratic,
        ModelSpec::SvmRbf,
        ModelSpec::Ann,
        ModelSpec::NaiveBayesBfs,
        ModelSpec::LogRegL1,
    ];

    // Run everything once, reporting both accuracies from the same fits.
    let mut results: Vec<(String, RunResult)> = Vec::new();
    for spec in EmulatorSpec::all() {
        let g = spec.generate_scaled(target, 0xDA7A);
        for model in specs {
            for config in two_configs() {
                let r = run_experiment(&g, model, &config, &budget).expect("experiment runs");
                eprintln!(
                    "[{}] {} {}: test {:.4} ({:.1}s)",
                    spec.name, r.model, r.config, r.test_accuracy, r.seconds
                );
                results.push((spec.name.to_string(), r));
            }
        }
    }

    for (table, test) in [
        ("Table 3 (holdout test accuracy)", true),
        ("Table 6 (training accuracy)", false),
    ] {
        println!("\n{table}: SVMs, ANN, NB-BFS, LogReg-L1\n");
        let mut headers = vec!["Dataset".to_string()];
        for model in specs {
            headers.push(format!("{}:JA", short(model)));
            headers.push(format!("{}:NJ", short(model)));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let widths = vec![8usize; headers.len()];
        let printer = TablePrinter::new(&header_refs, &widths);

        for spec in EmulatorSpec::all() {
            let mut cells = vec![spec.name.to_string()];
            for model in specs {
                for config in two_configs() {
                    let r = results
                        .iter()
                        .find(|(d, r)| {
                            d == spec.name && r.model == model.name() && r.config == config.name()
                        })
                        .map(|(_, r)| {
                            if test {
                                r.test_accuracy
                            } else {
                                r.train_accuracy
                            }
                        })
                        .expect("cell was computed");
                    cells.push(acc(r));
                }
            }
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            printer.row(&refs);
        }
    }
    let flat: Vec<&RunResult> = results.iter().map(|(_, r)| r).collect();
    write_json("table3_table6", &flat);

    println!("\nShape check (paper §3.3): NoJoin within ~1% of JoinAll for the");
    println!("high-capacity models except Yelp (RBF-SVM/ANN drop ≈0.01); linear");
    println!("models show the larger Yelp drop (≈0.03).");
}

fn short(m: ModelSpec) -> &'static str {
    match m {
        ModelSpec::SvmLinear => "Lin",
        ModelSpec::SvmQuadratic => "Quad",
        ModelSpec::SvmRbf => "RBF",
        ModelSpec::Ann => "ANN",
        ModelSpec::NaiveBayesBfs => "NB",
        ModelSpec::LogRegL1 => "LR",
        _ => m.name(),
    }
}
