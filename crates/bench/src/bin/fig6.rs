//! **Figure 6** — Scenario `XSXR` (noise-free TPT over `[X_S, X_R]`), gini
//! decision tree: sweep (A) `n_S`, (B) `n_R`, (C) `d_R`, (D) `d_S` (same
//! fixed values as Figure 2 A–D).
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig6
//! ```

use hamlet_bench::{mc_runs, mc_sweep, print_sweep, sim_budget, three_configs, write_json};
use hamlet_core::montecarlo::xsxr_bayes;
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    let configs = three_configs();
    let spec = ModelSpec::TreeGini;
    println!("Figure 6: XSXR simulation, gini decision tree ({runs} runs/point)");
    let mut artifacts = Vec::new();

    // (A) vary n_S.
    let a = mc_sweep(
        &[100.0, 300.0, 1000.0, 3000.0, 10_000.0],
        |x, seed| {
            xsxr::generate(XsXrParams {
                n_s: x as usize,
                seed,
                ..Default::default()
            })
        },
        |_, gs| xsxr_bayes(gs),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(A) vary number of training examples n_S",
        "n_S",
        &a,
        |bv| bv.avg_error,
    );
    artifacts.push(("A_vary_ns", a));

    // (B) vary n_R.
    let b = mc_sweep(
        &[1.0, 10.0, 40.0, 100.0, 333.0, 1000.0],
        |x, seed| {
            xsxr::generate(XsXrParams {
                n_r: x as u32,
                seed,
                ..Default::default()
            })
        },
        |_, gs| xsxr_bayes(gs),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(B) vary number of FK values |D_FK| = n_R",
        "n_R",
        &b,
        |bv| bv.avg_error,
    );
    artifacts.push(("B_vary_nr", b));

    // (C) vary d_R.
    let c = mc_sweep(
        &[1.0, 4.0, 7.0, 10.0],
        |x, seed| {
            xsxr::generate(XsXrParams {
                d_r: x as usize,
                seed,
                ..Default::default()
            })
        },
        |_, gs| xsxr_bayes(gs),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(C) vary number of features in R (d_R)", "d_R", &c, |bv| {
        bv.avg_error
    });
    artifacts.push(("C_vary_dr", c));

    // (D) vary d_S.
    let d = mc_sweep(
        &[1.0, 4.0, 7.0, 10.0],
        |x, seed| {
            xsxr::generate(XsXrParams {
                d_s: x as usize,
                seed,
                ..Default::default()
            })
        },
        |_, gs| xsxr_bayes(gs),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(D) vary number of features in S (d_S)", "d_S", &d, |bv| {
        bv.avg_error
    });
    artifacts.push(("D_vary_ds", d));

    write_json("fig6", &artifacts);
    println!("\nShape check (paper §4.2): NoJoin ≈ JoinAll throughout (largest paper gap");
    println!("0.017); NoFK stays low as n_R grows while JoinAll/NoJoin rise; all gaps");
    println!("close as n_S grows.");
}
