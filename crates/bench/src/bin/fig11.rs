//! **Figure 11** — foreign-key smoothing (§6.2): average test error under
//! OneXr as γ (the fraction of `D_FK` unseen in training) grows, comparing
//! (A) random reassignment against (B) X_R-based reassignment, for
//! UseAll(JoinAll) / NoJoin / NoFK.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig11
//! ```

use hamlet_bench::{err, mc_runs, sim_budget, three_configs, write_json, TablePrinter};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;
use hamlet_ml::dataset::Provenance;
use hamlet_ml::prelude::Classifier;

/// Average test error of a tuned gini tree with FK smoothing applied to the
/// validation and test splits.
fn avg_error(
    gamma: f64,
    method: Option<SmoothingMethod>,
    config: &FeatureConfig,
    runs: usize,
    budget: &Budget,
) -> f64 {
    let mut total = 0.0;
    for k in 0..runs {
        let g = onexr::generate(OneXrParams {
            n_s: 1000,
            n_r: 40,
            unseen_frac: gamma,
            seed: 0xF16 + k as u64,
            ..Default::default()
        });
        let data = build_splits(&g, config).expect("splits build");
        let fk = data
            .train
            .features()
            .iter()
            .position(|f| matches!(f.provenance, Provenance::ForeignKey { .. }));

        let (train, val, test) = match (fk, method) {
            (Some(j), Some(m)) => {
                let dim = &g.star.dims()[0].table;
                let smoothing =
                    build_smoothing(&data.train, j, m, Some(dim)).expect("smoothing builds");
                (
                    data.train.clone(),
                    smoothing.apply(&data.val).expect("val applies"),
                    smoothing.apply(&data.test).expect("test applies"),
                )
            }
            _ => (data.train.clone(), data.val.clone(), data.test.clone()),
        };
        let tuned = ModelSpec::TreeGini
            .fit_tuned(&train, &val, budget)
            .expect("tree fits");
        total += 1.0 - tuned.model.accuracy(&test);
    }
    total / runs as f64
}

fn main() {
    let budget = sim_budget();
    let runs = (mc_runs() / 2).max(3);
    let gammas = [0.0, 0.25, 0.5, 0.75, 0.9];
    println!("Figure 11: FK smoothing under OneXr, gini tree ({runs} runs/point)\n");

    let mut artifacts: Vec<(String, f64, String, f64)> = Vec::new();
    for (panel, method) in [
        (
            "(A) Random reassignment",
            SmoothingMethod::Random { seed: 0x5400 },
        ),
        ("(B) X_R-based reassignment", SmoothingMethod::XrBased),
    ] {
        println!("{panel}");
        let printer = TablePrinter::new(&["gamma", "UseAll", "NoJoin", "NoFK"], &[7, 8, 8, 8]);
        for &gamma in &gammas {
            let mut cells = vec![format!("{gamma}")];
            for config in three_configs() {
                // NoFK has no FK feature: smoothing is a no-op baseline.
                let m = if config == FeatureConfig::NoFK {
                    None
                } else {
                    Some(method)
                };
                let e = avg_error(gamma, m, &config, runs, &budget);
                cells.push(err(e));
                artifacts.push((panel.to_string(), gamma, config.name(), e));
            }
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            printer.row(&refs);
        }
        println!();
    }
    write_json("fig11", &artifacts);
    println!("Shape check (paper §6.2): X_R-based smoothing holds errors near NoFK/Bayes");
    println!("for γ < 0.5 and degrades more gracefully than random reassignment as");
    println!("γ → 1 — side information beats random even when X_R is never a feature.");
}
