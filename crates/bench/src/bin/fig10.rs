//! **Figure 10** — foreign-key domain compression (§6.1): holdout accuracy
//! of the gini decision tree under NoJoin on (A) Flights and (B) Yelp as
//! the FK domain budget `l` grows, comparing the Random hashing trick
//! (averaged over five seeds, as in the paper) against the supervised
//! Sort-based method.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig10
//! ```

use hamlet_bench::{acc, table_budget, target_n_s, write_json, TablePrinter};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;
use hamlet_ml::dataset::Provenance;
use hamlet_ml::prelude::Classifier;

/// Compresses one chosen FK feature (the interpretability bottleneck §6.1
/// targets — "a foreign key feature with 1000s of values") to budget `l`,
/// trains a tuned gini tree, and returns test accuracy. Other FKs keep
/// their full domains, as in the paper's setup.
fn run_with_budget(
    data: &ExperimentData,
    target_dim: usize,
    l: u32,
    method: CompressionMethod,
    budget: &Budget,
) -> f64 {
    let target_fk = data
        .train
        .features()
        .iter()
        .position(|f| matches!(f.provenance, Provenance::ForeignKey { dim } if dim == target_dim))
        .expect("NoJoin data has the requested FK feature");

    let comp = build_compression(&data.train, target_fk, l, method).expect("compression builds");
    let train = comp.apply(&data.train).expect("train applies");
    let val = comp.apply(&data.val).expect("val applies");
    let test = comp.apply(&data.test).expect("test applies");
    let tuned = ModelSpec::TreeGini
        .fit_tuned(&train, &val, budget)
        .expect("tree fits");
    tuned.model.accuracy(&test)
}

fn main() {
    let budget = table_budget();
    let target = target_n_s();
    let budgets: [u32; 5] = [2, 5, 10, 25, 50];
    println!("Figure 10: FK domain compression, gini decision tree, NoJoin\n");

    let mut artifacts: Vec<(String, u32, String, f64)> = Vec::new();
    // Compressed FK per panel: Flights → airlines (dim 0, the FK whose
    // per-key signal a practitioner would want readable); Yelp → users
    // (dim 1, the paper's huge-domain offender).
    for (panel, spec, target_dim) in [
        ("(A) Flights", EmulatorSpec::flights(), 0usize),
        ("(B) Yelp", EmulatorSpec::yelp(), 1usize),
    ] {
        let g = spec.generate_scaled(target, 0xDA7A);
        let data = build_splits(&g, &FeatureConfig::NoJoin).expect("splits build");
        println!("{panel}");
        let printer = TablePrinter::new(
            &["budget l", "Random", "Sort-based", "Rate-based*"],
            &[9, 9, 10, 11],
        );

        // Uncompressed reference (l = full domain).
        let tuned = ModelSpec::TreeGini
            .fit_tuned(&data.train, &data.val, &budget)
            .expect("tree fits");
        let full_acc = tuned.model.accuracy(&data.test);

        for &l in &budgets {
            // Random: average over five hash seeds (paper methodology).
            let mut random_sum = 0.0;
            for seed in 0..5u64 {
                random_sum += run_with_budget(
                    &data,
                    target_dim,
                    l,
                    CompressionMethod::RandomHash {
                        seed: 0x5EED + seed,
                    },
                    &budget,
                );
            }
            let random = random_sum / 5.0;
            let sorted =
                run_with_budget(&data, target_dim, l, CompressionMethod::SortBased, &budget);
            let rated =
                run_with_budget(&data, target_dim, l, CompressionMethod::RateBased, &budget);
            printer.row(&[&format!("{l}"), &acc(random), &acc(sorted), &acc(rated)]);
            artifacts.push((spec.name.to_string(), l, "Random".into(), random));
            artifacts.push((spec.name.to_string(), l, "Sort-based".into(), sorted));
            artifacts.push((spec.name.to_string(), l, "Rate-based".into(), rated));
        }
        println!("uncompressed (l = |D_FK|): {}\n", acc(full_acc));
        artifacts.push((
            spec.name.to_string(),
            u32::MAX,
            "Uncompressed".into(),
            full_acc,
        ));
    }
    write_json("fig10", &artifacts);
    println!("Shape check (paper §6.1): Sort-based ≥ Random, gap largest at small l and");
    println!("narrowing as l grows; accuracy at tiny budgets stays surprisingly close to");
    println!("(or above) the uncompressed NoJoin accuracy.");
    println!("(*) Rate-based is this library's sign-aware extension of Sort-based; it");
    println!("dominates when the compressed FK itself carries the signal (see DESIGN.md).");
}
