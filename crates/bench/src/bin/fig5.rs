//! **Figure 5** — Scenario `OneXr` with foreign-key skew, gini decision
//! tree: (A) sweep the Zipfian skew parameter; (B) sweep `n_S` at Zipf 2;
//! (C) sweep the needle probability; (D) sweep `n_S` at needle 0.5.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig5
//! ```

use hamlet_bench::{mc_runs, mc_sweep, print_sweep, sim_budget, three_configs, write_json};
use hamlet_core::montecarlo::onexr_bayes;
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    let configs = three_configs();
    let spec = ModelSpec::TreeGini;
    let p = OneXrParams::default().p;
    println!("Figure 5: OneXr with FK skew, gini decision tree ({runs} runs/point)");
    let mut artifacts = Vec::new();

    // (A) vary the Zipfian skew parameter at (1000, 40, 4, 4).
    let a = mc_sweep(
        &[0.0, 1.0, 2.0, 3.0, 4.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                skew: FkSkew::Zipf { s: x },
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(A) vary Zipfian skew parameter", "zipf_s", &a, |bv| {
        bv.avg_error
    });
    artifacts.push(("A_zipf_param", a));

    // (B) vary n_S with Zipf skew fixed at 2.
    let b = mc_sweep(
        &[100.0, 300.0, 1000.0, 3000.0, 10_000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_s: x as usize,
                skew: FkSkew::Zipf { s: 2.0 },
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(B) vary n_S at Zipf skew 2", "n_S", &b, |bv| bv.avg_error);
    artifacts.push(("B_zipf2_ns", b));

    // (C) vary the needle probability.
    let c = mc_sweep(
        &[0.1, 0.25, 0.5, 0.75, 1.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                skew: FkSkew::NeedleThread { p: x },
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(C) vary needle probability", "needle_p", &c, |bv| {
        bv.avg_error
    });
    artifacts.push(("C_needle_param", c));

    // (D) vary n_S with needle probability fixed at 0.5.
    let d = mc_sweep(
        &[100.0, 300.0, 1000.0, 3000.0, 10_000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_s: x as usize,
                skew: FkSkew::NeedleThread { p: 0.5 },
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(D) vary n_S at needle probability 0.5", "n_S", &d, |bv| {
        bv.avg_error
    });
    artifacts.push(("D_needle05_ns", d));

    write_json("fig5", &artifacts);
    println!("\nShape check (paper §4.1): no amount of Zipf or needle-and-thread skew");
    println!("widens the NoJoin-vs-JoinAll gap significantly for the decision tree.");
}
