//! **Figure 1** — end-to-end runtimes (join, grid-search tuning, training
//! and testing) of JoinAll vs NoJoin for the six model families of the
//! figure on all seven emulated datasets, plus the speedup ratio.
//!
//! Absolute seconds differ from the paper's CloudLab/GPU testbed; the claim
//! under reproduction is the *ratio* (≈2× for high-capacity models, much
//! larger for NB with backward selection). The Criterion bench
//! `fig1_runtimes` measures the same quantity with statistical rigour.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig1
//! ```

use hamlet_bench::{table_budget, target_n_s, write_json, TablePrinter};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let budget = table_budget();
    let target = target_n_s();
    // Figure 1's six panels.
    let specs = [
        ModelSpec::TreeGini,
        ModelSpec::OneNN,
        ModelSpec::SvmRbf,
        ModelSpec::Ann,
        ModelSpec::NaiveBayesBfs,
        ModelSpec::LogRegL1,
    ];

    println!("Figure 1: end-to-end runtimes (seconds) JoinAll vs NoJoin\n");
    let mut artifacts: Vec<RunResult> = Vec::new();
    for model in specs {
        println!("— {} —", model.name());
        let printer = TablePrinter::new(
            &["Dataset", "JoinAll(s)", "NoJoin(s)", "Speedup"],
            &[8, 10, 10, 8],
        );
        for spec in EmulatorSpec::all() {
            let g = spec.generate_scaled(target, 0xDA7A);
            let ja = run_experiment(&g, model, &FeatureConfig::JoinAll, &budget)
                .expect("experiment runs");
            let nj = run_experiment(&g, model, &FeatureConfig::NoJoin, &budget)
                .expect("experiment runs");
            printer.row(&[
                spec.name,
                &format!("{:.3}", ja.seconds),
                &format!("{:.3}", nj.seconds),
                &format!("{:.2}x", ja.seconds / nj.seconds.max(1e-9)),
            ]);
            artifacts.push(ja);
            artifacts.push(nj);
        }
        println!();
    }
    write_json("fig1", &artifacts);
    println!("Shape check (paper §3.3): NoJoin is consistently faster; the speedup is");
    println!("largest for NB-BFS (feature-selection cost scales with feature count).");
}
