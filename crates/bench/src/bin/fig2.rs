//! **Figure 2** — Scenario `OneXr` with the gini decision tree: average
//! holdout test error of UseAll(JoinAll) / NoJoin / NoFK while sweeping
//! (A) `n_S`, (B) `n_R = |D_FK|`, (C) `d_S`, (D) `d_R`, (E) the probability
//! parameter `p`, and (F) `|D_Xr|`. Defaults elsewhere:
//! `(n_S, n_R, d_S, d_R) = (1000, 40, 4, 4)`, `p = 0.1`.
//!
//! ```text
//! HAMLET_RUNS=100 cargo run --release -p hamlet-bench --bin fig2   # paper fidelity
//! ```

use hamlet_bench::{mc_runs, mc_sweep, print_sweep, sim_budget, three_configs, write_json};
use hamlet_core::montecarlo::onexr_bayes;
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn base() -> OneXrParams {
    OneXrParams::default() // (1000, 40, 4, 4), p = 0.1
}

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    let configs = three_configs();
    let spec = ModelSpec::TreeGini;
    println!(
        "Figure 2: OneXr simulation, gini decision tree ({} runs/point)",
        runs
    );
    let mut artifacts = Vec::new();

    // (A) vary n_S.
    let a = mc_sweep(
        &[100.0, 300.0, 1000.0, 3000.0, 10_000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_s: x as usize,
                seed,
                ..base()
            })
        },
        |_, gs| onexr_bayes(gs, base().p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(A) vary number of training examples n_S",
        "n_S",
        &a,
        |bv| bv.avg_error,
    );
    artifacts.push(("A_vary_ns", a));

    // (B) vary n_R = |D_FK| (the tuple-ratio stress test).
    let b = mc_sweep(
        &[1.0, 10.0, 40.0, 100.0, 333.0, 1000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_r: x as u32,
                seed,
                ..base()
            })
        },
        |_, gs| onexr_bayes(gs, base().p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(B) vary number of FK values |D_FK| = n_R",
        "n_R",
        &b,
        |bv| bv.avg_error,
    );
    artifacts.push(("B_vary_nr", b));

    // (C) vary d_S.
    let c = mc_sweep(
        &[1.0, 4.0, 7.0, 10.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                d_s: x as usize,
                seed,
                ..base()
            })
        },
        |_, gs| onexr_bayes(gs, base().p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(C) vary number of features in S (d_S)", "d_S", &c, |bv| {
        bv.avg_error
    });
    artifacts.push(("C_vary_ds", c));

    // (D) vary d_R.
    let d = mc_sweep(
        &[1.0, 4.0, 7.0, 10.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                d_r: x as usize,
                seed,
                ..base()
            })
        },
        |_, gs| onexr_bayes(gs, base().p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep("(D) vary number of features in R (d_R)", "d_R", &d, |bv| {
        bv.avg_error
    });
    artifacts.push(("D_vary_dr", d));

    // (E) vary the probability parameter p (Bayes noise).
    let e = mc_sweep(
        &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                p: x,
                seed,
                ..base()
            })
        },
        |x, gs| onexr_bayes(gs, x),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(E) vary probability parameter p of P(Y|Xr)",
        "p",
        &e,
        |bv| bv.avg_error,
    );
    artifacts.push(("E_vary_p", e));

    // (F) vary |D_Xr|.
    let f = mc_sweep(
        &[2.0, 5.0, 10.0, 20.0, 40.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                xr_domain: x as u32,
                seed,
                ..base()
            })
        },
        |_, gs| onexr_bayes(gs, base().p),
        spec,
        &configs,
        &budget,
        runs,
    );
    print_sweep(
        "(F) vary |D_Xr| (driving-feature domain)",
        "|D_Xr|",
        &f,
        |bv| bv.avg_error,
    );
    artifacts.push(("F_vary_dxr", f));

    write_json("fig2", &artifacts);
    println!("\nShape check (paper §4.1): NoJoin ≈ JoinAll (≈ Bayes error 0.1) everywhere;");
    println!("only very low n_S or very high n_R (tuple ratio < ~3) lifts both above NoFK.");
}
