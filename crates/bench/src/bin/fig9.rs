//! **Figure 9** — Scenario `RepOneXr`, 1-NN: sweep `d_R` at (A) `n_R = 40`
//! and (B) `n_R = 200` (same setup as Figure 7).
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig9
//! ```

use hamlet_bench::{mc_runs, print_sweep, reponexr_sweep, sim_budget, write_json};
use hamlet_core::prelude::*;

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    println!("Figure 9: RepOneXr, 1-NN ({runs} runs/point)");

    let a = reponexr_sweep(ModelSpec::OneNN, 40, runs, &budget);
    print_sweep("(A) vary d_R at n_R = 40 (ratio 25x)", "d_R", &a, |bv| {
        bv.avg_error
    });

    let b = reponexr_sweep(ModelSpec::OneNN, 200, runs, &budget);
    print_sweep("(B) vary d_R at n_R = 200 (ratio 5x)", "d_R", &b, |bv| {
        bv.avg_error
    });

    write_json("fig9", &vec![("A_nr40", a), ("B_nr200", b)]);
    println!("\nShape check (paper §4.3): the 1-NN is the least stable — its NoJoin");
    println!("deviates even at the 25x tuple ratio of panel A.");
}
