//! **Figure 3** — Scenario `OneXr`, sweeping `n_R = |D_FK|` as in Figure
//! 2(B), for (A) 1-NN and (B) RBF-SVM: average holdout test error.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig3
//! ```

use hamlet_bench::{
    mc_runs, mc_sweep, print_sweep, sim_budget, three_configs, write_json, SweepPoint,
};
use hamlet_core::montecarlo::onexr_bayes;
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

/// The shared Fig 3/4 sweep (also reused by `fig4` for net variance).
pub fn nr_sweep(spec: ModelSpec, runs: usize, budget: &Budget) -> Vec<SweepPoint> {
    let p = OneXrParams::default().p;
    mc_sweep(
        &[1.0, 10.0, 40.0, 100.0, 333.0, 1000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_r: x as u32,
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &three_configs(),
        budget,
        runs,
    )
}

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    println!("Figure 3: OneXr, vary n_R = |D_FK| ({runs} runs/point)");

    let a = nr_sweep(ModelSpec::OneNN, runs, &budget);
    print_sweep("(A) 1-NN: average test error", "n_R", &a, |bv| bv.avg_error);

    let b = nr_sweep(ModelSpec::SvmRbf, runs, &budget);
    print_sweep("(B) RBF-SVM: average test error", "n_R", &b, |bv| {
        bv.avg_error
    });

    write_json("fig3", &vec![("A_1nn", a), ("B_rbf", b)]);
    println!("\nShape check (paper §4.1): the RBF-SVM's NoJoin deviates from JoinAll once");
    println!("the tuple ratio falls below ≈6 (n_R ≳ 170); the 1-NN destabilises much");
    println!("earlier (already around n_R = 10, i.e. ratio 100).");
}
