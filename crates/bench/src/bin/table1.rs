//! **Table 1** — dataset statistics: `(n_S, d_S)`, `q`, per-dimension
//! `(n_R, d_R)` and the tuple ratio (computed on the 50 % training split),
//! with `N/A` for open-domain FKs.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin table1
//! ```

use hamlet_bench::{target_n_s, write_json, TablePrinter};
use hamlet_datagen::prelude::*;

fn main() {
    let target = target_n_s();
    println!("Table 1: dataset statistics (emulated at n_S ≈ {target}; tuple ratios preserved)\n");
    let printer = TablePrinter::new(
        &["Dataset", "(nS, dS)", "q", "(nR, dR)", "Tuple Ratio"],
        &[10, 16, 3, 16, 12],
    );

    let mut artifacts = Vec::new();
    for spec in EmulatorSpec::all() {
        let g = spec.generate_scaled(target, 0xDA7A);
        let stats = g.star.stats(g.n_train);
        artifacts.push((spec.name.to_string(), stats.clone()));
        for (i, d) in stats.iter().enumerate() {
            let first = i == 0;
            let ratio = if d.open_domain {
                "N/A".to_string()
            } else {
                format!("{:.1}", d.tuple_ratio)
            };
            printer.row(&[
                if first { spec.name } else { "" },
                &if first {
                    format!("{}, {}", g.n_total(), spec.d_s)
                } else {
                    String::new()
                },
                &if first {
                    format!("{}", g.star.q())
                } else {
                    String::new()
                },
                &format!("{}, {}", d.n_rows, d.d_features),
                &ratio,
            ]);
        }
    }
    write_json("table1", &artifacts);

    println!("\nPaper shape check: Yelp R2 and Books R2 sit at ratios ~2.5/~2.6 (the");
    println!("danger zone); Walmart R2 is in the thousands; Expedia R2 is N/A (open).");
}
