//! **Tables 2 and 5** — holdout test accuracy (T2) and training accuracy
//! (T5) for the three decision trees (gini / information gain / gain ratio)
//! under JoinAll / NoJoin / NoFK, plus 1-NN under JoinAll / NoJoin, on all
//! seven emulated datasets.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin table2
//! ```

use hamlet_bench::{
    acc, table_budget, target_n_s, three_configs, two_configs, write_json, TablePrinter,
};
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn main() {
    let budget = table_budget();
    let target = target_n_s();
    let tree_specs = [
        ModelSpec::TreeGini,
        ModelSpec::TreeInfoGain,
        ModelSpec::TreeGainRatio,
    ];

    let mut all_results: Vec<RunResult> = Vec::new();
    for table in [
        "Table 2 (holdout test accuracy)",
        "Table 5 (training accuracy)",
    ] {
        println!("\n{table}: decision trees and 1-NN\n");
        let printer = TablePrinter::new(
            &[
                "Dataset",
                "Gini:JoinAll",
                "Gini:NoJoin",
                "Gini:NoFK",
                "IG:JoinAll",
                "IG:NoJoin",
                "IG:NoFK",
                "GR:JoinAll",
                "GR:NoJoin",
                "GR:NoFK",
                "1NN:JoinAll",
                "1NN:NoJoin",
            ],
            &[8, 12, 12, 10, 10, 10, 8, 10, 10, 8, 11, 11],
        );
        let is_test = table.starts_with("Table 2");

        for spec in EmulatorSpec::all() {
            let g = spec.generate_scaled(target, 0xDA7A);
            let mut cells: Vec<String> = vec![spec.name.to_string()];
            for model in tree_specs {
                for config in three_configs() {
                    let r = cached_run(&mut all_results, &g, spec.name, model, &config, &budget);
                    cells.push(acc(if is_test { r.0 } else { r.1 }));
                }
            }
            for config in two_configs() {
                let r = cached_run(
                    &mut all_results,
                    &g,
                    spec.name,
                    ModelSpec::OneNN,
                    &config,
                    &budget,
                );
                cells.push(acc(if is_test { r.0 } else { r.1 }));
            }
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            printer.row(&refs);
        }
    }
    write_json("table2_table5", &all_results);

    println!("\nShape check (paper §3.3): NoJoin within ~1% of JoinAll everywhere except");
    println!("Yelp; NoFK visibly worse on FK-effect datasets (e.g. Flights).");
}

/// Runs (or reuses) one cell; returns (test accuracy, train accuracy).
fn cached_run(
    cache: &mut Vec<RunResult>,
    g: &GeneratedStar,
    dataset: &str,
    model: ModelSpec,
    config: &FeatureConfig,
    budget: &Budget,
) -> (f64, f64) {
    let key_model = model.name();
    let key_config = config.name();
    if let Some(r) = cache.iter().find(|r| {
        r.model == key_model
            && r.config == key_config
            && r.winner.starts_with(&format!("[{dataset}] "))
    }) {
        return (r.test_accuracy, r.train_accuracy);
    }
    let mut r = run_experiment(g, model, config, budget).expect("experiment runs");
    r.winner = format!("[{dataset}] {}", r.winner);
    let out = (r.test_accuracy, r.train_accuracy);
    cache.push(r);
    out
}
