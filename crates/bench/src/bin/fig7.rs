//! **Figure 7** — Scenario `RepOneXr` (driving feature replicated across
//! `X_R`), gini decision tree: sweep `d_R` at (A) `n_R = 40` (tuple ratio
//! 25×) and (B) `n_R = 200` (tuple ratio 5×).
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig7
//! ```

use hamlet_bench::reponexr_sweep;
use hamlet_bench::{mc_runs, print_sweep, sim_budget, write_json};
use hamlet_core::prelude::*;

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    println!("Figure 7: RepOneXr, gini decision tree ({runs} runs/point)");

    let a = reponexr_sweep(ModelSpec::TreeGini, 40, runs, &budget);
    print_sweep("(A) vary d_R at n_R = 40 (ratio 25x)", "d_R", &a, |bv| {
        bv.avg_error
    });

    let b = reponexr_sweep(ModelSpec::TreeGini, 200, runs, &budget);
    print_sweep("(B) vary d_R at n_R = 200 (ratio 5x)", "d_R", &b, |bv| {
        bv.avg_error
    });

    write_json("fig7", &vec![("A_nr40", a), ("B_nr200", b)]);
    println!("\nShape check (paper §4.3): JoinAll ≈ NoJoin in both panels for the tree.");
}
