//! **Figure 4** — average *net variance* (Domingos decomposition) for the
//! Figure 3 sweeps: (A) 1-NN and (B) RBF-SVM under OneXr while `n_R` grows.
//! The deviation in Figure 3's errors is explained by net variance — the
//! extra overfitting NoJoin incurs at low tuple ratios.
//!
//! ```text
//! cargo run --release -p hamlet-bench --bin fig4
//! ```

use hamlet_bench::{
    mc_runs, mc_sweep, print_sweep, sim_budget, three_configs, write_json, SweepPoint,
};
use hamlet_core::montecarlo::onexr_bayes;
use hamlet_core::prelude::*;
use hamlet_datagen::prelude::*;

fn nr_sweep(spec: ModelSpec, runs: usize, budget: &Budget) -> Vec<SweepPoint> {
    let p = OneXrParams::default().p;
    mc_sweep(
        &[1.0, 10.0, 40.0, 100.0, 333.0, 1000.0],
        |x, seed| {
            onexr::generate(OneXrParams {
                n_r: x as u32,
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &three_configs(),
        budget,
        runs,
    )
}

fn main() {
    let budget = sim_budget();
    let runs = mc_runs();
    println!("Figure 4: OneXr net variance, vary n_R = |D_FK| ({runs} runs/point)");

    let a = nr_sweep(ModelSpec::OneNN, runs, &budget);
    print_sweep("(A) 1-NN: average net variance", "n_R", &a, |bv| {
        bv.net_variance
    });

    let b = nr_sweep(ModelSpec::SvmRbf, runs, &budget);
    print_sweep("(B) RBF-SVM: average net variance", "n_R", &b, |bv| {
        bv.net_variance
    });

    write_json("fig4", &vec![("A_1nn", a), ("B_rbf", b)]);
    println!("\nShape check (paper §4.1): the RBF-SVM's error deviation is mirrored by");
    println!("rising net variance (extra overfitting); the 1-NN's net variance is");
    println!("non-monotonic — an artifact of its instability as FK matches vanish.");
}
