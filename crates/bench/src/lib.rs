//! Shared harness for the experiment binaries (one per paper table/figure).
//!
//! Environment knobs honoured by every binary:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `HAMLET_SCALE` | target `n_S` for the Table-1 dataset emulators | 8000 |
//! | `HAMLET_RUNS` | Monte-Carlo runs per simulation point | 20 (paper: 100) |
//! | `HAMLET_FULL` | `1` → paper-fidelity grids & big ANN everywhere | off |
//!
//! Each binary prints the paper's rows/series as an aligned text table and
//! writes the same data as JSON under `target/experiments/` so
//! EXPERIMENTS.md numbers are regenerable artifacts.

use std::io::Write as _;
use std::path::PathBuf;

use hamlet_core::prelude::*;

/// Target emulator size (total labelled examples) from `HAMLET_SCALE`.
pub fn target_n_s() -> usize {
    std::env::var("HAMLET_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8000)
}

/// Monte-Carlo run count from `HAMLET_RUNS` (paper: 100).
pub fn mc_runs() -> usize {
    std::env::var("HAMLET_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
        .max(2)
}

/// Whether full paper fidelity was requested.
pub fn full_fidelity() -> bool {
    std::env::var("HAMLET_FULL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Budget for the real-data (emulator) experiments: paper grids, with
/// kernel/ANN sample caps unless `HAMLET_FULL=1`.
pub fn table_budget() -> Budget {
    if full_fidelity() {
        Budget::paper()
    } else {
        Budget {
            full_grids: true,
            max_kernel_rows: 1500,
            max_knn_rows: 20_000,
            max_ann_rows: 4000,
            ann_epochs: 10,
            small_ann: true,
            logreg_nlambda: 20,
            tree_categorical: hamlet_ml::tree::CategoricalSplit::SubsetPartition,
            seed: 0xB4D6E7,
        }
    }
}

/// Budget for the Monte-Carlo simulations: reduced grids unless
/// `HAMLET_FULL=1` (each point repeats tuning `HAMLET_RUNS` times).
pub fn sim_budget() -> Budget {
    if full_fidelity() {
        Budget::paper()
    } else {
        Budget::quick()
    }
}

/// Simple fixed-width table printer (locked, buffered stdout).
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and emits the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        assert_eq!(headers.len(), widths.len());
        let p = Self {
            widths: widths.to_vec(),
        };
        p.row(headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let refs: Vec<&str> = rule.iter().map(String::as_str).collect();
        p.row(&refs);
        p
    }

    /// Emits one row, left-padding each cell to its column width.
    pub fn row(&self, cells: &[&str]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:<w$}  ", w = *w));
        }
        writeln!(lock, "{}", line.trim_end()).expect("stdout");
    }
}

/// Formats an accuracy to the paper's 4 decimal places.
pub fn acc(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats an error to 4 decimal places.
pub fn err(v: f64) -> String {
    format!("{v:.4}")
}

/// Writes a serialisable artifact to `target/experiments/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialisation failed for {name}: {e}"),
    }
}

/// One point of a simulation sweep: the Domingos decomposition for a
/// (sweep value, feature config) pair.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub x: f64,
    /// Feature-config name (`UseAll` in the paper's figures = `JoinAll`).
    pub config: String,
    /// Decomposition across the Monte-Carlo runs.
    pub bv: BiasVariance,
}

/// Runs a Monte-Carlo sweep: for each `x`, for each config, `runs`
/// training sets are drawn via `gen(x, sample_seed)` and decomposed against
/// `bayes(x, eval_star)`.
pub fn mc_sweep<G, B>(
    xs: &[f64],
    gen: G,
    bayes: B,
    spec: ModelSpec,
    configs: &[FeatureConfig],
    budget: &Budget,
    runs: usize,
) -> Vec<SweepPoint>
where
    G: Fn(f64, u64) -> hamlet_datagen::sim::GeneratedStar,
    B: Fn(f64, &hamlet_datagen::sim::GeneratedStar) -> Option<Vec<bool>>,
{
    let mut out = Vec::with_capacity(xs.len() * configs.len());
    for &x in xs {
        for config in configs {
            let point = run_monte_carlo(
                |seed| gen(x, seed),
                |gs| bayes(x, gs),
                runs,
                spec,
                config,
                budget,
                0xC0FFEE ^ (x * 1024.0) as u64,
            )
            .expect("simulation point runs");
            eprintln!(
                "  x={x:<8} {:<8} err={:.4} netvar={:+.4}",
                point.config, point.result.avg_error, point.result.net_variance
            );
            out.push(SweepPoint {
                x,
                config: point.config,
                bv: point.result,
            });
        }
    }
    out
}

/// Prints a sweep as a table: one row per x, one column per config, cell =
/// `extract(bv)`.
pub fn print_sweep(
    title: &str,
    x_label: &str,
    points: &[SweepPoint],
    extract: impl Fn(&BiasVariance) -> f64,
) {
    println!("\n{title}");
    let mut configs: Vec<String> = Vec::new();
    for p in points {
        if !configs.contains(&p.config) {
            configs.push(p.config.clone());
        }
    }
    let mut headers = vec![x_label.to_string()];
    headers.extend(configs.iter().cloned());
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let widths = vec![12usize; headers.len()];
    let printer = TablePrinter::new(&refs, &widths);
    let mut xs: Vec<f64> = Vec::new();
    for p in points {
        if !xs.contains(&p.x) {
            xs.push(p.x);
        }
    }
    for &x in &xs {
        let mut cells = vec![format!("{x}")];
        for c in &configs {
            let v = points
                .iter()
                .find(|p| p.x == x && &p.config == c)
                .map(|p| extract(&p.bv))
                .unwrap_or(f64::NAN);
            cells.push(format!("{v:.4}"));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        printer.row(&refs);
    }
}

/// The shared Figure 7/8/9 sweep: RepOneXr, vary `d_R ∈ {1,4,8,12,16}` at a
/// fixed `n_R`, with `(n_S, d_S) = (1000, 4)` and `p = 0.1`.
pub fn reponexr_sweep(spec: ModelSpec, n_r: u32, runs: usize, budget: &Budget) -> Vec<SweepPoint> {
    use hamlet_core::montecarlo::onexr_bayes;
    use hamlet_datagen::prelude::*;
    let p = RepOneXrParams::default().p;
    mc_sweep(
        &[1.0, 4.0, 8.0, 12.0, 16.0],
        move |x, seed| {
            reponexr::generate(RepOneXrParams {
                d_r: x as usize,
                n_r,
                seed,
                ..Default::default()
            })
        },
        move |_, gs| onexr_bayes(gs, p),
        spec,
        &three_configs(),
        budget,
        runs,
    )
}

/// The three headline configs, in the tables' column order.
pub fn three_configs() -> Vec<FeatureConfig> {
    vec![
        FeatureConfig::JoinAll,
        FeatureConfig::NoJoin,
        FeatureConfig::NoFK,
    ]
}

/// The two headline configs (models where the paper omits NoFK).
pub fn two_configs() -> Vec<FeatureConfig> {
    vec![FeatureConfig::JoinAll, FeatureConfig::NoJoin]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_defaults() {
        // Do not set env vars here (tests run in one process); just check
        // the defaults parse sanely when unset.
        if std::env::var("HAMLET_RUNS").is_err() {
            assert_eq!(mc_runs(), 20);
        }
        if std::env::var("HAMLET_SCALE").is_err() {
            assert_eq!(target_n_s(), 8000);
        }
    }

    #[test]
    fn budgets_differ_by_fidelity() {
        let t = table_budget();
        assert!(t.full_grids);
        let s = sim_budget();
        if !full_fidelity() {
            assert!(!s.full_grids);
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(acc(0.85371), "0.8537");
        assert_eq!(err(0.04999), "0.0500");
    }

    #[test]
    fn config_lists() {
        assert_eq!(three_configs().len(), 3);
        assert_eq!(two_configs().len(), 2);
    }
}
