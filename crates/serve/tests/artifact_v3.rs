//! Format-v3 acceptance: the round-trip parity matrix (every model family
//! × heap/mmap load), the ANN size-ratio target, corruption handling, and
//! legacy (handcrafted v1 + v2 JSON) warm-loads through the registry.

use std::path::PathBuf;
use std::sync::Arc;

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::{AnyClassifier, SubsetModel};
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::knn::OneNearestNeighbor;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::model::{Classifier, MajorityClass};
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::svm::{KernelKind, SvmModel, SvmParams};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::artifact::{Format, LoadMode, ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::registry::ModelRegistry;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-v3-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A dataset whose features carry real dictionaries (one shared between
/// two features, the FK/RID pattern) so artifacts exercise dedup.
fn dict_dataset(seed: u64, n: usize) -> CatDataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let shared = CatDomain::synthetic("shared", 6).into_shared();
    let features = vec![
        FeatureMeta::with_domain("fk", Provenance::ForeignKey { dim: 0 }, Arc::clone(&shared)),
        FeatureMeta::with_domain("rid", Provenance::Foreign { dim: 0 }, shared),
        FeatureMeta::with_domain(
            "xs",
            Provenance::Home,
            CatDomain::synthetic_with_others("xs", 3).into_shared(),
        ),
    ];
    let cards: Vec<u32> = features.iter().map(|f| f.cardinality).collect();
    let rows: Vec<u32> = (0..n)
        .flat_map(|_| {
            cards
                .iter()
                .map(|&k| rng.gen_range(0..k))
                .collect::<Vec<_>>()
        })
        .collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    CatDataset::new(features, rows, labels).unwrap()
}

fn artifact_for(model: AnyClassifier, ds: &CatDataset, name: &str) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xF00D,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "matrix".into(),
                config: "NoJoin".into(),
                train_accuracy: 1.0,
                val_accuracy: 1.0,
                test_accuracy: 1.0,
                seconds: 0.0,
                winner: "-".into(),
            },
        },
    }
}

fn all_families(ds: &CatDataset) -> Vec<(&'static str, AnyClassifier)> {
    let sub = ds.select_features(&[2]).unwrap();
    vec![
        ("majority", MajorityClass::fit(ds).into()),
        (
            "tree",
            DecisionTree::fit(
                ds,
                TreeParams::new(SplitCriterion::Gini)
                    .with_minsplit(2)
                    .with_cp(0.0),
            )
            .unwrap()
            .into(),
        ),
        ("knn", OneNearestNeighbor::fit(ds).unwrap().into()),
        (
            "svm",
            SvmModel::fit(ds, SvmParams::new(KernelKind::Rbf { gamma: 0.4 }, 4.0))
                .unwrap()
                .into(),
        ),
        (
            "mlp",
            Mlp::fit(
                ds,
                AnnParams {
                    epochs: 2,
                    ..AnnParams::small(1e-4, 0.01)
                },
            )
            .unwrap()
            .into(),
        ),
        ("naive-bayes", NaiveBayes::fit(ds).unwrap().into()),
        (
            "logreg",
            LogRegL1::fit_single(
                ds,
                1e-3,
                LogRegParams {
                    max_iter: 30,
                    ..Default::default()
                },
            )
            .unwrap()
            .into(),
        ),
        (
            "subset",
            SubsetModel {
                keep: vec![2],
                inner: Box::new(NaiveBayes::fit(&sub).unwrap().into()),
            }
            .into(),
        ),
    ]
}

/// Every family: save as v3, reload via heap and mmap, predictions
/// bit-identical to the in-memory model on every in-domain probe row.
#[test]
fn parity_matrix_every_family_heap_and_mmap() {
    use rand::{Rng, SeedableRng};
    let ds = dict_dataset(11, 60);
    let dir = tmp_dir("matrix");
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let cards: Vec<u32> = ds.cardinalities();
    let probes: Vec<Vec<u32>> = (0..64)
        .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
        .collect();

    for (tag, model) in all_families(&ds) {
        let art = artifact_for(model, &ds, &format!("mx-{tag}"));
        let path = art.save(&dir).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let back = ModelArtifact::load_with(&path, mode).unwrap();
            assert_eq!(back.model, art.model, "{tag} {mode:?} value drift");
            for probe in &probes {
                assert_eq!(
                    back.model.predict_row(probe),
                    art.model.predict_row(probe),
                    "{tag} {mode:?} probe {probe:?}"
                );
            }
            // Batched path too (what /v1/predict runs).
            let flat: Vec<u32> = probes.iter().flatten().copied().collect();
            assert_eq!(
                back.model.predict_batch(&flat, cards.len()),
                art.model.predict_batch(&flat, cards.len()),
                "{tag} {mode:?} batch"
            );
            // mmap loads borrow weight payloads for the array-backed
            // families; heap loads never do.
            let expect_mapped = mode == LoadMode::Mmap && !matches!(tag, "majority" | "tree");
            assert_eq!(
                back.model.payload_mapped(),
                expect_mapped,
                "{tag} {mode:?} residency"
            );
            // Dictionaries arrive shared: fk and rid point at one Arc.
            assert!(Arc::ptr_eq(
                back.contract.feature(0).domain.as_ref().unwrap(),
                back.contract.feature(1).domain.as_ref().unwrap()
            ));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole's size target: a (weight-dominated) ANN artifact stored as
/// v3 is at least 4× smaller than the same artifact as v2 JSON.
#[test]
fn ann_v3_artifact_is_4x_smaller_than_v2_json() {
    let ds = dict_dataset(23, 120);
    let mlp = Mlp::fit(
        &ds,
        AnnParams {
            hidden1: 64,
            hidden2: 32,
            epochs: 1,
            ..AnnParams::small(1e-4, 0.01)
        },
    )
    .unwrap();
    let art = artifact_for(mlp.into(), &ds, "size-ann");
    let dir = tmp_dir("size");
    let v3 = std::fs::metadata(art.save(&dir).unwrap()).unwrap().len();
    let v2 = std::fs::metadata(art.save_format(&dir, Format::V2).unwrap())
        .unwrap()
        .len();
    assert!(
        v2 >= 4 * v3,
        "v2 json is {v2} bytes, v3 binary is {v3} bytes — ratio {:.2} < 4",
        v2 as f64 / v3 as f64
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Registry boot over a directory containing corrupted v3 files: clean
/// skips, no panics, healthy artifacts still serve.
#[test]
fn warm_load_survives_corrupted_and_truncated_v3_artifacts() {
    let ds = dict_dataset(31, 40);
    let dir = tmp_dir("corrupt");
    let good = artifact_for(NaiveBayes::fit(&ds).unwrap().into(), &ds, "good");
    let path = good.save(&dir).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // A truncated copy, a bit-flipped section table, and junk with magic.
    std::fs::write(dir.join("trunc@1.model.bin"), &bytes[..bytes.len() / 2]).unwrap();
    let mut flipped = bytes.clone();
    flipped[20] ^= 0xFF;
    std::fs::write(dir.join("flipped@1.model.bin"), &flipped).unwrap();
    std::fs::write(dir.join("junk@1.model.bin"), b"HMLAjunkjunkjunk").unwrap();
    for mode in [LoadMode::Heap, LoadMode::Mmap] {
        let (reg, loaded) = ModelRegistry::warm_load_with(&dir, mode).unwrap();
        assert_eq!(loaded, 1, "{mode:?}: only the healthy artifact registers");
        let art = reg.get("good").unwrap();
        assert_eq!(art.model, good.model);
        assert!(reg.get("trunc").is_err());
        assert!(reg.get("junk").is_err());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Handcrafted v1 and v2 JSON files — byte layouts frozen from the earlier
/// releases — still warm-load and serve next to v3 artifacts.
#[test]
fn handcrafted_v1_and_v2_artifacts_warm_load_alongside_v3() {
    let dir = tmp_dir("legacy");
    std::fs::create_dir_all(&dir).unwrap();
    // v1: `features` key, no dictionaries.
    std::fs::write(
        dir.join("legacy-v1@1.model.json"),
        r#"{
            "format_version": 1,
            "name": "legacy-v1", "version": 1,
            "model": {"Majority": {"positive": false}},
            "feature_config": "NoJoin",
            "features": [
                {"name": "a", "cardinality": 3, "provenance": "Home"}
            ],
            "schema_fingerprint": 1,
            "metadata": {
                "dataset": "toy", "spec": "TreeGini", "train_rows": 4,
                "metrics": {"model": "m", "config": "NoJoin",
                            "train_accuracy": 1.0, "val_accuracy": 1.0,
                            "test_accuracy": 0.5, "seconds": 0.0,
                            "winner": "-"}
            }
        }"#,
    )
    .unwrap();
    // v2: `contract` key with embedded dictionaries.
    std::fs::write(
        dir.join("legacy-v2@1.model.json"),
        r#"{
            "format_version": 2,
            "name": "legacy-v2", "version": 1,
            "model": {"Majority": {"positive": true}},
            "feature_config": "NoJoin",
            "contract": [
                {"name": "a", "cardinality": 3,
                 "provenance": {"ForeignKey": {"dim": 0}},
                 "domain": {"name": "a", "labels": ["x", "y", "Others"]}}
            ],
            "schema_fingerprint": 2,
            "metadata": {
                "dataset": "toy", "spec": "TreeGini", "train_rows": 4,
                "metrics": {"model": "m", "config": "NoJoin",
                            "train_accuracy": 1.0, "val_accuracy": 1.0,
                            "test_accuracy": 0.5, "seconds": 0.0,
                            "winner": "-"}
            }
        }"#,
    )
    .unwrap();
    // A v3 artifact beside them.
    let ds = dict_dataset(41, 30);
    artifact_for(MajorityClass { positive: true }.into(), &ds, "modern")
        .save(&dir)
        .unwrap();

    let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
    assert_eq!(loaded, 3);
    let v1 = reg.get("legacy-v1").unwrap();
    assert!(!v1.contract.has_domains());
    assert!(!v1.model.predict_row(&[0]));
    let v2 = reg.get("legacy-v2").unwrap();
    assert!(v2.contract.has_domains());
    // The v2 dictionary still encodes raw labels, Others fallback intact.
    assert_eq!(v2.encode_raw(&[vec!["unseen".into()]]).unwrap(), vec![2]);
    assert!(reg.get("modern").is_ok());

    // Converting a legacy artifact to v3 preserves predictions and the
    // contract (the full v2→v3 upgrade path).
    let upgraded_path = v2.save(&dir).unwrap();
    let upgraded = ModelArtifact::load_with(&upgraded_path, LoadMode::Mmap).unwrap();
    assert_eq!(upgraded.model, v2.model);
    assert_eq!(upgraded.contract, v2.contract);
    std::fs::remove_dir_all(&dir).ok();
}

/// Quantized artifacts end to end (the `convert --quantize` path): an MLP
/// and an SVM quantized to i8 and f16, saved as v3 and reloaded via heap
/// AND mmap, must agree with the f32 original on ≥ 99% of in-domain rows,
/// predict identically across load modes, and (i8, weight-dominated MLP)
/// shrink the artifact at least 2×.
#[test]
fn quantized_artifacts_reload_with_high_agreement_and_i8_shrinks_2x() {
    use hamlet_ml::quant::QuantEncoding;
    use rand::{Rng, SeedableRng};
    // A dataset with real signal (noisy parity of two features): models
    // with random labels sit on a near-zero decision boundary everywhere,
    // which says nothing about quantization quality.
    let mut rng = rand::rngs::StdRng::seed_from_u64(67);
    let base = dict_dataset(67, 10);
    let cards = base.cardinalities();
    let d = cards.len();
    let n = 400;
    let flat: Vec<u32> = (0..n * d).map(|i| rng.gen_range(0..cards[i % d])).collect();
    let labels: Vec<bool> = flat
        .chunks(d)
        .map(|r| {
            let clean = (r[0] + r[2]) % 2 == 0;
            if rng.gen_bool(0.85) {
                clean
            } else {
                !clean
            }
        })
        .collect();
    let ds = CatDataset::new(base.contract().features().to_vec(), flat.clone(), labels).unwrap();
    // Agreement is measured on the (in-distribution) training rows: far
    // out-of-distribution probes all sit on the near-zero decision
    // boundary, where agreement says nothing about quantization quality.
    let dir = tmp_dir("quant");

    let mlp: AnyClassifier = Mlp::fit(
        &ds,
        AnnParams {
            hidden1: 64,
            hidden2: 32,
            epochs: 2,
            ..AnnParams::small(1e-4, 0.01)
        },
    )
    .unwrap()
    .into();
    let svm: AnyClassifier =
        SvmModel::fit(&ds, SvmParams::new(KernelKind::Rbf { gamma: 0.4 }, 4.0))
            .unwrap()
            .into();

    for (tag, model) in [("mlp", mlp), ("svm", svm)] {
        let art = artifact_for(model, &ds, &format!("q-{tag}"));
        let f32_len = std::fs::metadata(art.save(&dir).unwrap()).unwrap().len();
        let base = art.model.predict_batch(&flat, d);
        for enc in [QuantEncoding::I8, QuantEncoding::F16] {
            let qart = artifact_for(
                art.model.quantize(enc).unwrap(),
                &ds,
                &format!("q-{tag}-{}", enc.name()),
            );
            let qpath = qart.save(&dir).unwrap();
            let mut per_mode = Vec::new();
            for mode in [LoadMode::Heap, LoadMode::Mmap] {
                let back = ModelArtifact::load_with(&qpath, mode).unwrap();
                assert_eq!(back.model.encoding(), enc.name(), "{tag} {mode:?}");
                let preds = back.model.predict_batch(&flat, d);
                let agree = preds.iter().zip(&base).filter(|(a, b)| a == b).count() as f64
                    / base.len() as f64;
                assert!(
                    agree >= 0.99,
                    "{tag} {} {mode:?}: agreement {agree:.4} < 0.99",
                    enc.name()
                );
                per_mode.push(preds);
            }
            assert_eq!(
                per_mode[0],
                per_mode[1],
                "{tag} {}: heap and mmap predictions must match",
                enc.name()
            );
            if tag == "mlp" && enc == QuantEncoding::I8 {
                let q_len = std::fs::metadata(&qpath).unwrap().len();
                assert!(
                    f32_len >= 2 * q_len,
                    "i8 MLP artifact is {q_len} bytes vs f32 {f32_len} — ratio {:.2} < 2",
                    f32_len as f64 / q_len as f64
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Lazy warm-load end to end: old versions are non-resident until first
/// pinned request, and the promoted model predicts identically.
#[test]
fn lazy_old_versions_promote_on_demand_with_identical_predictions() {
    let ds = dict_dataset(53, 50);
    let dir = tmp_dir("lazy");
    let families = all_families(&ds);
    // Three versions of one name: tree, then svm, then mlp (latest).
    let mut originals = Vec::new();
    for (i, idx) in [1usize, 3, 4].iter().enumerate() {
        let mut art = artifact_for(families[*idx].1.clone(), &ds, "ladder");
        art.version = (i + 1) as u32;
        art.save(&dir).unwrap();
        originals.push(art);
    }
    let (reg, loaded) = ModelRegistry::warm_load_with(&dir, LoadMode::Mmap).unwrap();
    assert_eq!(loaded, 3);
    assert_eq!(reg.resident_count(), 1, "only ladder@3 resident at boot");
    let listed = reg.list();
    assert_eq!(listed.len(), 3);
    assert_eq!(
        listed.iter().map(|m| &m.family).collect::<Vec<_>>(),
        vec!["tree", "svm", "mlp"],
        "lazy heads still report the correct family"
    );
    // Pinned request against a lazy slot: loads, caches, bit-matches.
    let cards = ds.cardinalities();
    let probe: Vec<u32> = cards.iter().map(|&k| k - 1).collect();
    for (i, original) in originals.iter().enumerate() {
        let got = reg.get(&format!("ladder@{}", i + 1)).unwrap();
        assert_eq!(got.model, original.model);
        assert_eq!(
            got.model.predict_row(&probe),
            original.model.predict_row(&probe)
        );
    }
    assert_eq!(reg.resident_count(), 3);
    std::fs::remove_dir_all(&dir).ok();
}
