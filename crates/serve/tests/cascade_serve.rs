//! Serving-path correctness for tiered cascades: threshold-0 and
//! threshold-1 cascades are byte-identical (labels) to their single-tier
//! equivalents through the full artifact save → warm-load → `/v1/predict`
//! path; batched execution (which partitions and re-packs ambiguous rows
//! between tiers) bit-matches per-row solo requests; and a zero-copy mmap
//! load serves exactly what the heap load serves.

use std::path::PathBuf;

use hamlet_core::feature_config::{build_dataset, FeatureConfig};
use hamlet_datagen::prelude::*;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::cascade::{Calibrator, CascadeModel, CascadeTier};
use hamlet_ml::dataset::CatDataset;
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_serve::api::PredictResponse;
use hamlet_serve::artifact::{LoadMode, ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::http::{Request, Responder, Response};
use hamlet_serve::server::{router, AppState, WarmOptions};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-casc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset() -> CatDataset {
    let g = onexr::generate(OneXrParams {
        n_s: 200,
        n_r: 8,
        ..Default::default()
    });
    build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap()
}

fn tree(ds: &CatDataset) -> AnyClassifier {
    DecisionTree::fit(
        ds,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into()
}

fn mlp(ds: &CatDataset) -> AnyClassifier {
    Mlp::fit(
        ds,
        AnnParams {
            epochs: 3,
            ..AnnParams::small(1e-4, 0.01)
        },
    )
    .unwrap()
    .into()
}

/// A tree→MLP cascade with a Platt-calibrated front tier. `threshold`
/// picks the short-circuit bar directly; `None` derives one from the
/// observed confidence spread so that only the most-confident rows stay on
/// tier 0 — guaranteeing the batch genuinely splits across tiers.
fn cascade(ds: &CatDataset, threshold: Option<f64>) -> AnyClassifier {
    let tier0 = tree(ds);
    let tier1 = mlp(ds);
    let d = ds.n_features();
    let flat: Vec<u32> = (0..ds.n_rows()).flat_map(|i| ds.row(i).to_vec()).collect();
    let scores = tier0.score_batch(&flat, d);
    // Distillation targets: agreement with the top tier, exactly what the
    // CLI's cascade builder calibrates against.
    let top = tier1.predict_batch(&flat, d);
    let agree: Vec<bool> = tier0
        .predict_batch(&flat, d)
        .iter()
        .zip(&top)
        .map(|(a, b)| a == b)
        .collect();
    let calibrator = Calibrator::fit_platt(&scores, &agree).unwrap();
    let threshold = threshold.unwrap_or_else(|| {
        let mut confs: Vec<f64> = scores.iter().map(|&s| calibrator.confidence(s)).collect();
        confs.sort_by(f64::total_cmp);
        confs.dedup();
        assert!(
            confs.len() >= 2,
            "test setup needs a confidence spread to split on"
        );
        // Only rows at the maximum confidence short-circuit; everything
        // else escalates.
        *confs.last().unwrap()
    });
    AnyClassifier::Cascade(
        CascadeModel::new(vec![
            CascadeTier {
                model: tier0,
                calibrator,
                threshold,
            },
            CascadeTier {
                model: tier1,
                calibrator: Calibrator::Platt { a: 0.0, b: 0.0 },
                threshold: 1.0,
            },
        ])
        .unwrap(),
    )
}

fn artifact_for(name: &str, model: AnyClassifier, ds: &CatDataset) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xCA5C,
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: hamlet_core::model_zoo::ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: hamlet_core::experiment::RunResult {
                model: "n/a".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

fn post_predict(handler: &hamlet_serve::http::Handler, query: &str, body: &str) -> (u16, String) {
    let (responder, rx) = Responder::direct();
    handler(
        &Request {
            method: "POST".into(),
            path: "/v1/predict".into(),
            query: query.into(),
            body: body.as_bytes().to_vec(),
            keep_alive: false,
        },
        responder,
    );
    let resp: Response = rx.recv().expect("handler answered");
    (resp.status, String::from_utf8(resp.body).unwrap())
}

fn rows_json(ds: &CatDataset, take: usize) -> String {
    let rows: Vec<Vec<u32>> = (0..take.min(ds.n_rows()))
        .map(|i| ds.row(i).to_vec())
        .collect();
    serde_json::to_string(&rows).unwrap()
}

fn predict_labels(
    handler: &hamlet_serve::http::Handler,
    model: &str,
    rows: &str,
) -> PredictResponse {
    let (status, body) = post_predict(
        handler,
        "",
        &format!("{{\"model\":\"{model}\",\"rows\":{rows}}}"),
    );
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

#[test]
fn threshold_extremes_are_identical_to_single_tiers() {
    let ds = dataset();
    let dir = tmp_dir("extremes");
    for (name, model) in [
        ("tree-only", tree(&ds)),
        ("mlp-only", mlp(&ds)),
        // Threshold 0: every calibrated confidence (∈ [0.5, 1)) clears it,
        // so tier 0 answers everything. Threshold 1: nothing clears it, so
        // every row escalates to the top tier.
        ("casc-zero", cascade(&ds, Some(0.0))),
        ("casc-one", cascade(&ds, Some(1.0))),
    ] {
        artifact_for(name, model, &ds).save(&dir).unwrap();
    }
    let (app, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 4);
    let handler = router(app);
    let rows = rows_json(&ds, 64);
    let tree_resp = predict_labels(&handler, "tree-only", &rows);
    let mlp_resp = predict_labels(&handler, "mlp-only", &rows);
    let zero = predict_labels(&handler, "casc-zero", &rows);
    let one = predict_labels(&handler, "casc-one", &rows);
    assert_eq!(zero.labels, tree_resp.labels, "threshold 0 ≡ tier 0 alone");
    assert_eq!(one.labels, mlp_resp.labels, "threshold 1 ≡ top tier alone");
    assert!(zero.tiers.unwrap().iter().all(|&t| t == 0));
    assert!(one.tiers.unwrap().iter().all(|&t| t == 1));
    assert!(
        tree_resp.tiers.is_none(),
        "single models carry no provenance"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_cascade_bitmatches_per_row_requests() {
    let ds = dataset();
    let dir = tmp_dir("repack");
    // A mid threshold so the batch genuinely splits: some rows answered by
    // tier 0, the ambiguous remainder re-packed for the MLP.
    artifact_for("casc", cascade(&ds, None), &ds)
        .save(&dir)
        .unwrap();
    let (app, _) = AppState::warm(dir.clone()).unwrap();
    let handler = router(app);
    // All dataset rows: the derived threshold guarantees both tiers appear
    // somewhere in this set.
    let n = ds.n_rows();
    let batch = predict_labels(&handler, "casc", &rows_json(&ds, n));
    let batch_tiers = batch.tiers.clone().unwrap();
    assert!(
        batch_tiers.contains(&0) && batch_tiers.contains(&1),
        "threshold must split the batch across tiers: {batch_tiers:?}"
    );
    // Every row answered solo agrees with its slot in the batched answer —
    // the partition/re-pack must restore row order exactly.
    for (i, tier) in batch_tiers.iter().enumerate() {
        let row = serde_json::to_string(&[ds.row(i)]).unwrap();
        let solo = predict_labels(&handler, "casc", &row);
        assert_eq!(solo.labels[0], batch.labels[i], "row {i}");
        assert_eq!(solo.tiers.unwrap()[0], *tier, "row {i} tier");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mmap_cascade_serves_identically_to_heap() {
    let ds = dataset();
    let dir = tmp_dir("mmap");
    artifact_for("casc", cascade(&ds, None), &ds)
        .save(&dir)
        .unwrap();
    let rows = rows_json(&ds, 48);
    let mut answers = Vec::new();
    for mode in [LoadMode::Heap, LoadMode::Mmap] {
        let (app, loaded) = AppState::warm_full(
            dir.clone(),
            WarmOptions {
                load_mode: mode,
                ..WarmOptions::default()
            },
        )
        .unwrap();
        assert_eq!(loaded, 1);
        let handler = router(app);
        let resp = predict_labels(&handler, "casc", &rows);
        answers.push((resp.labels, resp.tiers));
    }
    assert_eq!(answers[0], answers[1], "heap and mmap loads must agree");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_tiers_flag_rides_the_query_string() {
    let ds = dataset();
    let dir = tmp_dir("explain");
    artifact_for("casc", cascade(&ds, None), &ds)
        .save(&dir)
        .unwrap();
    let (app, _) = AppState::warm(dir.clone()).unwrap();
    let handler = router(app);
    let body = format!("{{\"model\":\"casc\",\"rows\":{}}}", rows_json(&ds, 8));
    let (status, plain) = post_predict(&handler, "", &body);
    assert_eq!(status, 200, "{plain}");
    let plain: PredictResponse = serde_json::from_str(&plain).unwrap();
    assert!(plain.tier_confidence.is_none());
    let (status, explained) = post_predict(&handler, "explain_tiers=1", &body);
    assert_eq!(status, 200, "{explained}");
    let explained: PredictResponse = serde_json::from_str(&explained).unwrap();
    let conf = explained.tier_confidence.expect("confidence present");
    assert_eq!(conf.len(), 8);
    assert!(conf.iter().all(|c| (0.5..1.0).contains(c)), "{conf:?}");
    assert_eq!(plain.labels, explained.labels);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cascade_partition_is_deterministic_across_thread_counts() {
    // The serving path shards tier scoring; determinism across fan-out
    // widths is what makes coalesced answers bit-identical to solo ones.
    let ds = dataset();
    let AnyClassifier::Cascade(c) = cascade(&ds, None) else {
        unreachable!()
    };
    let d = ds.n_features();
    let flat: Vec<u32> = (0..ds.n_rows()).flat_map(|i| ds.row(i).to_vec()).collect();
    let reference = c.predict_batch_tiered(&flat, d, 1, 1);
    for threads in [2, 4, 7] {
        let got = c.predict_batch_tiered(&flat, d, threads, 8);
        assert_eq!(got.labels, reference.labels, "{threads} threads");
        assert_eq!(got.tiers, reference.tiers, "{threads} threads");
        let bits: Vec<u64> = got.confidence.iter().map(|x| x.to_bits()).collect();
        let ref_bits: Vec<u64> = reference.confidence.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, ref_bits, "{threads} threads");
    }
}
