//! Artifact roundtrip parity: train → save → load → *bitwise-identical*
//! predictions, for every model family the zoo can produce.

use std::path::PathBuf;

use hamlet_core::experiment::run_experiment_with_model;
use hamlet_core::feature_config::{build_splits, FeatureConfig};
use hamlet_core::model_zoo::{Budget, ModelSpec};
use hamlet_datagen::prelude::*;
use hamlet_ml::model::Classifier;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Trains `spec` on a small OneXr star, persists it, reloads it, and checks
/// the reloaded model predicts identically on every test row.
fn roundtrip_spec(spec: ModelSpec, tag: &str) {
    let g = onexr::generate(OneXrParams {
        n_s: 240,
        n_r: 12,
        ..Default::default()
    });
    let config = FeatureConfig::NoJoin;
    let budget = Budget::quick();
    let trained = run_experiment_with_model(&g, spec, &config, &budget).unwrap();

    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: format!("rt-{tag}"),
        version: 1,
        model: trained.model,
        feature_config: config.clone(),
        contract: trained.contract,
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec,
            train_rows: g.n_train,
            metrics: trained.result,
        },
    };

    let dir = tmp_dir(tag);
    let path = artifact.save(&dir).unwrap();
    let reloaded = ModelArtifact::load(&path).unwrap();

    let data = build_splits(&g, &config).unwrap();
    let before = artifact.model.predict(&data.test);
    let after = reloaded.model.predict(&data.test);
    assert_eq!(
        before,
        after,
        "{} predictions drifted across save/load",
        spec.name()
    );
    // The loaded model is the same value, not merely an equivalent one.
    assert_eq!(artifact.model, reloaded.model, "{}", spec.name());
    assert_eq!(reloaded.schema_fingerprint, g.star.fingerprint());
    assert_eq!(
        reloaded.feature_fingerprint(),
        artifact.feature_fingerprint()
    );
    // The v2 contract (with dictionaries) survives byte-for-byte: raw
    // labels decoded from the test rows re-encode to the original codes.
    assert_eq!(reloaded.contract, artifact.contract, "{}", spec.name());
    assert!(reloaded.contract.has_domains(), "{}", spec.name());
    let first = data.test.row(0);
    let labels = reloaded.contract.decode_row(first).unwrap();
    assert_eq!(
        reloaded.contract.encode_batch(&[labels]).unwrap(),
        first.to_vec()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tree_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::TreeGini, "tree");
}

#[test]
fn knn_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::OneNN, "knn");
}

#[test]
fn svm_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::SvmRbf, "svm");
}

#[test]
fn ann_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::Ann, "ann");
}

#[test]
fn nb_bfs_subset_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::NaiveBayesBfs, "nb");
}

#[test]
fn logreg_roundtrips_bit_exactly() {
    roundtrip_spec(ModelSpec::LogRegL1, "logreg");
}

#[test]
fn loaded_artifact_serves_full_domain_without_panicking() {
    // Beyond parity on the test split: sweep every FK code in the domain
    // (seen or unseen in training) through the reloaded model.
    let g = onexr::generate(OneXrParams {
        n_s: 200,
        n_r: 10,
        ..Default::default()
    });
    let config = FeatureConfig::NoJoin;
    let trained =
        run_experiment_with_model(&g, ModelSpec::TreeGini, &config, &Budget::quick()).unwrap();
    let contract = trained.contract.clone();
    let d = contract.width();
    let fk_col = contract
        .features()
        .iter()
        .position(|f| {
            matches!(
                f.provenance,
                hamlet_ml::dataset::Provenance::ForeignKey { .. }
            )
        })
        .unwrap();
    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "domain-sweep".into(),
        version: 1,
        model: trained.model,
        feature_config: config,
        contract,
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: ModelSpec::TreeGini,
            train_rows: g.n_train,
            metrics: trained.result,
        },
    };
    let dir = tmp_dir("sweep");
    let reloaded = ModelArtifact::load(&artifact.save(&dir).unwrap()).unwrap();
    for code in 0..10u32 {
        let mut row = vec![0u32; d];
        row[fk_col] = code;
        artifact.validate_coded(&[row.clone()]).unwrap();
        let a = artifact.model.predict_row(&row);
        let b = reloaded.model.predict_row(&row);
        assert_eq!(a, b, "fk code {code}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
