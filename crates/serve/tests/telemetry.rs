//! End-to-end telemetry & ops-plane tests over real HTTP: audit events for
//! train/promote/demote land in `/v1/stats` and survive restart on the
//! durable event log, `/metrics` exposes well-formed per-model counters,
//! and the idle auto-demoter (driven by the reactor's timer wheel) demotes
//! an untouched promoted non-latest version without touching the latest.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::api::{ModelsResponse, StatsResponse};
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::http::{AppTick, ServerOptions};
use hamlet_serve::server::{demote_idle, serve, serve_with, AppState};
use hamlet_serve::telemetry::{EventKind, EventLog};

/// Minimal HTTP client: one request on a fresh connection.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-telemetry-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A tiny deterministic tree artifact (no training pipeline involved), as
/// `name@version`. Two features, two-value closed domains.
fn tiny_artifact(name: &str, version: u32) -> ModelArtifact {
    let d = 2usize;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), 2).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = vec![0, 0, 0, 1, 1, 0, 1, 1];
    let labels: Vec<bool> = vec![false, true, true, false];
    let ds = CatDataset::new(features, rows, labels).unwrap();
    let model: AnyClassifier = DecisionTree::fit(
        &ds,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into();
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xD0D0,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "telemetry-test".into(),
                config: "NoJoin".into(),
                train_accuracy: 1.0,
                val_accuracy: 1.0,
                test_accuracy: 1.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

fn count_kind(stats: &StatsResponse, kind: EventKind) -> usize {
    stats.events.iter().filter(|e| e.kind == kind).count()
}

/// Train, promote and demote each append an audit event observable over
/// HTTP; `/metrics` is well-formed with non-zero per-model counters; the
/// durable log replays everything after both servers exit.
#[test]
fn audit_events_and_ops_surface_over_http() {
    let dir = tmp_dir("audit");

    // ---- Server 1: train two versions over HTTP. ----
    let (state, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 0);
    let server = serve("127.0.0.1:0", 2, Arc::clone(&state)).unwrap();
    let addr = server.addr();
    let train_body = "{\"name\":\"tm\",\"dataset\":\"movies\",\"spec\":\"TreeGini\",\
                      \"scale\":300,\"seed\":7}";
    for expect_key in ["tm@1", "tm@2"] {
        let (status, body) = http(addr, "POST", "/v1/train", train_body);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(expect_key), "{body}");
    }
    let (status, body) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200, "{body}");
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(count_kind(&stats, EventKind::Startup), 1);
    assert_eq!(count_kind(&stats, EventKind::Train), 2, "{body}");
    assert_eq!(stats.models_registered, 2);
    server.shutdown();
    drop(state);

    // ---- Server 2: boots warm; tm@1 is lazy until pinned traffic. ----
    let (state, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 2);
    let server = serve("127.0.0.1:0", 2, Arc::clone(&state)).unwrap();
    let addr = server.addr();

    // A pinned predict promotes the lazy tm@1 slot → Promote event. The
    // row width comes from the artifact's own contract (it depends on the
    // dataset scale), all-zero codes are always in-domain.
    let width = state.registry.get("tm@2").unwrap().contract.width();
    let predict_body = format!(
        "{{\"model\":\"tm@1\",\"rows\":[[{}]]}}",
        vec!["0"; width].join(",")
    );
    for _ in 0..5 {
        let (status, body) = http(addr, "POST", "/v1/predict", &predict_body);
        assert_eq!(status, 200, "{body}");
    }
    // An HTTP demote returns it to its lazy slot → Demote event.
    let (status, body) = http(addr, "POST", "/v1/models/demote", "{\"key\":\"tm@1\"}");
    assert_eq!(status, 200, "{body}");

    let (status, body) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200, "{body}");
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(count_kind(&stats, EventKind::Startup), 1, "{body}");
    assert_eq!(count_kind(&stats, EventKind::Promote), 1, "{body}");
    assert_eq!(count_kind(&stats, EventKind::Demote), 1, "{body}");
    let tm1 = stats
        .models
        .iter()
        .find(|m| m.model == "tm@1")
        .expect("tm@1 stats row");
    assert_eq!(tm1.requests, 5);
    assert!(tm1.p50_ms.is_some() && tm1.p99_ms.is_some() && tm1.p999_ms.is_some());
    assert!(tm1.idle_secs.is_some());

    // /metrics: per-model counter present and non-zero, every sample's
    // family declared by a preceding # TYPE line.
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("hamlet_model_requests_total{model=\"tm@1\"} 5"),
        "{text}"
    );
    let mut declared = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            declared.insert(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let metric = line.split(['{', ' ']).next().unwrap();
        let base = metric
            .strip_suffix("_sum")
            .or_else(|| metric.strip_suffix("_count"))
            .unwrap_or(metric);
        assert!(
            declared.contains(metric) || declared.contains(base),
            "sample `{metric}` precedes its # TYPE line:\n{text}"
        );
    }
    server.shutdown();
    drop(state);

    // ---- The durable log has the full history across both lifetimes. ----
    let log = EventLog::open(&dir.join("events")).unwrap();
    let events = log.scan_range(0, u64::MAX).unwrap();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Startup))
            .count(),
        2
    );
    assert_eq!(
        kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Train))
            .count(),
        2
    );
    assert_eq!(
        kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Promote))
            .count(),
        1
    );
    assert_eq!(
        kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Demote))
            .count(),
        1
    );
    // Events carry their model keys.
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::Train && e.model == "tm@2"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The telemetry-driven auto-demoter: a promoted non-latest version left
/// untouched past the idle threshold is demoted by the reactor tick; the
/// latest version stays resident throughout.
#[test]
fn auto_demoter_demotes_idle_promoted_version() {
    let dir = tmp_dir("autodemote");
    tiny_artifact("ad", 1).save(&dir).unwrap();
    tiny_artifact("ad", 2).save(&dir).unwrap();

    let (state, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 2);
    let idle = Duration::from_millis(1500);
    let tick_state = Arc::clone(&state);
    let opts = ServerOptions {
        workers: 2,
        on_tick: Some(AppTick {
            every: Duration::from_millis(300),
            run: Arc::new(move || {
                demote_idle(&tick_state, idle);
            }),
        }),
        ..ServerOptions::default()
    };
    let server = serve_with("127.0.0.1:0", opts, Arc::clone(&state)).unwrap();
    let addr = server.addr();

    // Promote ad@1 with a pinned predict; both versions now resident.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"ad@1\",\"rows\":[[0,1]]}",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(state.registry.resident_count(), 2);

    // Leave ad@1 untouched; the wheel tick must demote it. Poll rather
    // than sleep a fixed time — CI machines are slow and the wheel is
    // half-second-granular.
    let deadline = Instant::now() + Duration::from_secs(20);
    let demoted = loop {
        let (status, body) = http(addr, "GET", "/v1/models", "");
        assert_eq!(status, 200);
        let models: ModelsResponse = serde_json::from_str(&body).unwrap();
        let ad1 = models.models.iter().find(|m| m.key == "ad@1").unwrap();
        let ad2 = models.models.iter().find(|m| m.key == "ad@2").unwrap();
        assert!(ad2.resident, "latest version must never be auto-demoted");
        if !ad1.resident {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(250));
    };
    assert!(
        demoted,
        "idle ad@1 was not auto-demoted within the deadline"
    );

    // The demotion was audited, attributed to the auto-demoter's path.
    let (status, body) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    assert!(
        stats
            .events
            .iter()
            .any(|e| e.kind == EventKind::Demote && e.model == "ad@1"),
        "{body}"
    );

    // And the demoted version still answers (re-promotes on demand).
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"ad@1\",\"rows\":[[1,0]]}",
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
