//! Property test: `AnyClassifier` serde roundtrip preserves `predict_row`
//! on arbitrary in-domain rows, for every model family.

use proptest::prelude::*;

use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::{AnyClassifier, SubsetModel};
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::knn::OneNearestNeighbor;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::model::{Classifier, MajorityClass};
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::svm::{KernelKind, SvmModel, SvmParams};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};

/// A random dataset: (n, d, k, seed)-shaped categorical rows with random
/// labels, plus the list of cardinalities for row generation.
fn dataset_strategy() -> impl Strategy<Value = CatDataset> {
    (4usize..24, 1usize..4, 2u32..5, 0u64..10_000).prop_map(|(n, d, k, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let features: Vec<FeatureMeta> = (0..d)
            .map(|j| {
                FeatureMeta::new(
                    format!("f{j}"),
                    k,
                    if j == 0 && d > 1 {
                        Provenance::ForeignKey { dim: 0 }
                    } else {
                        Provenance::Home
                    },
                )
            })
            .collect();
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        CatDataset::new(features, rows, labels).unwrap()
    })
}

/// Every trainable family on this dataset, as `AnyClassifier`s.
fn all_families(ds: &CatDataset) -> Vec<AnyClassifier> {
    let mut models: Vec<AnyClassifier> = vec![
        MajorityClass::fit(ds).into(),
        DecisionTree::fit(
            ds,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap()
        .into(),
        OneNearestNeighbor::fit(ds).unwrap().into(),
        SvmModel::fit(ds, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, 5.0))
            .unwrap()
            .into(),
        NaiveBayes::fit(ds).unwrap().into(),
        LogRegL1::fit_single(
            ds,
            1e-3,
            LogRegParams {
                max_iter: 40,
                ..Default::default()
            },
        )
        .unwrap()
        .into(),
        Mlp::fit(
            ds,
            AnnParams {
                epochs: 3,
                ..AnnParams::small(1e-4, 0.01)
            },
        )
        .unwrap()
        .into(),
    ];
    // A subset wrapper over the first feature, when there is more than one.
    if ds.n_features() > 1 {
        let sub = ds.select_features(&[0]).unwrap();
        models.push(
            SubsetModel {
                keep: vec![0],
                inner: Box::new(NaiveBayes::fit(&sub).unwrap().into()),
            }
            .into(),
        );
    }
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serde_roundtrip_preserves_predict_row(ds in dataset_strategy(), probe_seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(probe_seed);
        // Arbitrary in-domain probe rows, independent of the training rows.
        let cards: Vec<u32> = ds.cardinalities();
        let probes: Vec<Vec<u32>> = (0..16)
            .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
            .collect();

        for model in all_families(&ds) {
            let json = serde_json::to_string(&model).unwrap();
            let back: AnyClassifier = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &model, "family {}", model.family());
            for probe in &probes {
                prop_assert_eq!(
                    back.predict_row(probe),
                    model.predict_row(probe),
                    "family {} probe {:?}",
                    model.family(),
                    probe
                );
            }
        }
    }

    #[test]
    fn roundtrip_is_stable_under_double_serialization(ds in dataset_strategy()) {
        // serialize(deserialize(serialize(m))) == serialize(m): no lossy
        // float printing or field reordering anywhere in the chain.
        for model in all_families(&ds) {
            let once = serde_json::to_string(&model).unwrap();
            let back: AnyClassifier = serde_json::from_str(&once).unwrap();
            let twice = serde_json::to_string(&back).unwrap();
            prop_assert_eq!(once, twice, "family {}", model.family());
        }
    }
}
