//! Raw-string ingest parity: for **every model family**, a v2 artifact
//! saved to disk and warm-loaded back serves `rows_raw` (label strings,
//! dictionary-encoded server-side) with predictions bit-identical to the
//! equivalent pre-encoded `rows` — and both match the in-process model.
//! Plus a proptest that `encode(decode(codes)) == codes` under the
//! artifact's contract.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use hamlet_core::feature_config::{build_dataset, FeatureConfig};
use hamlet_datagen::prelude::*;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::{AnyClassifier, SubsetModel};
use hamlet_ml::dataset::CatDataset;
use hamlet_ml::knn::OneNearestNeighbor;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::model::MajorityClass;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::svm::{KernelKind, SvmModel, SvmParams};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_serve::api::{PredictRequest, PredictResponse};
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::http::{Request, Response};
use hamlet_serve::server::{router, AppState};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-raw-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small star-schema dataset whose contract carries real dictionaries.
fn contracted_dataset() -> CatDataset {
    let g = onexr::generate(OneXrParams {
        n_s: 160,
        n_r: 8,
        ..Default::default()
    });
    build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap()
}

/// One quickly-fit model per `AnyClassifier` family.
fn all_families(ds: &CatDataset) -> Vec<AnyClassifier> {
    vec![
        MajorityClass::fit(ds).into(),
        DecisionTree::fit(
            ds,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap()
        .into(),
        OneNearestNeighbor::fit(ds).unwrap().into(),
        SvmModel::fit(ds, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, 5.0))
            .unwrap()
            .into(),
        NaiveBayes::fit(ds).unwrap().into(),
        LogRegL1::fit_single(
            ds,
            1e-3,
            LogRegParams {
                max_iter: 40,
                ..Default::default()
            },
        )
        .unwrap()
        .into(),
        Mlp::fit(
            ds,
            AnnParams {
                epochs: 3,
                ..AnnParams::small(1e-4, 0.01)
            },
        )
        .unwrap()
        .into(),
        SubsetModel {
            keep: vec![0, ds.n_features() - 1],
            inner: Box::new(
                NaiveBayes::fit(&ds.select_features(&[0, ds.n_features() - 1]).unwrap())
                    .unwrap()
                    .into(),
            ),
        }
        .into(),
    ]
}

fn artifact_for(name: &str, model: AnyClassifier, ds: &CatDataset) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xFEED,
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: hamlet_core::model_zoo::ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: hamlet_core::experiment::RunResult {
                model: "n/a".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

fn post_predict(handler: &hamlet_serve::http::Handler, body: &str) -> (u16, String) {
    let (responder, rx) = hamlet_serve::http::Responder::direct();
    handler(
        &Request {
            method: "POST".into(),
            path: "/v1/predict".into(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: false,
        },
        responder,
    );
    let resp: Response = rx.recv().expect("handler answered");
    (resp.status, String::from_utf8(resp.body).unwrap())
}

#[test]
fn rows_raw_bitmatches_rows_for_every_model_family() {
    use rand::{Rng, SeedableRng};

    let ds = contracted_dataset();
    let contract = ds.contract();
    let dir = tmp_dir("families");
    let models = all_families(&ds);
    for (i, model) in models.iter().enumerate() {
        artifact_for(&format!("fam{i}"), model.clone(), &ds)
            .save(&dir)
            .unwrap();
    }

    // Warm-load everything back from disk: the served contract is the one
    // that survived the v2 JSON roundtrip, not the in-memory original.
    let (state, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, models.len());
    let handler = router(Arc::clone(&state));

    // Random in-domain probe rows, well past the training data.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let cards = ds.cardinalities();
    let rows: Vec<Vec<u32>> = (0..64)
        .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
        .collect();
    let rows_raw: Vec<Vec<String>> = rows
        .iter()
        .map(|r| contract.decode_row(r).unwrap())
        .collect();
    let flat: Vec<u32> = rows.iter().flatten().copied().collect();

    for (i, model) in models.iter().enumerate() {
        let name = format!("fam{i}");
        let expected = model.predict_batch(&flat, ds.n_features());

        let (status, body) = post_predict(
            &handler,
            &serde_json::to_string(&PredictRequest {
                model: name.clone(),
                rows: Some(rows.clone()),
                rows_raw: None,
            })
            .unwrap(),
        );
        assert_eq!(status, 200, "family {} coded: {body}", model.family());
        let coded: PredictResponse = serde_json::from_str(&body).unwrap();

        let (status, body) = post_predict(
            &handler,
            &serde_json::to_string(&PredictRequest {
                model: name,
                rows: None,
                rows_raw: Some(rows_raw.clone()),
            })
            .unwrap(),
        );
        assert_eq!(status, 200, "family {} raw: {body}", model.family());
        let raw: PredictResponse = serde_json::from_str(&body).unwrap();

        assert_eq!(
            coded.labels,
            expected,
            "family {} HTTP vs in-process",
            model.family()
        );
        assert_eq!(
            raw.labels,
            expected,
            "family {} raw-string vs pre-encoded",
            model.family()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unseen_labels_follow_open_closed_domain_rules() {
    // A contract mixing open and closed domains, served end to end.
    let ds = contracted_dataset();
    let dir = tmp_dir("openclosed");
    artifact_for("oc", MajorityClass::fit(&ds).into(), &ds)
        .save(&dir)
        .unwrap();
    let (state, _) = AppState::warm(dir.clone()).unwrap();
    let handler = router(Arc::clone(&state));
    let artifact = state.registry.get("oc").unwrap();

    // OneXr domains are closed (no Others slot): an unseen label must 4xx
    // and the error must name the row and feature.
    let d = artifact.contract.width();
    let mut good = Vec::new();
    for j in 0..d {
        good.push(artifact.contract.decode_row(&vec![0; d]).unwrap()[j].clone());
    }
    let mut bad = good.clone();
    bad[1] = "never-seen-label".into();
    let (status, body) = post_predict(
        &handler,
        &serde_json::to_string(&PredictRequest {
            model: "oc".into(),
            rows: None,
            rows_raw: Some(vec![good.clone(), bad]),
        })
        .unwrap(),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("row 1"), "{body}");
    assert!(body.contains(&artifact.contract.feature(1).name), "{body}");

    // Swap feature 1's domain for an open one (Others slot): the same
    // unseen label now encodes to Others and predicts fine.
    let mut features = artifact.contract.features().to_vec();
    let open = hamlet_relation::domain::CatDomain::new(
        "open",
        (0..features[1].cardinality - 1)
            .map(|i| format!("v{i}"))
            .chain(std::iter::once(
                hamlet_relation::domain::OTHERS_LABEL.to_string(),
            ))
            .collect(),
    )
    .unwrap()
    .into_shared();
    features[1] = hamlet_ml::dataset::FeatureMeta::with_domain(
        features[1].name.clone(),
        features[1].provenance,
        open,
    );
    let mut open_artifact = artifact_for("oc-open", MajorityClass::fit(&ds).into(), &ds);
    open_artifact.contract = hamlet_ml::contract::FeatureContract::new(features).unwrap();
    state.registry.insert(open_artifact);
    let mut bad_again = good;
    bad_again[1] = "never-seen-label".into();
    let (status, body) = post_predict(
        &handler,
        &serde_json::to_string(&PredictRequest {
            model: "oc-open".into(),
            rows: None,
            rows_raw: Some(vec![bad_again]),
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "open domain absorbs unseen labels: {body}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `encode(decode(codes)) == codes` under a v2 artifact's contract, for
    /// arbitrary in-domain code rows.
    #[test]
    fn encode_decode_roundtrips_under_artifact_contract(seed in 0u64..10_000) {
        use rand::{Rng, SeedableRng};

        let ds = contracted_dataset();
        let dir = tmp_dir(&format!("prop{seed}"));
        let art = artifact_for("prop", MajorityClass::fit(&ds).into(), &ds);
        let reloaded = ModelArtifact::load(&art.save(&dir).unwrap()).unwrap();
        let contract = &reloaded.contract;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cards = ds.cardinalities();
        let codes: Vec<u32> = cards.iter().map(|&k| rng.gen_range(0..k)).collect();
        let labels = contract.decode_row(&codes).unwrap();
        let back = contract.encode_batch(&[labels]).unwrap();
        prop_assert_eq!(back, codes);
        std::fs::remove_dir_all(&dir).ok();
    }
}
