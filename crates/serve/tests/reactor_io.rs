//! Adversarial I/O against the event-driven server: the traffic shapes the
//! reactor refactor exists for. Pipelined bursts in one packet, slow-loris
//! tricklers, peers that vanish mid-response, and more idle keep-alive
//! connections than executor threads — each exercised over real TCP
//! sockets against a plain echo handler (no models; the HTTP layer is the
//! subject under test).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_serve::http::{Request, Responder, Response, Server, ServerOptions};

fn echo_handler() -> hamlet_serve::http::Handler {
    Arc::new(|req: &Request, responder: Responder| {
        responder.send(Response::text(
            200,
            format!("{} {} {}", req.method, req.path, req.body.len()),
        ))
    })
}

/// Reads exactly one HTTP response off a keep-alive socket.
fn read_one_response(s: &mut TcpStream) -> String {
    hamlet_serve::http::read_response(s)
        .expect("one response")
        .text()
}

#[test]
fn pipelined_burst_in_one_packet_answers_in_order() {
    let server = Server::bind("127.0.0.1:0", 2, echo_handler()).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // Eight back-to-back requests in a single write — one TCP packet's
    // worth of pipelining, including a POST with a body in the middle.
    let mut burst = String::new();
    for i in 0..8 {
        if i == 4 {
            burst.push_str("POST /mid HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz");
        } else {
            burst.push_str(&format!("GET /p{i} HTTP/1.1\r\nHost: h\r\n\r\n"));
        }
    }
    s.write_all(burst.as_bytes()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..8 {
        let resp = read_one_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200"), "response {i}: {resp}");
        if i == 4 {
            assert!(resp.contains("POST /mid 3"), "response {i}: {resp}");
        } else {
            assert!(
                resp.contains(&format!("GET /p{i} 0")),
                "response {i}: {resp}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn slow_loris_trickler_is_reaped_and_does_not_block_others() {
    // ONE executor and a tight request deadline: under the old
    // thread-per-connection design the trickler would pin the only worker
    // and starve everyone; under the reactor it costs a buffer.
    let server = Server::bind_with(
        "127.0.0.1:0",
        echo_handler(),
        ServerOptions {
            workers: 1,
            request_timeout: Duration::from_millis(900),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The trickler: request line fed one byte at a time, forever (well,
    // longer than the request deadline).
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let line = b"GET /never-finishes HTTP/1.1\r\n";
        let mut disconnected_at = None;
        let start = Instant::now();
        'outer: for _round in 0..100 {
            for &b in line.iter() {
                if s.write_all(&[b]).is_err() {
                    disconnected_at = Some(start.elapsed());
                    break 'outer;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        // Writes can keep succeeding into the kernel buffer briefly after
        // the server closes; a read observing EOF/RST is the ground truth.
        if disconnected_at.is_none() {
            let mut buf = [0u8; 64];
            let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
            match s.read(&mut buf) {
                Ok(0) | Err(_) => disconnected_at = Some(start.elapsed()),
                Ok(_) => {}
            }
        }
        disconnected_at
    });

    // Meanwhile full requests sail through on the single executor.
    std::thread::sleep(Duration::from_millis(100)); // let the trickle start
    for i in 0..3 {
        let start = Instant::now();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(
            format!("GET /fast{i} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.read_to_string(&mut out).unwrap();
        assert!(out.contains(&format!("GET /fast{i} 0")), "{out}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "fast request {i} took {:?} behind a slow-loris",
            start.elapsed()
        );
    }

    // And the trickler is eventually reaped by the deadline wheel.
    let disconnected = loris.join().unwrap();
    assert!(
        disconnected.is_some(),
        "slow-loris connection was never closed by the server"
    );
    server.shutdown();
}

#[test]
fn peer_disconnect_mid_request_and_mid_response_is_harmless() {
    let server = Server::bind(
        "127.0.0.1:0",
        1,
        Arc::new(|req: &Request, responder: Responder| {
            if req.path == "/slow" {
                // Give the client time to vanish while dispatched.
                std::thread::sleep(Duration::from_millis(300));
            }
            // A response big enough to overflow socket buffers if the
            // peer never reads.
            responder.send(Response::text(200, vec![b'x'; 256 * 1024]))
        }),
    )
    .unwrap();
    let addr = server.addr();

    // Vanish while the handler is still running (mid-dispatch).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /slow HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        drop(s); // full close before the response exists
    }
    // Vanish mid-request (half a head, then gone).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /half HTT").unwrap();
        drop(s);
    }
    // The server keeps answering afterwards — no crashed reactor, no
    // wedged executor.
    std::thread::sleep(Duration::from_millis(500));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /alive HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    server.shutdown();
}

#[test]
fn idle_keepalive_connections_exceed_workers_without_blocking() {
    // 2 executors, 32 keep-alive connections parked idle after one request
    // each. Under thread-per-connection the 3rd connection would wait for
    // a worker; under the reactor all 32 park for free and a fresh client
    // is served immediately.
    let server = Server::bind_with(
        "127.0.0.1:0",
        echo_handler(),
        ServerOptions {
            workers: 2,
            idle_timeout: Duration::from_secs(120),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut parked = Vec::new();
    for i in 0..32 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(format!("GET /park{i} HTTP/1.1\r\nHost: h\r\n\r\n").as_bytes())
            .unwrap();
        let resp = read_one_response(&mut s);
        assert!(resp.contains("Connection: keep-alive"), "{resp}");
        parked.push(s); // stays open, stays idle
    }

    // A fresh client is served promptly despite 32 open connections on 2
    // executors.
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /fresh HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.contains("GET /fresh 0"), "{out}");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "fresh request took {:?} behind 32 idle connections",
        start.elapsed()
    );

    // The parked connections are all still live and answer a second
    // request each — idleness cost them nothing.
    for (i, s) in parked.iter_mut().enumerate() {
        s.write_all(format!("GET /again{i} HTTP/1.1\r\nHost: h\r\n\r\n").as_bytes())
            .unwrap();
        let resp = read_one_response(s);
        assert!(resp.contains(&format!("GET /again{i} 0")), "{resp}");
    }
    server.shutdown();
}

#[test]
fn idle_keepalive_connection_is_reaped_after_idle_timeout() {
    let server = Server::bind_with(
        "127.0.0.1:0",
        echo_handler(),
        ServerOptions {
            workers: 1,
            idle_timeout: Duration::from_millis(800),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let resp = read_one_response(&mut s);
    assert!(resp.contains("Connection: keep-alive"), "{resp}");
    // Sit idle past the deadline: the server closes the connection.
    let mut buf = [0u8; 32];
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = Instant::now();
    match s.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected reap, got {n} unexpected bytes"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "idle connection outlived its deadline by too much: {:?}",
        start.elapsed()
    );
    server.shutdown();
}

#[test]
fn multi_megabyte_body_between_caps_is_served() {
    // A 3 MiB body: larger than the 2 MiB head-stage buffer cap, smaller
    // than the 16 MiB body limit. Regression test for a read-pause wedge:
    // the head-stage cap pauses reads mid-ingest, and parsing the
    // Content-Length must lift the pause once it reveals the larger body
    // cap — otherwise the connection starves until the deadline reaper
    // kills it and the client sees a reset instead of a response.
    let server = Server::bind("127.0.0.1:0", 1, echo_handler()).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let body = vec![b'z'; 3 * 1024 * 1024];
    s.write_all(
        format!(
            "POST /big HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    s.write_all(&body).unwrap();
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert!(out.contains(&format!("POST /big {}", body.len())), "{out}");
    server.shutdown();
}

#[test]
fn request_spanning_many_tiny_writes_still_parses() {
    // Not hostile, just unfortunate framing: a legitimate client whose
    // request is fragmented into many small writes (tiny MTU, Nagle off).
    let server = Server::bind("127.0.0.1:0", 1, echo_handler()).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let raw = b"POST /frag HTTP/1.1\r\nHost: h\r\nContent-Length: 12\r\n\
        Connection: close\r\n\r\nhello worlds";
    for chunk in raw.chunks(7) {
        s.write_all(chunk).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.contains("POST /frag 12"), "{out}");
    server.shutdown();
}
