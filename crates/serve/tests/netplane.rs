//! Multi-reactor network-plane tests: deficit-round-robin fairness in
//! front of the executor pool, EPOLLONESHOT re-arming under fragmented
//! adversarial I/O across sharded reactors, per-reactor stats plumbing,
//! and writev on/off byte parity. Real TCP sockets throughout; handlers
//! are synthetic (the network plane is the subject under test).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_serve::http::{NetStats, Request, Responder, Response, Server, ServerOptions};

/// Reads exactly one HTTP response off a keep-alive socket.
fn read_one_response(s: &mut TcpStream) -> String {
    hamlet_serve::http::read_response(s)
        .expect("one response")
        .text()
}

/// Handler with a deliberately slow path (`/slow`, ~25 ms) next to an
/// instant one (`/fast`) — the cheap-model-behind-expensive-model shape
/// the fair dispatcher exists for.
fn slow_fast_handler() -> hamlet_serve::http::Handler {
    Arc::new(|req: &Request, responder: Responder| {
        if req.path == "/slow" {
            std::thread::sleep(Duration::from_millis(25));
        }
        responder.send(Response::text(200, format!("{} ok", req.path)))
    })
}

#[test]
fn fair_dispatch_bounds_cheap_path_latency_behind_deep_slow_queue() {
    // ONE executor: every queued request contends for the same thread, so
    // ordering policy is the only thing between /fast and a ~600 ms wait.
    let server = Server::bind_with(
        "127.0.0.1:0",
        slow_fast_handler(),
        ServerOptions {
            workers: 1,
            reactors: 1,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Pile up a deep /slow queue: 24 connections, one in-flight POST each.
    let mut pile = Vec::new();
    for _ in 0..24 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(b"POST /slow HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        pile.push(s);
    }
    // Let the reactor parse and enqueue them behind the busy executor.
    std::thread::sleep(Duration::from_millis(100));

    // A fresh connection asks for the cheap path. FIFO would serve it
    // after the whole /slow backlog (~24 × 25 ms = 600 ms); per-key
    // round-robin serves it after at most a couple of slow jobs.
    let start = Instant::now();
    let mut fast = TcpStream::connect(addr).unwrap();
    fast.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    fast.write_all(b"GET /fast HTTP/1.1\r\nHost: h\r\n\r\n")
        .unwrap();
    let resp = read_one_response(&mut fast);
    let elapsed = start.elapsed();
    assert!(resp.contains("/fast ok"), "{resp}");
    assert!(
        elapsed < Duration::from_millis(300),
        "fair dispatch should bound /fast behind a deep /slow queue, took {elapsed:?}"
    );

    // The slow pile still completes — fairness, not starvation.
    for (i, s) in pile.iter_mut().enumerate() {
        let resp = read_one_response(s);
        assert!(resp.contains("/slow ok"), "slow conn {i}: {resp}");
    }
    server.shutdown();
}

/// Handler returning a response body far bigger than one socket buffer's
/// worth, so the reactor must take the partial-write / EPOLLOUT re-arm
/// path repeatedly.
fn big_body_handler() -> hamlet_serve::http::Handler {
    Arc::new(|req: &Request, responder: Responder| {
        let tag = format!("{}:{};", req.path, req.body.len());
        let mut body = Vec::with_capacity(256 * 1024);
        while body.len() < 256 * 1024 {
            body.extend_from_slice(tag.as_bytes());
        }
        responder.send(Response::text(200, body))
    })
}

#[test]
fn oneshot_rearm_survives_fragmented_pipelined_io_across_two_reactors() {
    let server = Server::bind_with(
        "127.0.0.1:0",
        big_body_handler(),
        ServerOptions {
            workers: 2,
            reactors: 2,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Four adversarial clients in parallel (spread across both reactors):
    // each writes TWO pipelined POSTs in 7-byte fragments with pauses —
    // every fragment is a separate EPOLLIN delivery the oneshot protocol
    // must re-arm for — then expects two full 256 KiB responses, in order,
    // whose bodies the server could only emit via many partial writes.
    std::thread::scope(|scope| {
        for c in 0..4 {
            scope.spawn(move || {
                let body = format!("client-{c}-payload");
                let one = format!(
                    "POST /frag{c} HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let burst = format!("{one}{one}");
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                for chunk in burst.as_bytes().chunks(7) {
                    s.write_all(chunk).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                let tag = format!("/frag{c}:{};", body.len());
                for r in 0..2 {
                    let resp = hamlet_serve::http::read_response(&mut s).expect("response");
                    assert_eq!(resp.status, 200, "client {c} resp {r}");
                    assert!(resp.body.len() >= 256 * 1024, "client {c} resp {r}");
                    assert!(
                        resp.body
                            .chunks(tag.len())
                            .all(|w| tag.as_bytes().starts_with(w) || w == tag.as_bytes()),
                        "client {c} resp {r}: corrupted body"
                    );
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn per_reactor_stats_cover_every_accepted_connection() {
    let net = Arc::new(NetStats::new());
    let server = Server::bind_with(
        "127.0.0.1:0",
        slow_fast_handler(),
        ServerOptions {
            workers: 2,
            reactors: 4,
            net_stats: Some(Arc::clone(&net)),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut conns = Vec::new();
    for _ in 0..8 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(b"GET /fast HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        let resp = read_one_response(&mut s);
        assert!(resp.contains("/fast ok"), "{resp}");
        conns.push(s);
    }

    // Each connection was adopted by exactly one reactor before its
    // response could have been produced.
    let snaps = net.reactor_snapshots();
    assert_eq!(snaps.len(), 4, "one stats row per reactor");
    let accepted: u64 = snaps.iter().map(|s| s.accepted_total).sum();
    assert_eq!(accepted, 8, "{snaps:?}");
    let open: usize = snaps.iter().map(|s| s.connections).sum();
    assert_eq!(open, 8, "{snaps:?}");
    for (i, s) in snaps.iter().enumerate() {
        assert_eq!(s.index, i);
    }
    server.shutdown();
}

/// One request against a server, reading the raw response bytes to EOF.
fn raw_close_response(addr: std::net::SocketAddr) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        b"POST /parity HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
    )
    .unwrap();
    let mut bytes = Vec::new();
    s.read_to_end(&mut bytes).unwrap();
    bytes
}

#[test]
fn vectored_and_plain_writes_are_byte_identical() {
    let mut responses = Vec::new();
    for vectored in [true, false] {
        let server = Server::bind_with(
            "127.0.0.1:0",
            big_body_handler(),
            ServerOptions {
                workers: 1,
                reactors: 1,
                vectored_writes: vectored,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        responses.push(raw_close_response(server.addr()));
        server.shutdown();
    }
    assert!(responses[0].len() > 256 * 1024);
    assert_eq!(
        responses[0], responses[1],
        "writev and per-segment write paths must emit identical bytes"
    );
}
