//! End-to-end safe-rollout tests over real HTTP: a healthy candidate walks
//! the full shadow → canary → auto-promote lifecycle on mirrored live
//! traffic; a degraded (label-flipping) candidate is auto-rolled-back by
//! the agreement guardrail without a single non-canary request seeing an
//! error; and the journaled state machine resumes mid-canary across a
//! server restart.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::api::{PredictResponse, StatsResponse};
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::http::{AppTick, ServerOptions};
use hamlet_serve::rollout::{GuardrailConfig, Phase, RolloutSnapshot};
use hamlet_serve::server::{serve_with, AppState, WarmOptions};
use hamlet_serve::telemetry::{EventKind, EventLog};

/// Minimal HTTP client: one request on a fresh connection.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-rollout-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A tiny deterministic tree artifact (no training pipeline involved), as
/// `name@version`. Two features, two-value closed domains.
fn tiny_artifact(name: &str, version: u32) -> ModelArtifact {
    let d = 2usize;
    let features: Vec<FeatureMeta> = (0..d)
        .map(|j| {
            FeatureMeta::with_domain(
                format!("f{j}"),
                Provenance::Home,
                CatDomain::synthetic(format!("f{j}"), 2).into_shared(),
            )
        })
        .collect();
    let rows: Vec<u32> = vec![0, 0, 0, 1, 1, 0, 1, 1];
    let labels: Vec<bool> = vec![false, true, true, false];
    let ds = CatDataset::new(features, rows, labels).unwrap();
    let model: AnyClassifier = DecisionTree::fit(
        &ds,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into();
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xD0D0,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "rollout-test".into(),
                config: "NoJoin".into(),
                train_accuracy: 1.0,
                val_accuracy: 1.0,
                test_accuracy: 1.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    }
}

/// Loose guardrails sized for a test: small sample floors, a full canary
/// slice for deterministic routing, and a p99 ratio too large for
/// microbenchmark noise to trip.
fn test_guardrails() -> GuardrailConfig {
    GuardrailConfig {
        canary_slice: 100,
        min_shadow_rows: 6,
        min_canary_requests: 5,
        max_p99_ratio: 10_000.0,
        drift_min_rows: 4,
        ..GuardrailConfig::default()
    }
}

/// Boots a server whose reactor tick drives the rollout guardrails and the
/// drift advisor, like the CLI's ops tick does.
fn serve_ticking(state: &Arc<AppState>) -> hamlet_serve::http::Server {
    let tick_state = Arc::clone(state);
    let opts = ServerOptions {
        workers: 2,
        on_tick: Some(AppTick {
            every: Duration::from_millis(100),
            run: Arc::new(move || {
                tick_state
                    .rollout
                    .tick(&tick_state.registry, &tick_state.telemetry);
                tick_state
                    .rollout
                    .drift_check(&tick_state.registry, &tick_state.telemetry);
            }),
        }),
        ..ServerOptions::default()
    };
    serve_with("127.0.0.1:0", opts, Arc::clone(state)).unwrap()
}

fn status_snapshot(addr: std::net::SocketAddr) -> RolloutSnapshot {
    let (status, body) = http(addr, "GET", "/v1/rollout/status", "");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

/// Healthy candidate: shadow on mirrored traffic → canary slice → guardrail
/// auto-promote, with every transition audit-logged and the drift advisor
/// running against the `/v1/observe` buffer throughout.
#[test]
fn lifecycle_shadow_canary_auto_promote() {
    let dir = tmp_dir("lifecycle");
    tiny_artifact("lc", 1).save(&dir).unwrap();
    tiny_artifact("lc", 2).save(&dir).unwrap();

    let (state, loaded) = AppState::warm_full(
        dir.clone(),
        WarmOptions {
            executors: 2,
            guardrails: test_guardrails(),
            ..WarmOptions::default()
        },
    )
    .unwrap();
    assert_eq!(loaded, 2);
    let server = serve_ticking(&state);
    let addr = server.addr();

    // Labeled production rows land in the observe buffer; the tick-driven
    // drift advisor will chew on them for the whole test.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/observe",
        "{\"model\":\"lc\",\"rows\":[[0,0],[0,1],[1,0],[1,1],[0,0],[1,1]],\
         \"labels\":[false,true,true,false,false,false]}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"accepted\":6"), "{body}");

    // Start the rollout: lc@2 is the latest on disk, so the plane steps it
    // aside and lc@1 resumes serving as the incumbent.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/rollout/start",
        "{\"candidate\":\"lc@2\",\"slice\":100}",
    );
    assert_eq!(status, 200, "{body}");
    let snap: RolloutSnapshot = serde_json::from_str(&body).unwrap();
    assert_eq!(snap.phase.as_deref(), Some("shadow"));
    assert_eq!(snap.incumbent.as_deref(), Some("lc@1"));

    // Shadow: bare-name traffic is served by the incumbent while mirrored
    // copies score the candidate. Keep sending until the tick graduates.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            "{\"model\":\"lc\",\"rows\":[[0,1],[1,0]]}",
        );
        assert_eq!(status, 200, "{body}");
        let resp: PredictResponse = serde_json::from_str(&body).unwrap();
        let snap = status_snapshot(addr);
        if snap.phase.as_deref() == Some("canary") {
            break;
        }
        assert_eq!(resp.model, "lc@1", "shadow must not serve the candidate");
        assert!(
            Instant::now() < deadline,
            "never graduated to canary: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Canary at slice 100: bare traffic is the candidate's; once the
    // request floor is met the tick auto-promotes and the rollout ends.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            "{\"model\":\"lc\",\"rows\":[[1,1]]}",
        );
        assert_eq!(status, 200, "{body}");
        let snap = status_snapshot(addr);
        if !snap.active {
            assert_eq!(snap.promotions, 1, "{snap:?}");
            assert_eq!(snap.rollbacks, 0, "{snap:?}");
            break;
        }
        assert!(Instant::now() < deadline, "never auto-promoted: {snap:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The candidate was adopted as the latest; the old incumbent still
    // answers pinned.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"lc\",\"rows\":[[0,0]]}",
    );
    assert_eq!(status, 200, "{body}");
    let resp: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.model, "lc@2", "promotion must adopt the candidate");
    let (status, _) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"lc@1\",\"rows\":[[0,0]]}",
    );
    assert_eq!(status, 200);

    // Every transition is in the audit stream, and the drift advisor ran.
    let (status, body) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    let rollout_details: Vec<&str> = stats
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Rollout)
        .map(|e| e.detail.as_str())
        .collect();
    for action in [
        "\"action\":\"start\"",
        "\"action\":\"canary\"",
        "\"action\":\"promote\"",
    ] {
        assert!(
            rollout_details.iter().any(|d| d.contains(action)),
            "missing {action} in {rollout_details:?}"
        );
    }
    assert!(stats.rollout.drift_checks > 0, "{body}");
    assert_eq!(stats.rollout.observe_rows, 6, "{body}");

    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("hamlet_rollout_state{model=\"none\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("hamlet_rollout_total{kind=\"promotions\"} 1"),
        "{text}"
    );
    assert!(!text.contains("hamlet_drift_checks_total 0\n"), "{text}");
    server.shutdown();
    drop(state);

    // The transitions survived both on the durable event log.
    let log = EventLog::open(&dir.join("events")).unwrap();
    let events = log.scan_range(0, u64::MAX).unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Rollout && e.detail.contains("\"action\":\"promote\"")),
        "promote record missing from durable log"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Degraded candidate: the injected label-flip fault makes the candidate
/// disagree with the incumbent on every mirrored row, so the agreement
/// guardrail auto-rolls it back — demote + `Drift` audit trail — while the
/// incumbent keeps answering every live request with a 200.
#[test]
fn degraded_candidate_auto_rolls_back() {
    // The fault keys on the exact candidate key, so the other tests in
    // this binary (different names) are unaffected by the process-wide var.
    std::env::set_var("HAMLET_FAULT_FLIP_LABELS", "rb@2");
    let dir = tmp_dir("rollback");
    tiny_artifact("rb", 1).save(&dir).unwrap();
    tiny_artifact("rb", 2).save(&dir).unwrap();

    let (state, _) = AppState::warm_full(
        dir.clone(),
        WarmOptions {
            executors: 2,
            guardrails: test_guardrails(),
            ..WarmOptions::default()
        },
    )
    .unwrap();
    let server = serve_ticking(&state);
    let addr = server.addr();

    let (status, body) = http(
        addr,
        "POST",
        "/v1/rollout/start",
        "{\"candidate\":\"rb@2\"}",
    );
    assert_eq!(status, 200, "{body}");

    // Live traffic throughout the rollback: the incumbent serves it all,
    // and none of it may error.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            "{\"model\":\"rb\",\"rows\":[[0,1],[1,0]]}",
        );
        assert_eq!(status, 200, "live traffic saw an error: {body}");
        let resp: PredictResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.model, "rb@1", "degraded candidate must never serve");
        let snap = status_snapshot(addr);
        if !snap.active {
            assert_eq!(snap.rollbacks, 1, "{snap:?}");
            assert_eq!(snap.promotions, 0, "{snap:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "degraded candidate was never rolled back: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The incumbent is still the latest, and still answers.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"rb\",\"rows\":[[0,0]]}",
    );
    assert_eq!(status, 200, "{body}");
    let resp: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.model, "rb@1");

    // The rollback is fully audited: a journal record with the agreement
    // reason, a Drift event on the candidate (live evidence of
    // misbehaviour), and the Demote from releasing its payload.
    let (status, body) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    assert!(
        stats.events.iter().any(|e| e.kind == EventKind::Rollout
            && e.detail.contains("\"action\":\"rollback\"")
            && e.detail.contains("agreement")),
        "{body}"
    );
    assert!(
        stats
            .events
            .iter()
            .any(|e| e.kind == EventKind::Drift && e.model == "rb@2"),
        "{body}"
    );
    assert!(
        stats
            .events
            .iter()
            .any(|e| e.kind == EventKind::Demote && e.model == "rb@2"),
        "{body}"
    );
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("hamlet_rollout_total{kind=\"rollbacks\"} 1"),
        "{text}"
    );
    assert!(text.contains("hamlet_drift_events_total 1"), "{text}");
    server.shutdown();
    std::env::remove_var("HAMLET_FAULT_FLIP_LABELS");
    std::fs::remove_dir_all(&dir).ok();
}

/// The journaled state machine survives a restart mid-canary: the second
/// server generation resumes the rollout with the candidate back on hold,
/// so bare-name traffic stays on the incumbent.
#[test]
fn journal_resumes_rollout_across_restart() {
    let dir = tmp_dir("journal");
    tiny_artifact("jr", 1).save(&dir).unwrap();
    tiny_artifact("jr", 2).save(&dir).unwrap();

    // ---- Generation 1: start, graduate to canary, die. ----
    let warm = || {
        AppState::warm_full(
            dir.clone(),
            WarmOptions {
                executors: 2,
                guardrails: test_guardrails(),
                ..WarmOptions::default()
            },
        )
    };
    let (state, _) = warm().unwrap();
    state
        .rollout
        .start(&state.registry, &state.telemetry, "jr@2", Some(100))
        .unwrap();
    // Enough clean mirrored evidence for the guardrails, then one tick.
    state.telemetry.model("jr@2").record_shadow(16, 16);
    state.rollout.tick(&state.registry, &state.telemetry);
    let active = state.rollout.active().expect("rollout active");
    assert_eq!(active.phase(), Phase::Canary);
    drop(state); // no clean shutdown: the journal is all that survives

    // ---- Generation 2: warm boot resumes mid-canary from the journal. ----
    let (state, loaded) = warm().unwrap();
    assert_eq!(loaded, 2);
    let active = state.rollout.active().expect("rollout must resume");
    assert_eq!(active.candidate, "jr@2");
    assert_eq!(active.incumbent, "jr@1");
    assert_eq!(active.phase(), Phase::Canary);
    assert_eq!(active.slice, 100);
    // Live counters reset on restart — evidence does not survive, by design.
    let snap = state.rollout.snapshot();
    assert_eq!(snap.canary_requests, 0);

    // Over HTTP: status reports the resumed canary, and the candidate is
    // back on hold so the bare name resolves to the incumbent.
    let server = serve_ticking(&state);
    let addr = server.addr();
    let snap = status_snapshot(addr);
    assert!(snap.active);
    assert_eq!(snap.phase.as_deref(), Some("canary"));
    assert_eq!(snap.candidate.as_deref(), Some("jr@2"));
    assert_eq!(state.registry.get("jr").unwrap().version, 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
