//! Cross-request predict coalescing acceptance: bit-identical responses vs
//! solo execution across every model family, per-request error isolation,
//! window-timeout flushes (including on a 1-executor server), no merging
//! across models or pinned versions, and the end-to-end HTTP path.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::{AnyClassifier, SubsetModel};
use hamlet_ml::dataset::{CatDataset, FeatureMeta, Provenance};
use hamlet_ml::knn::OneNearestNeighbor;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::model::MajorityClass;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::svm::{KernelKind, SvmModel, SvmParams};
use hamlet_ml::tree::{DecisionTree, SplitCriterion, TreeParams};
use hamlet_relation::domain::CatDomain;
use hamlet_serve::api::PredictResponse;
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::coalesce::CoalesceConfig;
use hamlet_serve::http::{Request, Responder, Response};
use hamlet_serve::server::{router, AppState, WarmOptions};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-coal-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A dataset whose features carry real dictionaries (incl. a shared FK/RID
/// domain) so both coded and raw ingestion paths are exercised.
fn dict_dataset(seed: u64, n: usize) -> CatDataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let shared = CatDomain::synthetic("shared", 6).into_shared();
    let features = vec![
        FeatureMeta::with_domain("fk", Provenance::ForeignKey { dim: 0 }, Arc::clone(&shared)),
        FeatureMeta::with_domain("rid", Provenance::Foreign { dim: 0 }, shared),
        FeatureMeta::with_domain(
            "xs",
            Provenance::Home,
            CatDomain::synthetic_with_others("xs", 3).into_shared(),
        ),
    ];
    let cards: Vec<u32> = features.iter().map(|f| f.cardinality).collect();
    let rows: Vec<u32> = (0..n)
        .flat_map(|_| {
            cards
                .iter()
                .map(|&k| rng.gen_range(0..k))
                .collect::<Vec<_>>()
        })
        .collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    CatDataset::new(features, rows, labels).unwrap()
}

fn artifact_for(model: AnyClassifier, ds: &CatDataset, name: &str) -> ModelArtifact {
    ModelArtifact {
        format_version: FORMAT_VERSION,
        name: name.into(),
        version: 1,
        model,
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: 0xC0A1,
        metadata: TrainingMetadata {
            dataset: "synthetic".into(),
            spec: ModelSpec::TreeGini,
            train_rows: ds.n_rows(),
            metrics: RunResult {
                model: "coalesce".into(),
                config: "NoJoin".into(),
                train_accuracy: 1.0,
                val_accuracy: 1.0,
                test_accuracy: 1.0,
                seconds: 0.0,
                winner: "-".into(),
            },
        },
    }
}

fn all_families(ds: &CatDataset) -> Vec<(&'static str, AnyClassifier)> {
    let sub = ds.select_features(&[2]).unwrap();
    vec![
        ("majority", MajorityClass::fit(ds).into()),
        (
            "tree",
            DecisionTree::fit(
                ds,
                TreeParams::new(SplitCriterion::Gini)
                    .with_minsplit(2)
                    .with_cp(0.0),
            )
            .unwrap()
            .into(),
        ),
        ("knn", OneNearestNeighbor::fit(ds).unwrap().into()),
        (
            "svm",
            SvmModel::fit(ds, SvmParams::new(KernelKind::Rbf { gamma: 0.4 }, 4.0))
                .unwrap()
                .into(),
        ),
        (
            "mlp",
            Mlp::fit(
                ds,
                AnnParams {
                    epochs: 2,
                    ..AnnParams::small(1e-4, 0.01)
                },
            )
            .unwrap()
            .into(),
        ),
        ("naive-bayes", NaiveBayes::fit(ds).unwrap().into()),
        (
            "logreg",
            LogRegL1::fit_single(
                ds,
                1e-3,
                LogRegParams {
                    max_iter: 30,
                    ..Default::default()
                },
            )
            .unwrap()
            .into(),
        ),
        (
            "subset",
            SubsetModel {
                keep: vec![2],
                inner: Box::new(NaiveBayes::fit(&sub).unwrap().into()),
            }
            .into(),
        ),
    ]
}

fn empty_state(coalesce: CoalesceConfig) -> Arc<AppState> {
    let (state, loaded) = AppState::warm_full(
        tmp_dir("none"), // never created: empty registry
        WarmOptions {
            executors: 0,
            coalesce,
            ..WarmOptions::default()
        },
    )
    .unwrap();
    assert_eq!(loaded, 0);
    state
}

fn predict_request(model: &str, rows: &[Vec<u32>]) -> Request {
    let body = format!(
        "{{\"model\":\"{model}\",\"rows\":{}}}",
        serde_json::to_string(&rows.to_vec()).unwrap()
    );
    Request {
        method: "POST".into(),
        path: "/v1/predict".into(),
        query: String::new(),
        body: body.into_bytes(),
        keep_alive: false,
    }
}

/// Drives `count` concurrent predict requests through the handler, each on
/// its own thread with a responder claiming `depth` queued jobs (so the
/// coalescer holds batches open). Returns `(status, body)` per request, in
/// request order.
fn concurrent_predicts(
    handler: &hamlet_serve::http::Handler,
    requests: &[Request],
    depth: usize,
) -> Vec<(u16, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                scope.spawn(move || {
                    let (responder, rx) = Responder::direct_with_depth(depth);
                    handler(req, responder);
                    let resp: Response = rx
                        .recv_timeout(Duration::from_secs(30))
                        .expect("request answered");
                    (resp.status, String::from_utf8(resp.body).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Bit-identical outputs, coalesced vs solo, for all 8 model families.
#[test]
fn coalesced_predicts_bitmatch_solo_for_every_family() {
    use rand::{Rng, SeedableRng};
    let ds = dict_dataset(3, 60);
    let cards = ds.cardinalities();
    let state_on = empty_state(CoalesceConfig {
        window: Duration::from_millis(100),
        max_rows: 512,
    });
    let state_off = empty_state(CoalesceConfig {
        window: Duration::ZERO, // disabled: the uncoalesced reference
        max_rows: 0,
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for (tag, model) in all_families(&ds) {
        let name = format!("f-{tag}");
        state_on
            .registry
            .insert(artifact_for(model.clone(), &ds, &name));
        state_off
            .registry
            .insert(artifact_for(model.clone(), &ds, &name));
        // 16 concurrent requests of 1–4 rows each, random in-domain codes.
        let batches: Vec<Vec<Vec<u32>>> = (0..16)
            .map(|_| {
                (0..rng.gen_range(1..=4usize))
                    .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
                    .collect()
            })
            .collect();
        let requests: Vec<Request> = batches
            .iter()
            .map(|rows| predict_request(&name, rows))
            .collect();
        let on = concurrent_predicts(&router(Arc::clone(&state_on)), &requests, 16);
        let off = concurrent_predicts(&router(Arc::clone(&state_off)), &requests, 16);
        for (i, ((s_on, b_on), (s_off, b_off))) in on.iter().zip(&off).enumerate() {
            assert_eq!((s_on, s_off), (&200u16, &200u16), "{tag} req {i}: {b_on}");
            let r_on: PredictResponse = serde_json::from_str(b_on).unwrap();
            let r_off: PredictResponse = serde_json::from_str(b_off).unwrap();
            assert_eq!(
                r_on.labels, r_off.labels,
                "{tag} req {i}: coalesced and solo labels diverge"
            );
            // Ground truth straight from the model.
            let flat: Vec<u32> = batches[i].iter().flatten().copied().collect();
            assert_eq!(
                r_on.labels,
                model.predict_batch(&flat, cards.len()),
                "{tag} req {i}: labels diverge from the in-memory model"
            );
        }
    }
    let stats = state_on.coalescer.stats.snapshot();
    assert!(
        stats.merged_requests >= 2,
        "concurrent traffic never coalesced: {stats:?}"
    );
    let off_stats = state_off.coalescer.stats.snapshot();
    assert_eq!(off_stats.batches, 0, "disabled coalescer must stay idle");
    assert_eq!(off_stats.merged_requests, 0);
}

/// A bad row 4xxes only its own request: concurrent invalid requests never
/// poison the batches their valid neighbours merge into.
#[test]
fn per_request_error_isolation_under_coalescing() {
    let ds = dict_dataset(7, 40);
    let state = empty_state(CoalesceConfig {
        window: Duration::from_millis(80),
        max_rows: 512,
    });
    let model: AnyClassifier = MajorityClass::fit(&ds).into();
    state.registry.insert(artifact_for(model, &ds, "iso"));
    let handler = router(Arc::clone(&state));
    // Interleave valid rows with out-of-domain codes (99) and a ragged row.
    let requests: Vec<Request> = (0..12)
        .map(|i| match i % 3 {
            0 => predict_request("iso", &[vec![0, 0, 0]]),
            1 => predict_request("iso", &[vec![0, 99, 0]]),
            _ => predict_request("iso", &[vec![0, 0]]),
        })
        .collect();
    let results = concurrent_predicts(&handler, &requests, 12);
    for (i, (status, body)) in results.iter().enumerate() {
        match i % 3 {
            0 => {
                assert_eq!(*status, 200, "req {i}: {body}");
                let resp: PredictResponse = serde_json::from_str(body).unwrap();
                assert_eq!(resp.labels.len(), 1, "req {i}");
            }
            1 => {
                assert_eq!(*status, 400, "req {i}: {body}");
                assert!(body.contains("row 0"), "req {i}: {body}");
            }
            _ => {
                assert_eq!(*status, 400, "req {i}: {body}");
            }
        }
    }
}

/// A leader whose promised merge partners never arrive flushes at the
/// window, alone, with the correct answer (deterministic in-process
/// variant: the fixed-depth responder claims a second job that never
/// comes).
#[test]
fn window_timeout_flushes_a_leader_without_followers() {
    let ds = dict_dataset(11, 30);
    let state = empty_state(CoalesceConfig {
        window: Duration::from_millis(60),
        max_rows: 512,
    });
    let model: AnyClassifier = MajorityClass::fit(&ds).into();
    state
        .registry
        .insert(artifact_for(model.clone(), &ds, "win"));
    let handler = router(Arc::clone(&state));
    let t0 = Instant::now();
    let results = concurrent_predicts(&handler, &[predict_request("win", &[vec![0, 0, 0]])], 2);
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "leader must wait out the window: {:?}",
        t0.elapsed()
    );
    assert_eq!(results[0].0, 200, "{}", results[0].1);
    let resp: PredictResponse = serde_json::from_str(&results[0].1).unwrap();
    assert_eq!(resp.labels, model.predict_batch(&[0, 0, 0], 3));
    let stats = state.coalescer.stats.snapshot();
    assert_eq!(stats.flush_timeout, 1, "{stats:?}");
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.merged_requests, 0, "nobody joined: not a merge");
    assert_eq!(stats.solo_requests, 1, "the lonely leader counts as solo");
}

/// The same flush observed end-to-end through a 1-executor server: the
/// lone executor leads a batch while the second request is stuck in the
/// job queue behind it, so the window must expire for either to answer.
#[test]
fn window_timeout_flush_under_a_one_executor_server() {
    use std::io::Write;
    let ds = dict_dataset(13, 30);
    let dir = tmp_dir("onexec");
    let model: AnyClassifier = MajorityClass::fit(&ds).into();
    artifact_for(model.clone(), &ds, "one").save(&dir).unwrap();
    let (state, _) = AppState::warm_full(
        dir.clone(),
        WarmOptions {
            executors: 1,
            coalesce: CoalesceConfig {
                window: Duration::from_millis(60),
                max_rows: 512,
            },
            ..WarmOptions::default()
        },
    )
    .unwrap();
    let server = hamlet_serve::server::serve_with(
        "127.0.0.1:0",
        hamlet_serve::http::ServerOptions {
            workers: 1,
            ..hamlet_serve::http::ServerOptions::default()
        },
        Arc::clone(&state),
    )
    .unwrap();
    let addr = server.addr();
    let body = "{\"model\":\"one\",\"rows\":[[0,0,0]]}";
    let request = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    // Two sockets fire simultaneously; with one executor, whichever
    // dispatches first leads a batch while the other waits in the queue
    // (visible via the depth gauge), so the leader can only flush by
    // timeout. The race of "did the executor check the gauge before the
    // second dispatch landed" is retried across rounds.
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut a = std::net::TcpStream::connect(addr).unwrap();
        let mut b = std::net::TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(20)); // both accepted
        a.write_all(request.as_bytes()).unwrap();
        b.write_all(request.as_bytes()).unwrap();
        let ra = hamlet_serve::http::read_response(&mut a).unwrap();
        let rb = hamlet_serve::http::read_response(&mut b).unwrap();
        assert_eq!((ra.status, rb.status), (200, 200));
        for raw in [&ra, &rb] {
            let resp: PredictResponse =
                serde_json::from_slice(&raw.body).expect("predict response");
            assert_eq!(resp.labels, model.predict_batch(&[0, 0, 0], 3));
        }
        let stats = state.coalescer.stats.snapshot();
        if stats.flush_timeout >= 1 {
            break;
        }
        assert!(
            rounds < 40,
            "no window-timeout flush observed in {rounds} rounds: {stats:?}"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Different models, and different *versions* of one model, never share a
/// batch: Majority models with opposite polarities make any cross-merge
/// visible as wrong labels.
#[test]
fn no_coalescing_across_models_or_pinned_versions() {
    let ds = dict_dataset(17, 30);
    let state = empty_state(CoalesceConfig {
        window: Duration::from_millis(120),
        max_rows: 512,
    });
    // m@1 answers `false`, m@2 (the latest) answers `true`, other@1 `false`.
    let mut v1 = artifact_for(
        AnyClassifier::Majority(MajorityClass { positive: false }),
        &ds,
        "m",
    );
    v1.version = 1;
    let mut v2 = artifact_for(
        AnyClassifier::Majority(MajorityClass { positive: true }),
        &ds,
        "m",
    );
    v2.version = 2;
    let other = artifact_for(
        AnyClassifier::Majority(MajorityClass { positive: false }),
        &ds,
        "other",
    );
    state.registry.insert(v1);
    state.registry.insert(v2);
    state.registry.insert(other);
    let handler = router(Arc::clone(&state));
    let requests: Vec<(Request, &str, bool)> = (0..12)
        .map(|i| match i % 3 {
            0 => (predict_request("m", &[vec![0, 0, 0]]), "m@2", true),
            1 => (predict_request("m@1", &[vec![0, 0, 0]]), "m@1", false),
            _ => (predict_request("other", &[vec![0, 0, 0]]), "other@1", false),
        })
        .collect();
    let reqs: Vec<Request> = requests.iter().map(|(r, _, _)| r.clone()).collect();
    let results = concurrent_predicts(&handler, &reqs, 12);
    for ((_, want_model, want_label), (status, body)) in requests.iter().zip(&results) {
        assert_eq!(*status, 200, "{body}");
        let resp: PredictResponse = serde_json::from_str(body).unwrap();
        assert_eq!(&resp.model, want_model, "{body}");
        assert_eq!(
            resp.labels,
            vec![*want_label],
            "cross-model/version merge detected: {body}"
        );
    }
}

/// End-to-end over real sockets with default coalescing: concurrent small
/// requests answer correctly, and the healthz counters account for every
/// request exactly once (merged or solo).
#[test]
fn e2e_concurrent_small_predicts_with_default_coalescing() {
    use rand::{Rng, SeedableRng};
    use std::io::Write;
    let ds = dict_dataset(19, 50);
    let cards = ds.cardinalities();
    let dir = tmp_dir("e2e");
    let model: AnyClassifier = DecisionTree::fit(
        &ds,
        TreeParams::new(SplitCriterion::Gini)
            .with_minsplit(2)
            .with_cp(0.0),
    )
    .unwrap()
    .into();
    artifact_for(model.clone(), &ds, "e2e").save(&dir).unwrap();
    let (state, _) = AppState::warm_full(
        dir.clone(),
        WarmOptions {
            executors: 2,
            ..WarmOptions::default()
        },
    )
    .unwrap();
    let server = hamlet_serve::server::serve_with(
        "127.0.0.1:0",
        hamlet_serve::http::ServerOptions {
            workers: 2,
            ..hamlet_serve::http::ServerOptions::default()
        },
        Arc::clone(&state),
    )
    .unwrap();
    let addr = server.addr();

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE2E);
    let rows_per_client: Vec<Vec<u32>> = (0..32)
        .map(|_| cards.iter().map(|&k| rng.gen_range(0..k)).collect())
        .collect();
    let d = cards.len();
    std::thread::scope(|scope| {
        let handles: Vec<_> = rows_per_client
            .iter()
            .map(|row| {
                scope.spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    let body = format!(
                        "{{\"model\":\"e2e\",\"rows\":[{}]}}",
                        serde_json::to_string(row).unwrap()
                    );
                    let request = format!(
                        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                         Connection: close\r\n\r\n{body}",
                        body.len()
                    );
                    s.write_all(request.as_bytes()).unwrap();
                    let resp = hamlet_serve::http::read_response(&mut s).unwrap();
                    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                    let parsed: PredictResponse = serde_json::from_slice(&resp.body).unwrap();
                    parsed.labels
                })
            })
            .collect();
        for (row, h) in rows_per_client.iter().zip(handles) {
            assert_eq!(
                h.join().unwrap(),
                model.predict_batch(row, d),
                "row {row:?}"
            );
        }
    });
    let stats = state.coalescer.stats.snapshot();
    assert_eq!(
        stats.merged_requests + stats.solo_requests,
        32,
        "every predict is accounted exactly once: {stats:?}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
