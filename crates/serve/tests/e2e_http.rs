//! End-to-end serving test over a real TCP socket: boot on an ephemeral
//! port, train + persist an artifact, restart the server from disk, and
//! check `/healthz`, `/v1/models`, `/v1/predict` and `/v1/advise` answer
//! correctly — with `/v1/predict` matching in-process `Classifier::predict`
//! for both pre-encoded codes and raw label strings, and `/v1/advise`
//! matching `hamlet_core::advisor::advise`. Also drives the keep-alive path:
//! one socket, many requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use hamlet_core::advisor::{advise, DimStats};
use hamlet_core::feature_config::{build_dataset, build_splits, FeatureConfig};
use hamlet_core::model_zoo::{ModelFamily, ModelSpec};
use hamlet_datagen::prelude::*;
use hamlet_ml::model::Classifier;
use hamlet_serve::api::{
    AdviseRequest, AdviseResponse, ExplainRequest, ExplainResponse, Health, ModelsResponse,
    PredictRequest, PredictResponse, TrainRequest,
};
use hamlet_serve::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use hamlet_serve::server::{serve, AppState};
use hamlet_serve::train::train_and_register;

/// Minimal HTTP client: one request, returns (status, body).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A persistent keep-alive client: every request rides the same socket.
struct KeepAliveClient {
    reader: BufReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        KeepAliveClient {
            reader: BufReader::new(stream),
        }
    }

    /// Sends one request with `Connection: keep-alive` and reads exactly one
    /// response (headers + Content-Length body), leaving the socket open.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        self.reader
            .get_mut()
            .write_all(request.as_bytes())
            .expect("send");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                content_length = v.trim().parse().expect("length");
            }
            if line.eq_ignore_ascii_case("connection: keep-alive") {
                keep_alive = true;
            }
        }
        assert!(keep_alive, "server must honour Connection: keep-alive");
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn full_train_restart_predict_advise_cycle() {
    let dir = tmp_dir("cycle");

    // ---- Phase 1: a "first process" trains and persists a model. ----
    let g = EmulatorSpec::movies().generate_scaled(1200, 7);
    let (state1, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 0, "fresh dir starts empty");
    let train_req = TrainRequest {
        name: "movies-tree".into(),
        dataset: "movies".into(),
        spec: ModelSpec::TreeGini,
        config: Some(FeatureConfig::NoJoin),
        scale: Some(1200),
        seed: Some(7),
        full_budget: None,
    };
    let trained = train_and_register(&state1.registry, &state1.artifact_dir, &train_req).unwrap();
    assert_eq!(trained.key, "movies-tree@1");
    drop(state1); // "process exit"

    // ---- Phase 2: a fresh server boots from the artifact directory. ----
    let (state2, loaded) = AppState::warm(dir.clone()).unwrap();
    assert_eq!(loaded, 1, "artifact survives restart");
    let server = serve("127.0.0.1:0", 2, Arc::clone(&state2)).unwrap();
    let addr = server.addr();

    // /healthz
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let health: Health = serde_json::from_str(&body).unwrap();
    assert_eq!(health.status, "ok");
    assert_eq!(health.models, 1);

    // /v1/models
    let (status, body) = http(addr, "GET", "/v1/models", "");
    assert_eq!(status, 200, "{body}");
    let models: ModelsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(models.models.len(), 1);
    assert_eq!(models.models[0].key, "movies-tree@1");
    assert_eq!(models.models[0].config, "NoJoin");

    // /v1/predict over the full holdout split, compared against in-process
    // Classifier::predict of the same artifact — all of it through one
    // keep-alive connection.
    let artifact = state2.registry.get("movies-tree").unwrap();
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let rows: Vec<Vec<u32>> = (0..data.test.n_rows())
        .map(|i| data.test.row(i).to_vec())
        .collect();
    let expected = artifact.model.predict(&data.test);
    let mut client = KeepAliveClient::connect(addr);
    let (status, body) = client.request(
        "POST",
        "/v1/predict",
        &serde_json::to_string(&PredictRequest {
            model: "movies-tree".into(),
            rows: Some(rows.clone()),
            rows_raw: None,
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "{body}");
    let predicted: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(predicted.model, "movies-tree@1");
    assert_eq!(
        predicted.labels, expected,
        "HTTP predictions must match in-process Classifier::predict"
    );
    assert!(predicted.latency_ms >= 0.0);

    // Same batch as raw label strings (decoded through the artifact's own
    // v2 contract) — the server-side dictionary encoding must produce
    // bit-identical predictions, on the same keep-alive socket.
    assert!(artifact.contract.has_domains(), "freshly trained = v2");
    let rows_raw: Vec<Vec<String>> = rows
        .iter()
        .map(|r| artifact.contract.decode_row(r).unwrap())
        .collect();
    let (status, body) = client.request(
        "POST",
        "/v1/predict",
        &serde_json::to_string(&PredictRequest {
            model: "movies-tree".into(),
            rows: None,
            rows_raw: Some(rows_raw),
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "{body}");
    let raw_predicted: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(
        raw_predicted.labels, expected,
        "raw-string predictions must bit-match pre-encoded rows"
    );

    // The keep-alive socket keeps answering cheap requests too.
    let (status, body) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    // /v1/advise with the generated star's true statistics, compared against
    // the in-process advisor on the star itself.
    let dims: Vec<DimStats> = g
        .star
        .dims()
        .iter()
        .map(|d| DimStats {
            name: d.table.name().to_string(),
            n_rows: d.n_rows(),
            open_domain: d.open_domain,
        })
        .collect();
    let (status, body) = http(
        addr,
        "POST",
        "/v1/advise",
        &serde_json::to_string(&AdviseRequest {
            family: ModelFamily::TreeOrAnn,
            n_train: g.n_train,
            dims,
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "{body}");
    let got: AdviseResponse = serde_json::from_str(&body).unwrap();
    let want = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
    assert_eq!(got.dimensions.len(), want.dimensions.len());
    for (g_dim, w_dim) in got.dimensions.iter().zip(&want.dimensions) {
        assert_eq!(g_dim.dimension, w_dim.dimension);
        assert_eq!(g_dim.advice, w_dim.advice, "{}", g_dim.dimension);
        assert!((g_dim.tuple_ratio - w_dim.tuple_ratio).abs() < 1e-12);
    }

    // Bad prediction input: wrong width must be a 400, not a panic.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        "{\"model\":\"movies-tree\",\"rows\":[[0]]}",
    );
    assert_eq!(status, 400, "{body}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The reactor acceptance scenario: 4 executors serving 64 concurrent
/// keep-alive connections. All 64 park idle after a first request; a fresh
/// client's `/v1/predict` must be answered promptly (idle connections cost
/// no worker threads), `/v1/explain` must decode the predicted rows back to
/// label strings on a keep-alive socket, and every parked connection must
/// still be answerable afterwards.
#[test]
fn sixty_four_idle_keepalive_connections_do_not_block_new_clients() {
    let dir = tmp_dir("idle64");
    let (state, _) = AppState::warm(dir.clone()).unwrap();
    // A real (if quickly fit) model: NoJoin features over the 1:n scenario
    // generator, so the contract carries true dictionaries for /v1/explain.
    let g = onexr::generate(OneXrParams {
        n_s: 400,
        n_r: 20,
        ..Default::default()
    });
    let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap();
    let model = hamlet_ml::naive_bayes::NaiveBayes::fit(&ds).unwrap();
    state.registry.insert(ModelArtifact {
        format_version: FORMAT_VERSION,
        name: "idle-nb".into(),
        version: 1,
        model: model.into(),
        feature_config: FeatureConfig::NoJoin,
        contract: ds.contract(),
        schema_fingerprint: g.star.fingerprint(),
        metadata: TrainingMetadata {
            dataset: "onexr".into(),
            spec: ModelSpec::NaiveBayesBfs,
            train_rows: ds.n_rows(),
            metrics: hamlet_core::experiment::RunResult {
                model: "NB".into(),
                config: "NoJoin".into(),
                train_accuracy: 0.0,
                val_accuracy: 0.0,
                test_accuracy: 0.0,
                seconds: 0.0,
                winner: String::new(),
            },
        },
    });
    let server = serve("127.0.0.1:0", 4, Arc::clone(&state)).unwrap();
    let addr = server.addr();

    // Park 64 keep-alive connections, each proven live with one request.
    let mut parked: Vec<KeepAliveClient> = (0..64)
        .map(|i| {
            let mut client = KeepAliveClient::connect(addr);
            let (status, body) = client.request("GET", "/healthz", "");
            assert_eq!(status, 200, "parked connection {i}: {body}");
            client
        })
        .collect();

    // A fresh connection predicts promptly despite 64 open sockets on 4
    // executors (16x oversubscription under the old thread-per-connection
    // model).
    let rows: Vec<Vec<u32>> = (0..4).map(|i| ds.row(i).to_vec()).collect();
    let start = std::time::Instant::now();
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        &serde_json::to_string(&PredictRequest {
            model: "idle-nb".into(),
            rows: Some(rows.clone()),
            rows_raw: None,
        })
        .unwrap(),
    );
    let latency = start.elapsed();
    assert_eq!(status, 200, "{body}");
    let predicted: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(predicted.labels.len(), 4);
    assert!(
        latency < std::time::Duration::from_secs(5),
        "fresh predict took {latency:?} behind 64 idle connections"
    );

    // /v1/explain end-to-end on a keep-alive socket: codes decode to the
    // exact labels the contract holds.
    let mut ka = KeepAliveClient::connect(addr);
    let (status, body) = ka.request(
        "POST",
        "/v1/explain",
        &serde_json::to_string(&ExplainRequest {
            model: "idle-nb".into(),
            rows: rows.clone(),
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "{body}");
    let explained: ExplainResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(explained.model, "idle-nb@1");
    let artifact = state.registry.get("idle-nb").unwrap();
    for (row, labels) in rows.iter().zip(&explained.rows_raw) {
        assert_eq!(
            labels,
            &artifact.contract.decode_row(row).unwrap(),
            "HTTP explain must match in-process decode_row"
        );
    }

    // Every parked connection is still live and answers again.
    for (i, client) in parked.iter_mut().enumerate() {
        let (status, _) = client.request("GET", "/healthz", "");
        assert_eq!(status, 200, "parked connection {i} died while idle");
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_batched_predictions_are_consistent() {
    let dir = tmp_dir("conc");
    let (state, _) = AppState::warm(dir.clone()).unwrap();
    let train_req = TrainRequest {
        name: "onexr-nb".into(),
        dataset: "onexr".into(),
        spec: ModelSpec::NaiveBayesBfs,
        config: None,
        scale: Some(600),
        seed: Some(11),
        full_budget: None,
    };
    train_and_register(&state.registry, &state.artifact_dir, &train_req).unwrap();
    let server = serve("127.0.0.1:0", 4, Arc::clone(&state)).unwrap();
    let addr = server.addr();

    let artifact = state.registry.get("onexr-nb").unwrap();
    let d = artifact.features().len();
    // One fixed batch; every thread must get the identical answer.
    let rows: Vec<Vec<u32>> = (0..32)
        .map(|i| {
            (0..d)
                .map(|j| (i as u32 + j as u32) % artifact.features()[j].cardinality)
                .collect()
        })
        .collect();
    let body = serde_json::to_string(&PredictRequest {
        model: "onexr-nb".into(),
        rows: Some(rows),
        rows_raw: None,
    })
    .unwrap();

    let mut answers = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || http(addr, "POST", "/v1/predict", &body))
            })
            .collect();
        for h in handles {
            answers.push(h.join().unwrap());
        }
    });
    let first: PredictResponse = serde_json::from_str(&answers[0].1).unwrap();
    assert_eq!(first.labels.len(), 32);
    for (status, body) in &answers {
        assert_eq!(*status, 200);
        let r: PredictResponse = serde_json::from_str(body).unwrap();
        assert_eq!(r.labels, first.labels);
    }

    // A batch large enough to shard across the scoped-thread fan-out must
    // still bit-match the in-process sequential predict.
    let n_large = 4096;
    let rows: Vec<Vec<u32>> = (0..n_large)
        .map(|i| {
            (0..d)
                .map(|j| (i as u32 * 7 + j as u32) % artifact.features()[j].cardinality)
                .collect()
        })
        .collect();
    let flat: Vec<u32> = rows.iter().flatten().copied().collect();
    let expected = artifact.model.predict_batch(&flat, d);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/predict",
        &serde_json::to_string(&PredictRequest {
            model: "onexr-nb".into(),
            rows: Some(rows),
            rows_raw: None,
        })
        .unwrap(),
    );
    assert_eq!(status, 200);
    let parallel: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(
        parallel.labels, expected,
        "batch-parallel fan-out must be bit-identical to sequential"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
