//! The format-v3 sectioned binary container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HMLA"
//! 4       4     u32    container version (3 for this build)
//! 8       4     u32    section count
//! 12      4     zero padding
//! 16      24×N  section table: per section
//!                 [u8; 8]  tag (ASCII, zero-padded)
//!                 u64      absolute byte offset of the section
//!                 u64      section length in bytes
//! ...           section payloads, each starting on an 8-byte boundary
//! ```
//!
//! Section *offsets are 8-aligned by construction* — that is what lets the
//! payload streams inside (see `hamlet_ml::binenc`) guarantee absolute
//! alignment for their raw pod arrays, and therefore zero-copy borrows
//! from an mmap. The reader validates magic, version, table bounds and
//! per-section bounds before handing out windows, so a truncated or
//! corrupted file is a clean error, never a panic.

use hamlet_ml::binenc::{BinReader, BytesSource};

use crate::error::{Result, ServeError};

/// Container magic bytes ("HaMLet Artifact").
pub const MAGIC: [u8; 4] = *b"HMLA";

/// Container layout version written by this build.
pub const CONTAINER_VERSION: u32 = 3;

/// Fixed header size before the section table.
const HEADER_LEN: usize = 16;

/// Bytes per section-table entry.
const ENTRY_LEN: usize = 24;

/// Section alignment (matches `hamlet_ml::binenc::POD_ALIGN`).
const SECTION_ALIGN: usize = 8;

/// Tag of the JSON metadata section (name, version, schema fingerprint,
/// contract topology with by-reference dictionaries).
pub const SEC_META: [u8; 8] = *b"META\0\0\0\0";

/// Tag of the deduplicated dictionary (string table) section.
pub const SEC_DICT: [u8; 8] = *b"DICT\0\0\0\0";

/// Tag of the binary model payload section.
pub const SEC_MODL: [u8; 8] = *b"MODL\0\0\0\0";

/// One parsed section-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section tag (ASCII, zero-padded).
    pub tag: [u8; 8],
    /// Absolute byte offset.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl SectionEntry {
    /// Tag as printable ASCII (for `artifact inspect`).
    pub fn tag_str(&self) -> String {
        self.tag
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| char::from(b))
            .collect()
    }
}

fn corrupt(what: impl std::fmt::Display) -> ServeError {
    ServeError::Json(format!("corrupt v3 artifact: {what}"))
}

/// Whether a byte prefix looks like a v3 container (magic match only; the
/// version gate happens in [`parse_sections`]).
pub fn sniff_magic(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Assembles a container from `(tag, payload)` pairs, padding every section
/// to start on an 8-byte boundary.
pub fn build(sections: &[([u8; 8], &[u8])]) -> Vec<u8> {
    build_versioned(CONTAINER_VERSION, sections)
}

/// [`build`] with an explicit container version (the artifact layer writes
/// its `format_version` here, so a struct carrying a future version
/// round-trips into a file this build then refuses to read).
pub fn build_versioned(version: u32, sections: &[([u8; 8], &[u8])]) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    let mut out = Vec::with_capacity(
        table_end
            + sections
                .iter()
                .map(|(_, p)| p.len() + SECTION_ALIGN)
                .sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    // Reserve the table; fill offsets as payloads are placed.
    out.resize(table_end, 0);
    for (i, (tag, payload)) in sections.iter().enumerate() {
        while out.len() % SECTION_ALIGN != 0 {
            out.push(0);
        }
        let offset = out.len();
        out.extend_from_slice(payload);
        let entry = HEADER_LEN + i * ENTRY_LEN;
        out[entry..entry + 8].copy_from_slice(tag);
        out[entry + 8..entry + 16].copy_from_slice(&(offset as u64).to_le_bytes());
        out[entry + 16..entry + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    }
    out
}

/// Validates the 16-byte fixed header (magic, version gate) and returns
/// the declared section count plus the table's end offset. Shared by the
/// whole-buffer and file-seeking readers so there is exactly one copy of
/// the header grammar.
fn parse_header(header: &[u8]) -> Result<(usize, usize)> {
    if !sniff_magic(header) {
        return Err(corrupt("bad magic"));
    }
    if header.len() < HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != CONTAINER_VERSION {
        return Err(ServeError::Format {
            found: version,
            supported: CONTAINER_VERSION,
        });
    }
    let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    let table_end = HEADER_LEN
        .checked_add(
            count
                .checked_mul(ENTRY_LEN)
                .ok_or_else(|| corrupt("section count"))?,
        )
        .ok_or_else(|| corrupt("section count"))?;
    Ok((count, table_end))
}

/// Decodes and fully validates one 24-byte table entry. `table` holds the
/// raw table bytes (starting right after the fixed header); bounds and
/// alignment are checked against `table_end`/`file_len` so the seeking
/// reader rejects exactly what the whole-buffer reader rejects.
fn parse_entry(table: &[u8], i: usize, table_end: usize, file_len: usize) -> Result<SectionEntry> {
    let at = i * ENTRY_LEN;
    let mut tag = [0u8; 8];
    tag.copy_from_slice(&table[at..at + 8]);
    let offset = u64::from_le_bytes(table[at + 8..at + 16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(table[at + 16..at + 24].try_into().expect("8 bytes"));
    let (offset, len) = (
        usize::try_from(offset).map_err(|_| corrupt("section offset overflow"))?,
        usize::try_from(len).map_err(|_| corrupt("section length overflow"))?,
    );
    let entry = SectionEntry { tag, offset, len };
    let end = offset
        .checked_add(len)
        .ok_or_else(|| corrupt("section bounds overflow"))?;
    if offset < table_end || end > file_len {
        return Err(corrupt(format!(
            "section `{}` [{offset}, {end}) out of file bounds (file is {file_len} bytes)",
            entry.tag_str()
        )));
    }
    if !offset.is_multiple_of(SECTION_ALIGN) {
        return Err(corrupt(format!(
            "section `{}` offset {offset} not {SECTION_ALIGN}-aligned",
            entry.tag_str()
        )));
    }
    Ok(entry)
}

/// Parses and validates the header plus section table of `bytes`.
///
/// A wrong container version is a [`ServeError::Format`] (so callers can
/// surface "this build reads 3, found N"); everything else that disagrees
/// with the layout is a corruption error.
pub fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionEntry>> {
    let (count, table_end) = parse_header(bytes)?;
    if table_end > bytes.len() {
        return Err(corrupt(format!(
            "section table of {count} entries overruns file"
        )));
    }
    (0..count)
        .map(|i| parse_entry(&bytes[HEADER_LEN..table_end], i, table_end, bytes.len()))
        .collect()
}

/// Finds a section by tag.
pub fn find(entries: &[SectionEntry], tag: [u8; 8]) -> Result<SectionEntry> {
    entries
        .iter()
        .find(|e| e.tag == tag)
        .copied()
        .ok_or_else(|| {
            corrupt(format!(
                "missing `{}` section",
                SectionEntry {
                    tag,
                    offset: 0,
                    len: 0
                }
                .tag_str()
            ))
        })
}

/// A [`BinReader`] over one section of a shared source.
pub fn section_reader(src: &BytesSource, entry: SectionEntry) -> Result<BinReader> {
    BinReader::over(src.clone(), entry.offset, entry.len)
        .map_err(|e| corrupt(format!("section `{}`: {e}", entry.tag_str())))
}

/// Reads just the header, section table, and one section's bytes from a
/// file — without reading the rest. This is what makes header-only artifact
/// inspection cheap on v3: a multi-megabyte ANN artifact yields its `META`
/// section in two small reads.
pub fn read_one_section(path: &std::path::Path, tag: [u8; 8]) -> Result<Vec<u8>> {
    use std::io::{Read, Seek, SeekFrom};
    let ctx = |e| ServeError::io(format!("reading {}", path.display()), e);
    let mut file = std::fs::File::open(path).map_err(ctx)?;
    let file_len = usize::try_from(file.metadata().map_err(ctx)?.len())
        .map_err(|_| corrupt("file too large"))?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).map_err(ctx)?;
    let (count, table_end) = parse_header(&header)?;
    if table_end > file_len {
        return Err(corrupt(format!(
            "section table of {count} entries overruns file"
        )));
    }
    let mut table = vec![0u8; table_end - HEADER_LEN];
    file.read_exact(&mut table).map_err(ctx)?;
    // Same entry decoding + validation as `parse_sections`, entry by entry
    // against the real file length.
    for i in 0..count {
        let entry = parse_entry(&table, i, table_end, file_len)?;
        if entry.tag != tag {
            continue;
        }
        file.seek(SeekFrom::Start(entry.offset as u64))
            .map_err(ctx)?;
        let mut out = vec![0u8; entry.len];
        file.read_exact(&mut out).map_err(ctx)?;
        return Ok(out);
    }
    Err(corrupt(format!(
        "missing `{}` section",
        SectionEntry {
            tag,
            offset: 0,
            len: 0
        }
        .tag_str()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip_with_alignment() {
        let bytes = build(&[
            (SEC_META, b"{\"k\":1}".as_slice()),
            (SEC_DICT, b"abc".as_slice()),
            (SEC_MODL, &[1u8, 2, 3, 4, 5]),
        ]);
        let entries = parse_sections(&bytes).unwrap();
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert_eq!(
                e.offset % SECTION_ALIGN,
                0,
                "section {} misaligned",
                e.tag_str()
            );
        }
        let meta = find(&entries, SEC_META).unwrap();
        assert_eq!(&bytes[meta.offset..meta.offset + meta.len], b"{\"k\":1}");
        let modl = find(&entries, SEC_MODL).unwrap();
        assert_eq!(
            &bytes[modl.offset..modl.offset + modl.len],
            &[1, 2, 3, 4, 5]
        );
        assert!(find(&entries, *b"NOPE\0\0\0\0").is_err());
    }

    #[test]
    fn corrupt_headers_fail_cleanly() {
        let good = build(&[(SEC_META, b"x".as_slice())]);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(parse_sections(&bad).is_err());
        // Future container version → Format error carrying the version.
        let mut future = good.clone();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        match parse_sections(&future) {
            Err(ServeError::Format { found, supported }) => {
                assert_eq!(found, 9);
                assert_eq!(supported, CONTAINER_VERSION);
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        // Truncated: section table claims more entries than the file holds.
        let mut trunc = good.clone();
        trunc.truncate(HEADER_LEN + 4);
        assert!(parse_sections(&trunc).is_err());
        // Section length pointing past EOF.
        let mut overrun = good.clone();
        let at = HEADER_LEN + 16;
        overrun[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_sections(&overrun).is_err());
        // Empty and sub-header files.
        assert!(parse_sections(&[]).is_err());
        assert!(parse_sections(&good[..7]).is_err());
    }

    #[test]
    fn read_one_section_touches_only_headers() {
        let dir = std::env::temp_dir().join(format!("hamlet-cont-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bin");
        let big = vec![7u8; 100_000];
        std::fs::write(
            &path,
            build(&[(SEC_MODL, &big[..]), (SEC_META, b"meta!".as_slice())]),
        )
        .unwrap();
        assert_eq!(read_one_section(&path, SEC_META).unwrap(), b"meta!");
        assert!(read_one_section(&path, SEC_DICT).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
