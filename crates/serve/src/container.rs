//! The format-v3 sectioned binary container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HMLA"
//! 4       4     u32    container version (3 for this build)
//! 8       4     u32    section count
//! 12      4     zero padding
//! 16      24×N  section table: per section
//!                 [u8; 8]  tag (ASCII, zero-padded)
//!                 u64      absolute byte offset of the section
//!                 u64      section length in bytes
//! ...           section payloads, each starting on an 8-byte boundary
//! ```
//!
//! Section *offsets are 8-aligned by construction* — that is what lets the
//! payload streams inside (see `hamlet_ml::binenc`) guarantee absolute
//! alignment for their raw pod arrays, and therefore zero-copy borrows
//! from an mmap. The reader validates magic, version, table bounds and
//! per-section bounds before handing out windows, so a truncated or
//! corrupted file is a clean error, never a panic.
//!
//! ## Checksums
//!
//! The builder appends a `CRCS` section — one `(tag, crc32)` record per
//! payload section — so *silent* disk corruption (a flipped bit inside a
//! weight array that still parses) is caught at load time instead of
//! surfacing as wrong predictions. The section is self-describing and
//! optional: files written before checksums existed simply have no `CRCS`
//! entry and load as before ([`verify_checksums`] reports `false`), and
//! readers that predate it ignore the unknown tag. The CRC is the standard
//! reflected CRC-32 (IEEE 802.3), table-driven.

use hamlet_ml::binenc::{BinReader, BytesSource};

use crate::error::{Result, ServeError};

/// Container magic bytes ("HaMLet Artifact").
pub const MAGIC: [u8; 4] = *b"HMLA";

/// Container layout version written by this build.
pub const CONTAINER_VERSION: u32 = 3;

/// Fixed header size before the section table.
const HEADER_LEN: usize = 16;

/// Bytes per section-table entry.
const ENTRY_LEN: usize = 24;

/// Section alignment (matches `hamlet_ml::binenc::POD_ALIGN`).
const SECTION_ALIGN: usize = 8;

/// Tag of the JSON metadata section (name, version, schema fingerprint,
/// contract topology with by-reference dictionaries).
pub const SEC_META: [u8; 8] = *b"META\0\0\0\0";

/// Tag of the deduplicated dictionary (string table) section.
pub const SEC_DICT: [u8; 8] = *b"DICT\0\0\0\0";

/// Tag of the binary model payload section.
pub const SEC_MODL: [u8; 8] = *b"MODL\0\0\0\0";

/// Tag of the quantization descriptor section (small JSON: tensor storage
/// encoding plus per-tensor element counts, byte sizes and dequantization
/// scales). Present only in artifacts whose model payload is quantized;
/// readers that predate it ignore the unknown tag.
pub const SEC_QNTS: [u8; 8] = *b"QNTS\0\0\0\0";

/// Tag of the cascade descriptor section (small JSON: the tier table —
/// per-tier family, encoding, weight bytes, threshold and calibrator
/// params). Present only in artifacts whose model payload is a tiered
/// cascade, so `artifact inspect` can report the tier structure without
/// decoding the model; readers that predate it ignore the unknown tag.
pub const SEC_CASC: [u8; 8] = *b"CASC\0\0\0\0";

/// Tag of the per-section checksum table (one 16-byte record per payload
/// section: 8-byte tag, 4-byte CRC-32, 4 bytes zero padding).
pub const SEC_CRCS: [u8; 8] = *b"CRCS\0\0\0\0";

/// Bytes per `CRCS` record.
const CRC_ENTRY_LEN: usize = 16;

/// Reflected CRC-32 (IEEE) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Standard CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One parsed section-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section tag (ASCII, zero-padded).
    pub tag: [u8; 8],
    /// Absolute byte offset.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl SectionEntry {
    /// Tag as printable ASCII (for `artifact inspect`).
    pub fn tag_str(&self) -> String {
        self.tag
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| char::from(b))
            .collect()
    }
}

fn corrupt(what: impl std::fmt::Display) -> ServeError {
    ServeError::Json(format!("corrupt v3 artifact: {what}"))
}

/// Whether a byte prefix looks like a v3 container (magic match only; the
/// version gate happens in [`parse_sections`]).
pub fn sniff_magic(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Assembles a container from `(tag, payload)` pairs, padding every section
/// to start on an 8-byte boundary.
pub fn build(sections: &[([u8; 8], &[u8])]) -> Vec<u8> {
    build_versioned(CONTAINER_VERSION, sections)
}

/// [`build`] with an explicit container version (the artifact layer writes
/// its `format_version` here, so a struct carrying a future version
/// round-trips into a file this build then refuses to read). A `CRCS`
/// checksum section covering every payload section is appended
/// automatically.
pub fn build_versioned(version: u32, sections: &[([u8; 8], &[u8])]) -> Vec<u8> {
    let mut crcs = Vec::with_capacity(sections.len() * CRC_ENTRY_LEN);
    for (tag, payload) in sections {
        crcs.extend_from_slice(tag);
        crcs.extend_from_slice(&crc32(payload).to_le_bytes());
        crcs.extend_from_slice(&[0u8; 4]);
    }
    let mut all: Vec<([u8; 8], &[u8])> = sections.to_vec();
    all.push((SEC_CRCS, &crcs));
    build_raw(version, &all)
}

/// Lays out a container exactly as given (no implicit checksum section) —
/// the shared back end of [`build_versioned`], and what tests use to craft
/// legacy checksum-less files.
pub(crate) fn build_raw(version: u32, sections: &[([u8; 8], &[u8])]) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    let mut out = Vec::with_capacity(
        table_end
            + sections
                .iter()
                .map(|(_, p)| p.len() + SECTION_ALIGN)
                .sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    // Reserve the table; fill offsets as payloads are placed.
    out.resize(table_end, 0);
    for (i, (tag, payload)) in sections.iter().enumerate() {
        while out.len() % SECTION_ALIGN != 0 {
            out.push(0);
        }
        let offset = out.len();
        out.extend_from_slice(payload);
        let entry = HEADER_LEN + i * ENTRY_LEN;
        out[entry..entry + 8].copy_from_slice(tag);
        out[entry + 8..entry + 16].copy_from_slice(&(offset as u64).to_le_bytes());
        out[entry + 16..entry + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    }
    out
}

/// Validates the 16-byte fixed header (magic, version gate) and returns
/// the declared section count plus the table's end offset. Shared by the
/// whole-buffer and file-seeking readers so there is exactly one copy of
/// the header grammar.
fn parse_header(header: &[u8]) -> Result<(usize, usize)> {
    if !sniff_magic(header) {
        return Err(corrupt("bad magic"));
    }
    if header.len() < HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != CONTAINER_VERSION {
        return Err(ServeError::Format {
            found: version,
            supported: CONTAINER_VERSION,
        });
    }
    let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    let table_end = HEADER_LEN
        .checked_add(
            count
                .checked_mul(ENTRY_LEN)
                .ok_or_else(|| corrupt("section count"))?,
        )
        .ok_or_else(|| corrupt("section count"))?;
    Ok((count, table_end))
}

/// Decodes and fully validates one 24-byte table entry. `table` holds the
/// raw table bytes (starting right after the fixed header); bounds and
/// alignment are checked against `table_end`/`file_len` so the seeking
/// reader rejects exactly what the whole-buffer reader rejects.
fn parse_entry(table: &[u8], i: usize, table_end: usize, file_len: usize) -> Result<SectionEntry> {
    let at = i * ENTRY_LEN;
    let mut tag = [0u8; 8];
    tag.copy_from_slice(&table[at..at + 8]);
    let offset = u64::from_le_bytes(table[at + 8..at + 16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(table[at + 16..at + 24].try_into().expect("8 bytes"));
    let (offset, len) = (
        usize::try_from(offset).map_err(|_| corrupt("section offset overflow"))?,
        usize::try_from(len).map_err(|_| corrupt("section length overflow"))?,
    );
    let entry = SectionEntry { tag, offset, len };
    let end = offset
        .checked_add(len)
        .ok_or_else(|| corrupt("section bounds overflow"))?;
    if offset < table_end || end > file_len {
        return Err(corrupt(format!(
            "section `{}` [{offset}, {end}) out of file bounds (file is {file_len} bytes)",
            entry.tag_str()
        )));
    }
    if !offset.is_multiple_of(SECTION_ALIGN) {
        return Err(corrupt(format!(
            "section `{}` offset {offset} not {SECTION_ALIGN}-aligned",
            entry.tag_str()
        )));
    }
    Ok(entry)
}

/// Parses and validates the header plus section table of `bytes`.
///
/// A wrong container version is a [`ServeError::Format`] (so callers can
/// surface "this build reads 3, found N"); everything else that disagrees
/// with the layout is a corruption error.
pub fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionEntry>> {
    let (count, table_end) = parse_header(bytes)?;
    if table_end > bytes.len() {
        return Err(corrupt(format!(
            "section table of {count} entries overruns file"
        )));
    }
    (0..count)
        .map(|i| parse_entry(&bytes[HEADER_LEN..table_end], i, table_end, bytes.len()))
        .collect()
}

/// Verifies every section covered by the `CRCS` table (if present) against
/// its stored CRC-32, except sections whose tag is listed in `skip`.
/// Returns `Ok(true)` when checksums were present and all checked sections
/// matched, `Ok(false)` for a legacy container without a `CRCS` section,
/// and a corruption error naming the damaged section otherwise.
///
/// `skip` exists for the mmap load path: checksumming a section reads
/// every one of its bytes, and faulting in a multi-hundred-MB weight
/// payload at load time would undo exactly the page-fault-bounded loading
/// mmap exists for — so mmap loads verify the small structural sections
/// and leave `MODL` to be faulted lazily (heap loads, the default, verify
/// everything).
pub fn verify_checksums(bytes: &[u8], entries: &[SectionEntry], skip: &[[u8; 8]]) -> Result<bool> {
    let Some(table) = entries.iter().find(|e| e.tag == SEC_CRCS) else {
        return Ok(false);
    };
    let records = &bytes[table.offset..table.offset + table.len];
    if !records.len().is_multiple_of(CRC_ENTRY_LEN) {
        return Err(corrupt(format!(
            "CRCS section length {} is not a multiple of {CRC_ENTRY_LEN}",
            records.len()
        )));
    }
    for record in records.chunks_exact(CRC_ENTRY_LEN) {
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&record[..8]);
        if skip.contains(&tag) {
            continue;
        }
        let stored = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        let entry = find(entries, tag)?;
        let computed = crc32(&bytes[entry.offset..entry.offset + entry.len]);
        if computed != stored {
            return Err(corrupt(format!(
                "section `{}` checksum mismatch (stored {stored:#010x}, computed {computed:#010x})",
                entry.tag_str()
            )));
        }
    }
    Ok(true)
}

/// Finds a section by tag.
pub fn find(entries: &[SectionEntry], tag: [u8; 8]) -> Result<SectionEntry> {
    entries
        .iter()
        .find(|e| e.tag == tag)
        .copied()
        .ok_or_else(|| {
            corrupt(format!(
                "missing `{}` section",
                SectionEntry {
                    tag,
                    offset: 0,
                    len: 0
                }
                .tag_str()
            ))
        })
}

/// A [`BinReader`] over one section of a shared source.
pub fn section_reader(src: &BytesSource, entry: SectionEntry) -> Result<BinReader> {
    BinReader::over(src.clone(), entry.offset, entry.len)
        .map_err(|e| corrupt(format!("section `{}`: {e}", entry.tag_str())))
}

/// Reads just the header, section table, and one section's bytes from a
/// file — without reading the rest. This is what makes header-only artifact
/// inspection cheap on v3: a multi-megabyte ANN artifact yields its `META`
/// section in two small reads.
pub fn read_one_section(path: &std::path::Path, tag: [u8; 8]) -> Result<Vec<u8>> {
    use std::io::{Read, Seek, SeekFrom};
    let ctx = |e| ServeError::io(format!("reading {}", path.display()), e);
    let mut file = std::fs::File::open(path).map_err(ctx)?;
    let file_len = usize::try_from(file.metadata().map_err(ctx)?.len())
        .map_err(|_| corrupt("file too large"))?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).map_err(ctx)?;
    let (count, table_end) = parse_header(&header)?;
    if table_end > file_len {
        return Err(corrupt(format!(
            "section table of {count} entries overruns file"
        )));
    }
    let mut table = vec![0u8; table_end - HEADER_LEN];
    file.read_exact(&mut table).map_err(ctx)?;
    // Same entry decoding + validation as `parse_sections`, entry by entry
    // against the real file length.
    for i in 0..count {
        let entry = parse_entry(&table, i, table_end, file_len)?;
        if entry.tag != tag {
            continue;
        }
        file.seek(SeekFrom::Start(entry.offset as u64))
            .map_err(ctx)?;
        let mut out = vec![0u8; entry.len];
        file.read_exact(&mut out).map_err(ctx)?;
        return Ok(out);
    }
    Err(corrupt(format!(
        "missing `{}` section",
        SectionEntry {
            tag,
            offset: 0,
            len: 0
        }
        .tag_str()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip_with_alignment() {
        let bytes = build(&[
            (SEC_META, b"{\"k\":1}".as_slice()),
            (SEC_DICT, b"abc".as_slice()),
            (SEC_MODL, &[1u8, 2, 3, 4, 5]),
        ]);
        let entries = parse_sections(&bytes).unwrap();
        assert_eq!(entries.len(), 4, "three payload sections + CRCS");
        for e in &entries {
            assert_eq!(
                e.offset % SECTION_ALIGN,
                0,
                "section {} misaligned",
                e.tag_str()
            );
        }
        let meta = find(&entries, SEC_META).unwrap();
        assert_eq!(&bytes[meta.offset..meta.offset + meta.len], b"{\"k\":1}");
        let modl = find(&entries, SEC_MODL).unwrap();
        assert_eq!(
            &bytes[modl.offset..modl.offset + modl.len],
            &[1, 2, 3, 4, 5]
        );
        assert!(find(&entries, *b"NOPE\0\0\0\0").is_err());
    }

    #[test]
    fn corrupt_headers_fail_cleanly() {
        let good = build(&[(SEC_META, b"x".as_slice())]);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(parse_sections(&bad).is_err());
        // Future container version → Format error carrying the version.
        let mut future = good.clone();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        match parse_sections(&future) {
            Err(ServeError::Format { found, supported }) => {
                assert_eq!(found, 9);
                assert_eq!(supported, CONTAINER_VERSION);
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        // Truncated: section table claims more entries than the file holds.
        let mut trunc = good.clone();
        trunc.truncate(HEADER_LEN + 4);
        assert!(parse_sections(&trunc).is_err());
        // Section length pointing past EOF.
        let mut overrun = good.clone();
        let at = HEADER_LEN + 16;
        overrun[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_sections(&overrun).is_err());
        // Empty and sub-header files.
        assert!(parse_sections(&[]).is_err());
        assert!(parse_sections(&good[..7]).is_err());
    }

    #[test]
    fn checksums_catch_single_bit_payload_corruption() {
        let bytes = build(&[
            (SEC_META, b"{\"k\":1}".as_slice()),
            (SEC_MODL, &[9u8; 4096]),
        ]);
        let entries = parse_sections(&bytes).unwrap();
        assert!(
            verify_checksums(&bytes, &entries, &[]).unwrap(),
            "all crcs match"
        );

        // Flip one bit inside the MODL payload: parsing still succeeds
        // (the table is intact) but verification names the section.
        let modl = find(&entries, SEC_MODL).unwrap();
        let mut flipped = bytes.clone();
        flipped[modl.offset + modl.len / 2] ^= 0x01;
        let entries = parse_sections(&flipped).unwrap();
        let err = verify_checksums(&flipped, &entries, &[])
            .unwrap_err()
            .to_string();
        assert!(err.contains("MODL"), "{err}");
        assert!(err.contains("checksum"), "{err}");

        // Corrupting the CRCS table itself is also caught.
        let crcs = find(&entries, SEC_CRCS).unwrap();
        let mut bad_table = bytes.clone();
        bad_table[crcs.offset + 9] ^= 0xFF; // a stored crc byte
        let entries = parse_sections(&bad_table).unwrap();
        assert!(verify_checksums(&bad_table, &entries, &[]).is_err());
    }

    #[test]
    fn legacy_containers_without_crcs_still_verify_as_absent() {
        let legacy = build_raw(CONTAINER_VERSION, &[(SEC_META, b"old".as_slice())]);
        let entries = parse_sections(&legacy).unwrap();
        assert_eq!(entries.len(), 1, "no implicit CRCS in the raw layout");
        assert!(!verify_checksums(&legacy, &entries, &[]).unwrap());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn read_one_section_touches_only_headers() {
        let dir = std::env::temp_dir().join(format!("hamlet-cont-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bin");
        let big = vec![7u8; 100_000];
        std::fs::write(
            &path,
            build(&[(SEC_MODL, &big[..]), (SEC_META, b"meta!".as_slice())]),
        )
        .unwrap();
        assert_eq!(read_one_section(&path, SEC_META).unwrap(), b"meta!");
        assert!(read_one_section(&path, SEC_DICT).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
