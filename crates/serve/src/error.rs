//! Error type for the serving layer.

use std::fmt;

/// Errors raised by persistence, the registry and request handling.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure (path included for operator debugging).
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Artifact or request (de)serialization failure.
    Json(String),
    /// Artifact format too new/old for this binary.
    Format {
        /// Version found in the file.
        found: u32,
        /// Version this binary writes.
        supported: u32,
    },
    /// Registry lookup miss.
    ModelNotFound(String),
    /// Client-side request problem (HTTP 400/422).
    BadRequest(String),
    /// Training failure propagated from the experiment pipeline.
    Train(String),
}

impl ServeError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Json(msg) => write!(f, "serialization error: {msg}"),
            ServeError::Format { found, supported } => write!(
                f,
                "unsupported artifact format {found} (this build reads {supported})"
            ),
            ServeError::ModelNotFound(key) => write!(f, "model `{key}` is not registered"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Train(msg) => write!(f, "training failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e.to_string())
    }
}

impl From<hamlet_ml::error::MlError> for ServeError {
    fn from(e: hamlet_ml::error::MlError) -> Self {
        ServeError::Train(e.to_string())
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ServeError::io("writing artifact", std::io::Error::other("disk full"));
        assert!(e.to_string().contains("writing artifact"));
        assert!(ServeError::ModelNotFound("m@1".into())
            .to_string()
            .contains("m@1"));
        let f = ServeError::Format {
            found: 9,
            supported: 1,
        };
        assert!(f.to_string().contains('9'));
    }
}
