//! Per-connection HTTP/1.1 state machine over a non-blocking socket.
//!
//! Each accepted connection is a [`Conn`] owned by the reactor thread. It
//! moves through an explicit state cycle —
//!
//! ```text
//! Idle ──bytes──▶ ReadingHead ──headers──▶ ReadingBody ──body──▶ Dispatched
//!   ▲                                                                │
//!   └────────────── Writing ◀──────────── response from executor ◀──┘
//! ```
//!
//! — entirely driven by epoll readiness: the reactor calls
//! [`Conn::on_readable`] / [`Conn::on_writable`] when the socket is ready,
//! [`Conn::next_job`] to pull a parsed request for the executor pool, and
//! [`Conn::complete`] when the executor hands the response back. Parsing is
//! incremental (a request line trickled one byte at a time just leaves the
//! connection in `ReadingHead` with the bytes buffered), pipelined requests
//! that arrive back-to-back in one packet are parsed into a bounded queue
//! and answered strictly in order, and responses accumulate as a queue of
//! header/body segments flushed with **vectored writes**: one `writev`
//! carries many responses' iovecs in a single syscall, with partial-write
//! resumption picking up mid-segment wherever the kernel stopped.
//!
//! HTTP/1.1 connections are **keep-alive by default**: only an explicit
//! `Connection: close`, an HTTP/1.0 request without `Connection:
//! keep-alive`, a parse error, or the per-connection request cap closes the
//! connection. An idle keep-alive connection costs a file descriptor and a
//! couple of buffers — never a thread.
//!
//! Timeouts are deliberately state-dependent: `Idle` connections get the
//! (long) keep-alive idle deadline; a request must arrive *completely*
//! within the (short) request deadline measured from its first byte — the
//! deadline is not extended by trickling bytes, which is what defeats
//! slow-loris clients; `Dispatched` connections have no deadline (the
//! handler may legitimately run for minutes, e.g. `/v1/train`); `Writing`
//! deadlines extend on write progress, so a slow-but-live reader survives
//! while a dead peer is reaped.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

use crate::http::{Request, Response, ServerOptions};
use crate::reactor::IoVec;

/// Cap on the request line and each header line (matches the pre-reactor
/// server: a client streaming bytes with no newline must not grow server
/// memory unboundedly).
pub(crate) const MAX_LINE_BYTES: usize = 16 * 1024;

/// Cap on the number of headers per request.
pub(crate) const MAX_HEADERS: usize = 100;

/// Parsed-but-not-yet-dispatched pipelined requests are bounded; beyond
/// this the connection simply stops reading until responses drain.
const PENDING_CAP: usize = 32;

/// While a request is dispatched, buffered pipelined bytes are capped; the
/// reactor drops read interest until the executor catches up.
const PIPELINE_BUF_CAP: usize = 64 * 1024;

/// Largest head (request line + headers) the parser will buffer. Per-line
/// and header-count caps trip first for any single abusive line; this is
/// the backstop for many maximal legal lines.
const HEAD_BUF_CAP: usize = 2 * 1024 * 1024;

/// Responses accumulate in the write queue while earlier pipelined
/// requests are still executing; once the queue crosses this threshold it
/// is flushed even mid-pipeline.
const WRITE_BATCH_BYTES: usize = 64 * 1024;

/// Most segments one `writev` carries (well under the kernel's `IOV_MAX`
/// of 1024); a pipeline deeper than 32 responses simply takes another
/// syscall.
const MAX_IOVECS: usize = 64;

/// After a parse error the connection drains (and discards) up to this many
/// bytes of pending input before closing, so the kernel does not RST the
/// connection before the client has read the error response.
const DRAIN_CAP: usize = 1024 * 1024;

/// The explicit lifecycle phase of a connection (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Keep-alive connection parked between requests. Costs no thread.
    Idle,
    /// A request's first bytes have arrived; request line + headers are
    /// being accumulated.
    ReadingHead,
    /// Headers parsed; waiting for `Content-Length` body bytes.
    ReadingBody,
    /// A request is executing on the executor pool; the reactor is only
    /// watching for disconnects and buffering (bounded) pipelined bytes.
    Dispatched,
    /// Response bytes are queued and being flushed as the socket allows.
    Writing,
}

/// What the reactor should do with the connection after an I/O step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Keep the connection registered.
    Open,
    /// Deregister and drop the connection.
    Close,
}

/// Parse-layer errors; each maps to one terminal HTTP response.
#[derive(Debug)]
enum ParseError {
    TooLarge(&'static str),
    Malformed(&'static str),
}

impl ParseError {
    fn response(&self) -> Response {
        match self {
            ParseError::TooLarge(what) => {
                Response::json(413, format!("{{\"error\":\"{what}\"}}").into_bytes())
            }
            ParseError::Malformed(what) => {
                Response::json(400, format!("{{\"error\":\"{what}\"}}").into_bytes())
            }
        }
    }
}

/// A fully parsed request head awaiting its body.
#[derive(Debug)]
struct BodyNeed {
    method: String,
    path: String,
    query: String,
    keep_alive: bool,
    /// Total body bytes required in `read_buf` before the request is
    /// complete.
    total: usize,
}

/// One connection's full reactor-side state.
pub(crate) struct Conn {
    stream: TcpStream,
    pub(crate) state: ConnState,
    opts: Arc<ServerOptions>,

    // ---- read side ----
    read_buf: Vec<u8>,
    /// Offset of the first byte `parse_step` has not yet examined.
    scan: usize,
    /// Offset where the current head line starts.
    line_start: usize,
    /// Head lines seen so far for the in-progress request.
    n_head_lines: usize,
    /// Set once the head is parsed and body bytes are still owed.
    body: Option<BodyNeed>,
    /// Peer sent FIN: no more request bytes will arrive.
    read_closed: bool,
    /// Backpressure: stop reading until the pipeline drains.
    read_paused: bool,
    /// Post-error mode: discard (bounded) input so the error response can
    /// be delivered before the close.
    discarding: bool,
    discarded: usize,

    // ---- dispatch side ----
    /// Parsed pipelined requests not yet handed to an executor.
    pending: VecDeque<Request>,
    /// `Some(keep_alive_decision)` while a request is executing.
    inflight: Option<bool>,
    /// Requests served on this connection (keep-alive cap).
    served: usize,

    // ---- write side ----
    /// Queued response segments (header bytes and body bytes alternate;
    /// empty bodies queue no segment). Kept as discrete segments so a flush
    /// can hand the kernel one `writev` of iovecs instead of memcpy-ing
    /// everything into a flat buffer first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of the *front* segment already written (partial-write resume
    /// point).
    out_pos: usize,
    /// Total unwritten bytes across all queued segments.
    out_len: usize,
    close_after_flush: bool,
    /// A parse-error response that must be written *after* every response
    /// already owed for earlier pipelined requests.
    error_resp: Option<Response>,

    // ---- deadlines ----
    /// Absolute deadline for the current state; `None` while `Dispatched`.
    pub(crate) deadline: Option<Instant>,
    /// The deadline currently filed in the reactor's timer wheel (lazy
    /// bookkeeping; see `reactor::TimerWheel`).
    pub(crate) filed: Option<Instant>,
    /// epoll interest mask currently registered for this connection
    /// (`EPOLLONESHOT` excluded — every registration carries it).
    pub(crate) registered: u32,
    /// Whether the one-shot registration is still armed: the kernel
    /// disarms on event delivery, so the reactor clears this when an event
    /// fires and re-arms (EPOLL_CTL_MOD) after processing it.
    pub(crate) armed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant, opts: Arc<ServerOptions>) -> Conn {
        let deadline = Some(now + opts.idle_timeout);
        Conn {
            stream,
            state: ConnState::Idle,
            opts,
            read_buf: Vec::new(),
            scan: 0,
            line_start: 0,
            n_head_lines: 0,
            body: None,
            read_closed: false,
            read_paused: false,
            discarding: false,
            discarded: 0,
            pending: VecDeque::new(),
            inflight: None,
            served: 0,
            out: VecDeque::new(),
            out_pos: 0,
            out_len: 0,
            close_after_flush: false,
            error_resp: None,
            deadline,
            filed: None,
            registered: 0,
            armed: false,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Largest `read_buf` this state may grow to before reads pause.
    fn read_cap(&self) -> usize {
        if let Some(need) = &self.body {
            // The whole body plus slack for pipelined bytes behind it.
            need.total + PIPELINE_BUF_CAP
        } else if self.inflight.is_some() || self.pending.len() >= PENDING_CAP {
            PIPELINE_BUF_CAP
        } else {
            HEAD_BUF_CAP
        }
    }

    /// Socket is readable: pull bytes, advance the parser, queue work.
    pub(crate) fn on_readable(&mut self, now: Instant) -> Verdict {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            if self.discarding {
                // Error path: read and discard so the peer can finish its
                // send and actually receive the error response.
                match self.stream.read(&mut tmp) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.discarded += n;
                        if self.discarded >= DRAIN_CAP {
                            self.read_paused = true;
                            break;
                        }
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Verdict::Close,
                }
            }
            if self.read_buf.len() >= self.read_cap() {
                self.read_paused = true;
                break;
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        self.advance(now)
    }

    /// Run the incremental parser over buffered bytes and recompute state.
    /// Called after reads, and after a response is written (pipelined bytes
    /// may already hold the next request).
    pub(crate) fn advance(&mut self, now: Instant) -> Verdict {
        while self.error_resp.is_none() && !self.discarding && self.pending.len() < PENDING_CAP {
            match self.parse_step() {
                Ok(Some(req)) => self.pending.push_back(req),
                Ok(None) => break,
                Err(e) => {
                    self.error_resp = Some(e.response());
                    self.discarding = true;
                    // Anything already buffered is part of the broken
                    // stream; count it against the drain cap and drop it.
                    self.discarded += self.read_buf.len();
                    self.read_buf.clear();
                    self.reset_parse_cursor();
                    break;
                }
            }
        }
        if self.read_closed
            && self.error_resp.is_none()
            && !self.discarding
            && self.inflight.is_none()
            && self.pending.is_empty()
        {
            if self.read_buf.is_empty() && self.body.is_none() && !self.has_unwritten() {
                // Clean close at a request boundary: the normal end of a
                // keep-alive conversation.
                return Verdict::Close;
            }
            if !self.read_buf.is_empty() || self.body.is_some() {
                // FIN mid-request: truncation.
                self.error_resp = Some(ParseError::Malformed("truncated request").response());
                self.discarding = true;
                self.read_buf.clear();
                self.reset_parse_cursor();
            }
        }
        self.flush_error_if_due();
        // A read paused at a buffer cap resumes once parsing consumed the
        // buffered bytes or revealed a larger cap. Without this, a legal
        // 2–16 MiB body wedges: the head-stage cap pauses reads mid-ingest,
        // the parsed Content-Length then raises `read_cap`, but nothing
        // would ever read again. (The post-error drain pause is permanent
        // by design — hence `!discarding`.)
        if self.read_paused
            && !self.discarding
            && self.pending.len() < PENDING_CAP
            && self.read_buf.len() < self.read_cap()
        {
            self.read_paused = false;
        }
        self.recompute(now);
        Verdict::Open
    }

    fn reset_parse_cursor(&mut self) {
        self.scan = 0;
        self.line_start = 0;
        self.n_head_lines = 0;
        self.body = None;
    }

    /// Try to carve one complete request off the front of `read_buf`.
    /// `Ok(None)` means more bytes are needed.
    fn parse_step(&mut self) -> Result<Option<Request>, ParseError> {
        if let Some(need) = &self.body {
            if self.read_buf.len() < need.total {
                return Ok(None);
            }
            let need = self.body.take().expect("checked above");
            let body: Vec<u8> = self.read_buf.drain(..need.total).collect();
            self.reset_parse_cursor();
            return Ok(Some(Request {
                method: need.method,
                path: need.path,
                query: need.query,
                body,
                keep_alive: need.keep_alive,
            }));
        }
        // Walk lines until the head-terminating empty line.
        loop {
            let Some(rel) = self.read_buf[self.scan..].iter().position(|&b| b == b'\n') else {
                // No newline yet: enforce the per-line cap on the partial
                // line so an endless stream without newlines errors early.
                if self.read_buf.len() - self.line_start > MAX_LINE_BYTES {
                    return Err(ParseError::TooLarge("request/header line exceeds 16 KiB"));
                }
                return Ok(None);
            };
            let nl = self.scan + rel;
            let mut line_end = nl;
            if line_end > self.line_start && self.read_buf[line_end - 1] == b'\r' {
                line_end -= 1;
            }
            if line_end - self.line_start > MAX_LINE_BYTES {
                return Err(ParseError::TooLarge("request/header line exceeds 16 KiB"));
            }
            let is_empty = line_end == self.line_start;
            self.scan = nl + 1;
            if is_empty {
                // Head complete: [0, line_start) holds request line +
                // headers, the terminator ends at `scan`.
                let head_end = self.line_start;
                let consumed = self.scan;
                let head = self.parse_head(head_end)?;
                self.read_buf.drain(..consumed);
                self.reset_parse_cursor();
                if head.total > 0 {
                    self.body = Some(head);
                    // Tail-recurse once: the body may already be buffered.
                    return self.parse_step();
                }
                return Ok(Some(Request {
                    method: head.method,
                    path: head.path,
                    query: head.query,
                    body: Vec::new(),
                    keep_alive: head.keep_alive,
                }));
            }
            self.line_start = self.scan;
            self.n_head_lines += 1;
            if self.n_head_lines > MAX_HEADERS + 1 {
                return Err(ParseError::TooLarge("more than 100 headers"));
            }
        }
    }

    /// Parse the buffered head region `[0, head_end)` into a [`BodyNeed`].
    fn parse_head(&self, head_end: usize) -> Result<BodyNeed, ParseError> {
        let mut lines = self.read_buf[..head_end]
            .split(|&b| b == b'\n')
            .map(|l| l.strip_suffix(b"\r").unwrap_or(l));
        let request_line = lines.next().unwrap_or(b"");
        let request_line = std::str::from_utf8(request_line)
            .map_err(|_| ParseError::Malformed("non-UTF-8 request"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or(ParseError::Malformed("missing method"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or(ParseError::Malformed("missing path"))?;
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        if !path.starts_with('/') {
            return Err(ParseError::Malformed("path must be absolute"));
        }
        // HTTP/1.1 defaults to keep-alive; HTTP/1.0 (or no version at all)
        // to close. An explicit Connection header always wins.
        let http11 = parts
            .next()
            .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.1"));

        let mut content_length: u64 = 0;
        let mut connection: Option<bool> = None;
        for header in lines {
            let Ok(text) = std::str::from_utf8(header) else {
                continue; // tolerate non-UTF-8 headers we don't care about
            };
            if let Some((name, value)) = text.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ParseError::Malformed("bad content-length"))?;
                } else if name.eq_ignore_ascii_case("connection") {
                    let value = value.trim();
                    if value.eq_ignore_ascii_case("close") {
                        connection = Some(false);
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        connection = Some(true);
                    }
                }
            }
        }
        if content_length > crate::http::MAX_BODY_BYTES {
            return Err(ParseError::TooLarge("body exceeds 16 MiB"));
        }
        Ok(BodyNeed {
            method,
            path,
            query,
            keep_alive: connection.unwrap_or(http11),
            total: content_length as usize,
        })
    }

    /// Hand the next parsed request to the reactor for dispatch (at most
    /// one in flight per connection, preserving HTTP/1.1 response order).
    pub(crate) fn next_job(&mut self, _now: Instant) -> Option<Request> {
        if self.inflight.is_some() || self.close_after_flush {
            return None;
        }
        let req = self.pending.pop_front()?;
        self.served += 1;
        let keep_alive = req.keep_alive && self.served < self.opts.max_keepalive_requests;
        self.inflight = Some(keep_alive);
        self.state = ConnState::Dispatched;
        self.deadline = None; // the handler may run for minutes (training)
        Some(req)
    }

    /// The executor finished the in-flight request: queue its response.
    pub(crate) fn complete(&mut self, response: &Response, now: Instant) {
        let keep_alive = self.inflight.take().unwrap_or(false);
        self.queue_response(response, keep_alive);
        if !keep_alive {
            self.close_after_flush = true;
            self.pending.clear();
        }
        self.flush_error_if_due();
        self.recompute(now);
    }

    /// Append one response to the segment queue: a head segment plus (for
    /// non-empty bodies) a body segment. Segments stay discrete so the
    /// flush path can hand them to `writev` without a coalescing memcpy.
    fn queue_response(&mut self, response: &Response, keep_alive: bool) {
        let head = response.head_bytes(keep_alive);
        self.out_len += head.len();
        self.out.push_back(head);
        if !response.body.is_empty() {
            self.out_len += response.body.len();
            self.out.push_back(response.body.clone());
        }
    }

    /// Append the deferred parse-error response once every response owed
    /// for earlier (well-formed) pipelined requests has been queued.
    fn flush_error_if_due(&mut self) {
        if self.inflight.is_none() && self.pending.is_empty() {
            if let Some(resp) = self.error_resp.take() {
                self.queue_response(&resp, false);
                self.close_after_flush = true;
            }
        }
    }

    pub(crate) fn has_unwritten(&self) -> bool {
        self.out_len > 0
    }

    /// Whether buffered response bytes should be flushed *now*. Mid-
    /// pipeline the flush is deferred (batching) until the queue crosses
    /// the batch threshold, the pipeline drains, or the connection is
    /// closing.
    pub(crate) fn wants_flush(&self) -> bool {
        self.has_unwritten()
            && (self.inflight.is_none()
                || self.close_after_flush
                || self.out_len >= WRITE_BATCH_BYTES)
    }

    /// Account `n` bytes written against the segment queue: pop segments
    /// that are now fully on the wire, leave `out_pos` mid-segment where
    /// the kernel stopped (partial-write resumption).
    fn consume_out(&mut self, mut n: usize) {
        self.out_len -= n;
        while n > 0 {
            let front_left = self.out.front().expect("bytes owed ⇒ segment").len() - self.out_pos;
            if n < front_left {
                self.out_pos += n;
                break;
            }
            n -= front_left;
            self.out.pop_front();
            self.out_pos = 0;
        }
    }

    /// One vectored write covering up to [`MAX_IOVECS`] queued segments
    /// (the front one offset by the partial-write resume point).
    fn writev_step(&mut self) -> std::io::Result<usize> {
        let mut iov = [IoVec {
            base: std::ptr::null(),
            len: 0,
        }; MAX_IOVECS];
        let mut n = 0;
        for seg in self.out.iter().take(MAX_IOVECS) {
            let skip = if n == 0 { self.out_pos } else { 0 };
            iov[n] = IoVec {
                base: seg[skip..].as_ptr(),
                len: seg.len() - skip,
            };
            n += 1;
        }
        // SAFETY: each iovec points into a segment owned by `self.out`,
        // alive and unmoved for the duration of the call.
        let rc = unsafe { crate::reactor::writev(self.stream.as_raw_fd(), iov.as_ptr(), n as i32) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    /// Socket is writable (or a flush is being attempted opportunistically).
    pub(crate) fn on_writable(&mut self, now: Instant) -> Verdict {
        while self.wants_flush() {
            let wrote = if self.opts.vectored_writes {
                self.writev_step()
            } else {
                // Comparison path (`--no-writev` / benches): one plain
                // write per segment, resuming mid-segment like writev.
                let front = self.out.front().expect("wants_flush ⇒ segment");
                self.stream.write(&front[self.out_pos..])
            };
            match wrote {
                Ok(0) => return Verdict::Close,
                Ok(n) => {
                    self.consume_out(n);
                    if self.state == ConnState::Writing {
                        // Progress extends the write deadline: reap dead
                        // peers, not slow-but-live ones.
                        self.deadline = Some(now + self.opts.request_timeout);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        if !self.has_unwritten() {
            self.out.clear();
            self.out_pos = 0;
            if self.close_after_flush {
                return Verdict::Close;
            }
            // Pipeline backpressure lifts once responses are on the wire;
            // advance() un-pauses reads when the buffer allows.
            return self.advance(now);
        }
        self.recompute(now);
        Verdict::Open
    }

    /// All queued-but-unwritten response bytes, flattened (tests and
    /// diagnostics only — the hot path never materialises this).
    #[cfg(test)]
    fn queued_bytes(&self) -> Vec<u8> {
        let mut flat = Vec::with_capacity(self.out_len);
        for (i, seg) in self.out.iter().enumerate() {
            let skip = if i == 0 { self.out_pos } else { 0 };
            flat.extend_from_slice(&seg[skip..]);
        }
        flat
    }

    /// Recompute the state label and its deadline after any transition.
    fn recompute(&mut self, now: Instant) {
        let new_state = if self.inflight.is_some() {
            ConnState::Dispatched
        } else if self.has_unwritten() {
            ConnState::Writing
        } else if self.body.is_some() {
            ConnState::ReadingBody
        } else if !self.read_buf.is_empty() || self.discarding {
            ConnState::ReadingHead
        } else {
            ConnState::Idle
        };
        if new_state != self.state {
            self.deadline = match new_state {
                ConnState::Idle => Some(now + self.opts.idle_timeout),
                // The whole request must arrive within one request
                // deadline from its first byte; trickling bytes does NOT
                // extend it (slow-loris defence). ReadingBody inherits the
                // clock started at ReadingHead.
                ConnState::ReadingHead => Some(now + self.opts.request_timeout),
                ConnState::ReadingBody => self.deadline.or(Some(now + self.opts.request_timeout)),
                ConnState::Dispatched => None,
                ConnState::Writing => Some(now + self.opts.request_timeout),
            };
            self.state = new_state;
        }
    }

    /// epoll interest mask this connection currently needs.
    pub(crate) fn desired_events(&self) -> u32 {
        let mut events = 0;
        if !self.read_closed && !self.read_paused {
            events |= crate::reactor::EPOLLIN;
        }
        if self.wants_flush() {
            events |= crate::reactor::EPOLLOUT;
        }
        events
    }

    pub(crate) fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// A connected nonblocking socket pair via loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn conn(server: TcpStream) -> Conn {
        let opts = Arc::new(ServerOptions {
            workers: 1,
            ..ServerOptions::default()
        });
        Conn::new(server, Instant::now(), opts)
    }

    fn drive(c: &mut Conn, client: &mut TcpStream, bytes: &[u8]) -> Verdict {
        use std::io::Write as _;
        client.write_all(bytes).unwrap();
        // Loopback delivery is immediate but give the kernel a beat.
        std::thread::sleep(Duration::from_millis(10));
        c.on_readable(Instant::now())
    }

    #[test]
    fn incremental_head_parse_survives_byte_trickle() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        assert_eq!(c.state, ConnState::Idle);
        let raw = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        for &b in &raw[..raw.len() - 1] {
            assert_eq!(drive(&mut c, &mut client, &[b]), Verdict::Open);
            assert!(c.pending.is_empty(), "no request before the blank line");
            assert_eq!(c.state, ConnState::ReadingHead);
        }
        drive(&mut c, &mut client, &raw[raw.len() - 1..]);
        let req = c.next_job(Instant::now()).expect("request parsed");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/x");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(c.state, ConnState::Dispatched);
        assert_eq!(c.deadline, None, "no deadline while the handler runs");
    }

    #[test]
    fn request_deadline_is_not_extended_by_trickled_bytes() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        drive(&mut c, &mut client, b"GET");
        let d0 = c.deadline.expect("request clock started");
        std::thread::sleep(Duration::from_millis(30));
        drive(&mut c, &mut client, b" /slow");
        assert_eq!(c.deadline, Some(d0), "trickling must not reset the clock");
    }

    #[test]
    fn body_split_across_reads_and_pipelined_followup() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        drive(
            &mut c,
            &mut client,
            b"POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel",
        );
        assert_eq!(c.state, ConnState::ReadingBody);
        assert!(c.next_job(Instant::now()).is_none());
        // Rest of the body plus a complete pipelined request in one packet.
        drive(&mut c, &mut client, b"loGET /second HTTP/1.1\r\n\r\n");
        let req = c.next_job(Instant::now()).expect("first request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello".to_vec());
        // The pipelined request is already parsed and queued behind it.
        c.complete(&Response::text(200, "ok"), Instant::now());
        let req2 = c.next_job(Instant::now()).expect("pipelined request");
        assert_eq!(req2.path, "/second");
    }

    #[test]
    fn pipelined_requests_answer_in_order_with_batched_write() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        drive(
            &mut c,
            &mut client,
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
        );
        let now = Instant::now();
        for path in ["/a", "/b", "/c"] {
            let req = c.next_job(now).expect(path);
            assert_eq!(req.path, path, "strict pipeline order");
            c.complete(&Response::text(200, path.trim_start_matches('/')), now);
        }
        // Three responses sit in ONE write buffer (batched), flushed as one.
        assert!(c.has_unwritten());
        assert!(c.wants_flush(), "pipeline drained: flush is due");
        assert_eq!(c.on_writable(now), Verdict::Open);
        assert!(!c.has_unwritten());
        assert_eq!(c.state, ConnState::Idle);

        let mut got = Vec::new();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut tmp = [0u8; 4096];
        while got.len() < 3 * 20 {
            match client.read(&mut tmp) {
                Ok(n) => got.extend_from_slice(&tmp[..n]),
                Err(_) => break,
            }
            if String::from_utf8_lossy(&got)
                .matches("HTTP/1.1 200")
                .count()
                == 3
            {
                break;
            }
        }
        let text = String::from_utf8_lossy(&got);
        let a = text.find("\r\n\r\na").expect("body a");
        let b = text.find("\r\n\r\nb").expect("body b");
        let cpos = text.find("\r\n\r\nc").expect("body c");
        assert!(a < b && b < cpos, "responses in request order: {text}");
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        drive(
            &mut c,
            &mut client,
            b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let req = c.next_job(Instant::now()).unwrap();
        assert!(!req.keep_alive, "explicit close wins over 1.1 default");

        let (mut client2, server2) = pair();
        let mut c2 = conn(server2);
        drive(&mut c2, &mut client2, b"GET /y HTTP/1.0\r\n\r\n");
        assert!(!c2.next_job(Instant::now()).unwrap().keep_alive);

        let (mut client3, server3) = pair();
        let mut c3 = conn(server3);
        drive(
            &mut c3,
            &mut client3,
            b"GET /z HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        );
        assert!(c3.next_job(Instant::now()).unwrap().keep_alive);
    }

    #[test]
    fn oversized_line_and_body_are_parse_errors() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        let long = vec![b'a'; MAX_LINE_BYTES + 10];
        drive(&mut c, &mut client, &long);
        assert!(
            c.error_resp.is_some() || c.has_unwritten(),
            "line cap trips"
        );
        assert!(c.discarding);

        let (mut client2, server2) = pair();
        let mut c2 = conn(server2);
        drive(
            &mut c2,
            &mut client2,
            format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                crate::http::MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert!(c2.has_unwritten(), "413 queued");
        let buf = String::from_utf8_lossy(&c2.queued_bytes()).into_owned();
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn clean_close_at_boundary_vs_truncation() {
        // FIN with an empty buffer at a request boundary: clean close.
        let (client, server) = pair();
        let mut c = conn(server);
        drop(client);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.on_readable(Instant::now()), Verdict::Close);

        // FIN mid-head: truncation → 400 queued, then close after flush.
        let (mut client2, server2) = pair();
        let mut c2 = conn(server2);
        drive(&mut c2, &mut client2, b"GET /half HTT");
        drop(client2);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c2.on_readable(Instant::now()), Verdict::Open);
        let buf = String::from_utf8_lossy(&c2.queued_bytes()).into_owned();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        assert!(c2.close_after_flush);
    }

    #[test]
    fn keepalive_request_cap_forces_close() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        let max = c.opts.max_keepalive_requests;
        let now = Instant::now();
        for i in 0..max {
            drive(&mut c, &mut client, b"GET /r HTTP/1.1\r\n\r\n");
            let req = c.next_job(now).unwrap();
            assert!(req.keep_alive, "client asked for keep-alive every time");
            let expect_ka = i + 1 < max;
            c.complete(&Response::text(200, "ok"), now);
            assert_eq!(
                c.close_after_flush, !expect_ka,
                "request {i}: close only at the cap"
            );
            if c.on_writable(now) == Verdict::Close {
                assert_eq!(i + 1, max, "closed exactly at the cap");
                return;
            }
        }
        panic!("connection never closed at the keep-alive cap");
    }
}
