//! # hamlet-serve
//!
//! The serving layer of the hamlet reproduction: turn trained classifiers
//! into *servable artifacts* and answer prediction/advisor traffic over
//! HTTP — the paper's operational decision ("skip the join before sourcing
//! the table") available at request time instead of only inside offline
//! experiment binaries.
//!
//! - [`artifact`] — versioned save/load of [`ModelArtifact`]s: an
//!   [`hamlet_ml::any::AnyClassifier`] plus its
//!   [`hamlet_core::feature_config::FeatureConfig`], input feature contract,
//!   star-schema fingerprint and training metrics;
//! - [`registry`] — a concurrent [`ModelRegistry`] keyed by
//!   `name@version`, warm-loaded from an artifact directory at boot.
//!   Bare-name (latest-version) resolution is **lock-free** — an
//!   [`swap::ArcSwapCell`] snapshot republished on registration — so the
//!   predict hot path never contends with writers; pinned versions and
//!   mutations use the `RwLock` index;
//! - [`coalesce`] — cross-request predict coalescing: concurrent small
//!   `/v1/predict` requests against one model merge into a single sharded
//!   fan-out at the executor boundary, with bit-identical responses;
//! - [`http`] — a hand-rolled, event-driven HTTP/1.1 server on `std::net`:
//!   one [`reactor`] thread multiplexes every connection over raw `epoll`
//!   (direct syscall FFI — no async runtime, no external crates), each
//!   connection an explicit state machine ([`conn`]) with keep-alive on by
//!   default, and a fixed executor pool running the handlers;
//! - [`server`] — the endpoints:
//!
//! | endpoint | purpose |
//! |---|---|
//! | `POST /v1/predict` | batch of categorical rows → labels (+ latency) |
//! | `POST /v1/explain` | coded rows → their raw label strings (contract decode) |
//! | `POST /v1/advise`  | star-schema stats → join-avoidance verdicts |
//! | `POST /v1/train`   | train spec → runs the experiment pipeline, persists + registers |
//! | `GET /v1/models`   | registry listing |
//! | `POST /v1/models/demote` | return a promoted old version to its lazy slot |
//! | `POST /v1/observe` | labeled production rows → crash-safe observe buffer |
//! | `POST /v1/rollout/start` | put a candidate version into shadow (or warm-start refresh one) |
//! | `GET /v1/rollout/status` | rollout state machine + drift counters |
//! | `POST /v1/rollout/abort` | abandon the in-flight rollout |
//! | `GET /healthz`     | liveness + model count + coalescer counters |
//! | `GET /v1/stats`    | per-model/per-endpoint latency percentiles, counters, event tail |
//! | `GET /metrics`     | Prometheus text exposition of the same telemetry |
//!
//! - [`train`] — the train-to-artifact pipeline shared by `/v1/train` and
//!   the `hamlet-serve` CLI (`train` / `serve` subcommands), plus the
//!   warm-start incremental refresh feeding rollouts from observed rows;
//! - [`rollout`] — the safe-rollout plane: shadow/canary state machine
//!   with guardrailed auto-promote and auto-rollback, a journaled state
//!   log that survives restarts, the bounded crash-safe observe buffer,
//!   and the drift advisor that re-runs the paper's avoid-join decision
//!   rule over live labeled traffic.
//!
//! ## Quickstart
//!
//! ```bash
//! # Train a decision tree on the Movies-shaped emulator, NoJoin features:
//! cargo run --release --bin hamlet-serve -- train \
//!     --name movies-tree --dataset movies --spec TreeGini --dir artifacts
//!
//! # Boot the server (warm-loads artifacts/):
//! cargo run --release --bin hamlet-serve -- serve --dir artifacts --addr 127.0.0.1:8080
//!
//! # Ask for predictions and advice:
//! curl -s localhost:8080/healthz
//! curl -s -X POST localhost:8080/v1/predict \
//!     -d '{"model":"movies-tree","rows":[[0,1,2]]}'
//! curl -s -X POST localhost:8080/v1/advise \
//!     -d '{"family":"TreeOrAnn","n_train":6000,
//!          "dims":[{"name":"users","n_rows":2400,"open_domain":false}]}'
//! ```
//!
//! [`ModelArtifact`]: artifact::ModelArtifact
//! [`ModelRegistry`]: registry::ModelRegistry

pub mod api;
pub mod artifact;
pub mod coalesce;
mod conn;
pub mod container;
pub mod diff;
pub mod error;
pub mod http;
mod reactor;
pub mod registry;
pub mod rollout;
pub mod server;
pub mod swap;
pub mod telemetry;
pub mod train;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::api::{
        AdviseRequest, AdviseResponse, DemoteRequest, ExplainRequest, ExplainResponse, Health,
        ModelsResponse, ObserveRequest, ObserveResponse, PredictRequest, PredictResponse,
        RolloutStartRequest, RolloutStatusResponse, TrainRequest, TrainResponse,
    };
    pub use crate::artifact::{
        ArtifactHead, Format, LoadMode, ModelArtifact, TrainingMetadata, FORMAT_VERSION,
    };
    pub use crate::coalesce::{CoalesceConfig, CoalesceSnapshot, Coalescer};
    pub use crate::error::{Result as ServeResult, ServeError};
    pub use crate::http::{Responder, Server, ServerOptions, StopHandle};
    pub use crate::registry::{ModelRegistry, ModelSummary};
    pub use crate::rollout::{
        GuardrailConfig, ObserveStore, ObservedRow, Phase, RolloutPlane, RolloutSnapshot,
    };
    pub use crate::server::{router, serve, serve_with, AppState, WarmOptions};
    pub use crate::telemetry::{Endpoint, Event, EventKind, EventLog, Telemetry};
    pub use crate::train::{resolve_dataset, train_and_register, train_incremental, DATASETS};
}
