//! `hamlet-serve` CLI: train servable artifacts and run the HTTP server.
//!
//! ```bash
//! hamlet-serve train --name movies-tree --dataset movies --spec TreeGini \
//!     [--config NoJoin|JoinAll|NoFK] [--scale 2000] [--seed 7] [--full] [--dir artifacts]
//! hamlet-serve serve [--addr 127.0.0.1:8080] [--workers N] [--reactors N] [--max-conns N]
//!                    [--dir artifacts] [--load-mode heap|mmap]
//!                    [--coalesce-window MICROS] [--coalesce-max-rows N]
//! hamlet-serve probe [--addr 127.0.0.1:8080] [--idle 64] [--path /healthz]
//!                    [--body JSON] [--threshold-ms 2000]
//! hamlet-serve blast [--addr 127.0.0.1:8080] [--path /v1/predict] [--requests 64]
//!                    [--concurrency 16] --body-template JSON-with-{i}
//! hamlet-serve blast --conns 256 --duration 5 [--active 16] --body-template JSON
//! hamlet-serve artifact inspect <path>
//! hamlet-serve artifact convert <src> [--to v3|v2] [--dir DIR]
//! hamlet-serve artifact diff <a> <b>
//! hamlet-serve cascade build --tiers <cheap.bin,top.bin> [--target-p 0.95]
//! hamlet-serve datasets
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_serve::api::TrainRequest;
use hamlet_serve::artifact::{Format, LoadMode, ModelArtifact};
use hamlet_serve::http::ServerOptions;
use hamlet_serve::server::AppState;
use hamlet_serve::train::{train_and_register, DATASETS};

const USAGE: &str = "hamlet-serve — model training and batched HTTP serving

USAGE:
    hamlet-serve train --name <NAME> --dataset <DATASET> --spec <SPEC>
                       [--config <CONFIG>] [--scale <N>] [--seed <N>]
                       [--full] [--dir <DIR>]
    hamlet-serve serve [--addr <ADDR>] [--workers <N>] [--reactors <N>]
                       [--max-conns <N>] [--dir <DIR>] [--load-mode heap|mmap]
                       [--coalesce-window <MICROS>] [--coalesce-max-rows <N>]
                       [--demote-idle-secs <N>] [--canary-slice <PCT>]
                       [--guardrail-min-samples <N>] [--guardrail-agreement <P>]
                       [--guardrail-error-ratio <P>] [--guardrail-p99-ratio <X>]
                       [--drift-check-secs <N>] [--no-drift-freeze]
    hamlet-serve probe [--addr <ADDR>] [--idle <N>] [--path <PATH>]
                       [--body <JSON>] [--threshold-ms <MS>]
    hamlet-serve blast [--addr <ADDR>] [--path <PATH>] [--requests <N>]
                       [--concurrency <N>] --body-template <JSON>
                       [--summary-json <PATH|->]
    hamlet-serve blast --conns <N> --duration <SECS> [--active <N>]
                       [--addr <ADDR>] [--path <PATH>] --body-template <JSON>
                       [--summary-json <PATH|->]
    hamlet-serve blast --observe [--requests <N>] [--rate <REQ_PER_S>]
                       [--addr <ADDR>] --body-template <OBSERVE-JSON>
    hamlet-serve rollout <status|start|abort> [--addr <ADDR>]
                         [--candidate <KEY> | --refresh <NAME>] [--slice <PCT>]
    hamlet-serve artifact inspect <PATH>
    hamlet-serve artifact convert <SRC> [--to v3|v2] [--dir <DIR>]
                                  [--quantize i8|f16] [--sample-rows <N>]
    hamlet-serve artifact diff <A> <B>
    hamlet-serve cascade build --tiers <PATH,PATH[,PATH...]>
                               [--target-p <P>] [--calibrator platt|isotonic]
                               [--sample-rows <N>] [--name <NAME>] [--dir <DIR>]
    hamlet-serve datasets

SPECS:    TreeGini TreeInfoGain TreeGainRatio OneNN SvmLinear SvmQuadratic
          SvmRbf Ann NaiveBayesBfs LogRegL1
CONFIGS:  NoJoin (default) | JoinAll | NoFK
DATASETS: movies yelp walmart expedia lastfm books flights onexr
DEFAULTS: --dir artifacts, --addr 127.0.0.1:8080, --scale 2000, --seed 7,
          --workers = CPU count (request *executors*: idle connections no
          longer occupy a worker), --reactors = min(4, CPUs/4) event-loop
          shards (each with its own SO_REUSEPORT listener and epoll;
          HAMLET_REACTORS overrides), --max-conns 1024; --full uses the
          paper-fidelity grids; --load-mode heap (mmap borrows format-v3
          weights zero-copy from the mapped files); --coalesce-window 200
          microseconds (0 disables cross-request predict coalescing),
          --coalesce-max-rows 512 (a merged batch flushes at this size);
          --demote-idle-secs 0 (off): when set, promoted non-latest
          versions untouched for that long are auto-demoted back to lazy
          slots (telemetry last-hit driven; the latest version is never
          touched). /v1/stats and /metrics expose the telemetry.

ROLLOUT:  serve runs the safe-rollout plane: `rollout start` puts a held
          candidate into SHADOW (bare-name predict traffic is mirrored to
          it, responses discarded, agreement/latency scored against the
          incumbent), it graduates to CANARY (--canary-slice percent of
          bare-name traffic served for real, default 10), and it is
          auto-PROMOTED only once agreement ≥ --guardrail-agreement
          (default 0.98), canary panic-500 ratio ≤ --guardrail-error-ratio
          (default 0.02) and candidate p99 ≤ --guardrail-p99-ratio × the
          incumbent's (default 3.0) over --guardrail-min-samples mirrored
          rows and canary requests (default 200/50). Any tripped guardrail
          rolls the candidate back instantly (demote + audit trail).
          /v1/observe streams labeled production rows into a crash-safe
          buffer; every --drift-check-secs (default 5, 0 disables) the
          paper's avoid-join decision rule re-runs over it and freezes
          auto-promotion while the live data sits outside the safety
          envelope (--no-drift-freeze keeps promotion unfrozen). State
          survives restarts via the rollout journal next to the artifacts.

PROBE:    opens --idle parked keep-alive connections, then times one
          request on a FRESH connection; fails if it errors or exceeds
          --threshold-ms. Smoke-checks that idle connections are free.

BLAST:    fires --requests POSTs at --path from --concurrency parallel
          connections. --body-template substitutes {n} with the request
          index and {i} with index mod 2 (in-domain 0/1 codes). Prints one
          `index<TAB>labels` line per request to stdout (sorted, stable
          across runs) so outputs can be diffed between server configs —
          e.g. coalescing on vs. off must be byte-identical. A latency
          p50/p90/p99 summary goes to stderr; --summary-json writes the
          same numbers as JSON to a file (`-` appends them to stdout).
          When responses carry cascade tier provenance, the summary gains
          `tier_rows` (rows answered per tier) and --expect-tiers N fails
          the run unless at least N distinct tiers actually answered —
          the CI probe's proof that short-circuiting really happened.

          With --conns/--duration blast instead runs SUSTAINED: it opens
          --conns keep-alive connections one by one, timing how long the
          server takes to adopt and answer a first trivial request on each
          (the accept-latency proxy), then drives requests from --active
          of them (default min(16, conns)) for --duration seconds while
          the rest sit parked. Reports accept p50/p99 alongside request
          p50/p90/p99 and req/s; --summary-json gains accept_p50_ms /
          accept_p99_ms. No per-request stdout lines in this mode.

ARTIFACT: inspect prints a file's format, sections, weight encoding and
          header without loading the model (quantized artifacts also list
          per-tensor encodings, byte sizes and scales); convert rewrites
          between v2 (json) and v3 (binary) reporting the size ratio.
          convert --quantize i8|f16 additionally rewrites the weight
          tensors (per-tensor symmetric i8, or IEEE half precision) into a
          NEW artifact named `<name>-<enc>` and reports the size ratio
          plus a prediction-agreement estimate against the source model on
          --sample-rows (default 512) deterministic in-domain rows; diff
          reports added/removed features, cardinality changes and
          label-set deltas between two artifact versions (either side may
          be v1/v2 json or v3 binary).

CASCADE:  build bundles existing artifacts (comma-separated, cheapest
          first, authoritative top tier last; all must share one feature
          contract) into a single tiered-cascade artifact. Each front
          tier's raw margin is calibrated (--calibrator platt|isotonic,
          default platt) against *agreement with the top tier* on
          --sample-rows (default 2048) deterministic in-domain rows — no
          ground-truth labels needed — and its short-circuit threshold is
          picked as the loosest cut whose kept rows still agree with the
          top tier at rate ≥ --target-p (default 0.95). Writes a v3
          artifact named --name (default `<top>-casc`) and prints a JSON
          report: per-tier thresholds, whole-cascade agreement with the
          top tier, escalation ratio, rows answered per tier, and a
          single-threaded speedup estimate over the top tier alone.

KERNELS:  inference uses runtime-dispatched SIMD kernels (AVX2, then
          SSE2, else scalar; `/v1/stats` reports the chosen tier). Set
          HAMLET_FORCE_SCALAR=1 to pin the bit-exact scalar reference.
";

/// Splits CLI args into positional operands and `--flag value` pairs.
fn parse_args(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            positional.push(a.clone());
            i += 1;
            continue;
        };
        if matches!(name, "full" | "observe" | "no-drift-freeze") {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
    }
    Ok((positional, flags))
}

/// Parses a serde-named enum value (e.g. `TreeGini`) via its JSON form.
fn parse_enum<T: serde::Deserialize>(what: &str, value: &str) -> Result<T, String> {
    serde_json::from_str(&format!("\"{value}\""))
        .map_err(|_| format!("unknown {what} `{value}` (see --help)"))
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("name").ok_or("--name is required")?.clone();
    let dataset = flags.get("dataset").ok_or("--dataset is required")?.clone();
    let spec: ModelSpec = parse_enum("spec", flags.get("spec").ok_or("--spec is required")?)?;
    let config: Option<FeatureConfig> = flags
        .get("config")
        .map(|c| parse_enum("config", c))
        .transpose()?;
    let scale = flags
        .get("scale")
        .map(|s| s.parse().map_err(|_| format!("bad --scale `{s}`")))
        .transpose()?;
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?;
    let dir = PathBuf::from(flags.get("dir").map(String::as_str).unwrap_or("artifacts"));

    // No warm-load: version allocation reads versions from artifact
    // filenames, so existing models need not be deserialized to train.
    let registry = hamlet_serve::registry::ModelRegistry::new();
    let req = TrainRequest {
        name,
        dataset,
        spec,
        config,
        scale,
        seed,
        full_budget: flags.get("full").map(|_| true),
    };
    eprintln!(
        "training {} on `{}` ({})...",
        req.spec.name(),
        req.dataset,
        req.config.clone().unwrap_or(FeatureConfig::NoJoin).name()
    );
    let resp = train_and_register(&registry, &dir, &req).map_err(|e| e.to_string())?;
    println!(
        "{}",
        serde_json::to_string_pretty(&resp).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn parse_load_mode(flags: &HashMap<String, String>) -> Result<LoadMode, String> {
    match flags.get("load-mode").map(String::as_str) {
        None | Some("heap") => Ok(LoadMode::Heap),
        Some("mmap") => Ok(LoadMode::Mmap),
        Some(other) => Err(format!("bad --load-mode `{other}` (heap|mmap)")),
    }
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");
    let workers = match flags.get("workers") {
        Some(w) => w.parse().map_err(|_| format!("bad --workers `{w}`"))?,
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    };
    let max_conns = match flags.get("max-conns") {
        Some(m) => m.parse().map_err(|_| format!("bad --max-conns `{m}`"))?,
        None => hamlet_serve::http::MAX_CONNS,
    };
    let reactors = match flags.get("reactors") {
        Some(r) => {
            let n: usize = r.parse().map_err(|_| format!("bad --reactors `{r}`"))?;
            n.max(1)
        }
        None => ServerOptions::default().reactors,
    };
    let dir = PathBuf::from(flags.get("dir").map(String::as_str).unwrap_or("artifacts"));
    let load_mode = parse_load_mode(flags)?;
    let mut coalesce = hamlet_serve::coalesce::CoalesceConfig::default();
    if let Some(w) = flags.get("coalesce-window") {
        let micros: u64 = w
            .parse()
            .map_err(|_| format!("bad --coalesce-window `{w}` (microseconds)"))?;
        coalesce.window = std::time::Duration::from_micros(micros);
    }
    if let Some(m) = flags.get("coalesce-max-rows") {
        coalesce.max_rows = m
            .parse()
            .map_err(|_| format!("bad --coalesce-max-rows `{m}`"))?;
    }

    let demote_idle_secs: u64 = match flags.get("demote-idle-secs") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad --demote-idle-secs `{s}` (seconds, 0 disables)"))?,
        None => 0,
    };

    let mut guardrails = hamlet_serve::rollout::GuardrailConfig::default();
    if let Some(s) = flags.get("canary-slice") {
        let slice: u8 = s.parse().map_err(|_| format!("bad --canary-slice `{s}`"))?;
        if slice == 0 || slice > 100 {
            return Err(format!("--canary-slice must be in 1..=100, got {slice}"));
        }
        guardrails.canary_slice = slice;
    }
    if let Some(s) = flags.get("guardrail-min-samples") {
        let n: u64 = s
            .parse()
            .map_err(|_| format!("bad --guardrail-min-samples `{s}`"))?;
        guardrails.min_shadow_rows = n;
        guardrails.min_canary_requests = n;
    }
    if let Some(s) = flags.get("guardrail-agreement") {
        guardrails.min_agreement = s
            .parse()
            .map_err(|_| format!("bad --guardrail-agreement `{s}`"))?;
    }
    if let Some(s) = flags.get("guardrail-error-ratio") {
        guardrails.max_error_ratio = s
            .parse()
            .map_err(|_| format!("bad --guardrail-error-ratio `{s}`"))?;
    }
    if let Some(s) = flags.get("guardrail-p99-ratio") {
        guardrails.max_p99_ratio = s
            .parse()
            .map_err(|_| format!("bad --guardrail-p99-ratio `{s}`"))?;
    }
    if flags.contains_key("no-drift-freeze") {
        guardrails.drift_freeze = false;
    }
    let drift_check_secs: u64 = match flags.get("drift-check-secs") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad --drift-check-secs `{s}` (seconds, 0 disables)"))?,
        None => 5,
    };

    let (state, loaded) = AppState::warm_full(
        dir.clone(),
        hamlet_serve::server::WarmOptions {
            executors: workers,
            load_mode,
            coalesce,
            guardrails,
        },
    )
    .map_err(|e| e.to_string())?;
    let mut opts = ServerOptions {
        workers,
        max_conns,
        reactors,
        ..ServerOptions::default()
    };
    {
        // One ~1 Hz ops tick drives all three background loops: rollout
        // guardrail evaluation every pass, the drift advisor at its own
        // cadence, and idle-version demotion when enabled.
        let idle = std::time::Duration::from_secs(demote_idle_secs);
        let tick_state = std::sync::Arc::clone(&state);
        let passes = std::sync::atomic::AtomicU64::new(0);
        opts.on_tick = Some(hamlet_serve::http::AppTick {
            every: std::time::Duration::from_secs(1),
            run: std::sync::Arc::new(move || {
                let n = passes.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                tick_state
                    .rollout
                    .tick(&tick_state.registry, &tick_state.telemetry);
                if drift_check_secs > 0 && n.is_multiple_of(drift_check_secs) {
                    tick_state
                        .rollout
                        .drift_check(&tick_state.registry, &tick_state.telemetry);
                }
                if demote_idle_secs > 0 {
                    for key in hamlet_serve::server::demote_idle(&tick_state, idle) {
                        eprintln!("auto-demoted idle version {key}");
                    }
                }
            }),
        });
    }
    let server = hamlet_serve::server::serve_with(addr, opts, state).map_err(|e| e.to_string())?;
    eprintln!(
        "hamlet-serve listening on http://{} ({} executor(s), {} reactor(s), {} max conns, \
         {} model(s) warm from {}, {load_mode:?} load mode, coalesce window {:?} / {} rows, \
         auto-demote {})",
        server.addr(),
        workers,
        reactors,
        max_conns,
        loaded,
        dir.display(),
        coalesce.window,
        coalesce.max_rows,
        if demote_idle_secs > 0 {
            format!("after {demote_idle_secs}s idle")
        } else {
            "off".into()
        },
    );
    // Parked on a condvar (zero CPU) until a stop signal; process signals
    // (Ctrl-C) terminate the process directly.
    server.block_until_shutdown();
    Ok(())
}

/// `probe`: open N idle keep-alive connections, then verify a fresh
/// connection still answers promptly — the reactor's "idle connections are
/// free" property as a CI-runnable smoke check.
fn cmd_probe(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");
    let idle: usize = match flags.get("idle") {
        Some(n) => n.parse().map_err(|_| format!("bad --idle `{n}`"))?,
        None => 64,
    };
    let path = flags.get("path").map(String::as_str).unwrap_or("/healthz");
    let body = flags.get("body").map(String::as_str).unwrap_or("");
    let threshold_ms: f64 = match flags.get("threshold-ms") {
        Some(t) => t.parse().map_err(|_| format!("bad --threshold-ms `{t}`"))?,
        None => 2000.0,
    };
    // Blocking reads must not outlive the failure budget: if the server
    // wedges (the exact regression this probe exists to catch), the probe
    // has to exit nonzero promptly, not hang the CI job.
    let io_timeout = std::time::Duration::from_millis((threshold_ms.max(1000.0) * 2.0) as u64);

    // Park idle keep-alive connections. Each does one tiny request first so
    // it is a *bona fide* keep-alive connection, not just an unused socket.
    let mut parked = Vec::with_capacity(idle);
    for i in 0..idle {
        let mut s = TcpStream::connect(addr)
            .map_err(|e| format!("parking connection {i}: connect: {e}"))?;
        s.set_read_timeout(Some(io_timeout))
            .map_err(|e| format!("parking connection {i}: timeout: {e}"))?;
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: probe\r\n\r\n")
            .map_err(|e| format!("parking connection {i}: send: {e}"))?;
        read_one_response(&mut s).map_err(|e| format!("parking connection {i}: {e}"))?;
        parked.push(s);
    }

    // One timed request on a fresh connection.
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).map_err(|e| format!("fresh connect: {e}"))?;
    s.set_read_timeout(Some(io_timeout))
        .map_err(|e| format!("fresh timeout: {e}"))?;
    let request = if body.is_empty() {
        format!("GET {path} HTTP/1.1\r\nHost: probe\r\nConnection: close\r\n\r\n")
    } else {
        format!(
            "POST {path} HTTP/1.1\r\nHost: probe\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    s.write_all(request.as_bytes())
        .map_err(|e| format!("fresh send: {e}"))?;
    let (status, resp_body) = read_one_response(&mut s).map_err(|e| format!("fresh recv: {e}"))?;
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(parked);

    println!(
        "{{\"idle_connections\":{idle},\"path\":\"{path}\",\"status\":{status},\
         \"latency_ms\":{latency_ms:.3}}}"
    );
    if !(200..300).contains(&status) {
        return Err(format!("probe got HTTP {status}: {resp_body}"));
    }
    if latency_ms > threshold_ms {
        return Err(format!(
            "probe latency {latency_ms:.1} ms exceeds threshold {threshold_ms} ms \
             with {idle} idle connections parked"
        ));
    }
    Ok(())
}

/// `blast`: fire N POSTs from C parallel connections and print each
/// response's `labels` keyed by request index — deterministic output for
/// diffing server configurations (the CI coalescing probe runs this twice,
/// with coalescing on and off, and requires identical files).
fn cmd_blast(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080")
        .to_string();
    let path = flags
        .get("path")
        .map(String::as_str)
        .unwrap_or("/v1/predict")
        .to_string();
    let template = flags
        .get("body-template")
        .ok_or("--body-template is required (use {n} for the request index, {i} for index mod 2)")?
        .clone();
    if flags.contains_key("observe") {
        let path = if flags.contains_key("path") {
            path.as_str()
        } else {
            "/v1/observe"
        };
        return cmd_blast_observe(&addr, path, &template, flags);
    }
    if flags.contains_key("conns") || flags.contains_key("duration") {
        return cmd_blast_sustained(&addr, &path, &template, flags);
    }
    let requests: usize = match flags.get("requests") {
        Some(n) => n.parse().map_err(|_| format!("bad --requests `{n}`"))?,
        None => 64,
    };
    let concurrency: usize = match flags.get("concurrency") {
        Some(c) => c.parse().map_err(|_| format!("bad --concurrency `{c}`"))?,
        None => 16,
    }
    .clamp(1, requests.max(1));

    let expect_tiers: usize = match flags.get("expect-tiers") {
        Some(n) => n.parse().map_err(|_| format!("bad --expect-tiers `{n}`"))?,
        None => 0,
    };

    let started = Instant::now();
    type WorkerOut = (Vec<(usize, String)>, Vec<f64>, Vec<u64>);
    let (mut results, mut latencies, tier_rows): (Vec<(usize, String)>, Vec<f64>, Vec<u64>) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|tid| {
                    let addr = addr.clone();
                    let path = path.clone();
                    let template = template.clone();
                    scope.spawn(move || -> Result<WorkerOut, String> {
                        let mut stream = TcpStream::connect(&addr)
                            .map_err(|e| format!("worker {tid}: connect: {e}"))?;
                        stream
                            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                            .map_err(|e| format!("worker {tid}: timeout: {e}"))?;
                        let mut out = Vec::new();
                        let mut lats = Vec::new();
                        let mut tiers: Vec<u64> = Vec::new();
                        let mut served = 0usize;
                        for n in (tid..requests).step_by(concurrency) {
                            // Stay under the server's keep-alive request cap.
                            if served + 1 >= hamlet_serve::http::MAX_KEEPALIVE_REQUESTS {
                                stream = TcpStream::connect(&addr)
                                    .map_err(|e| format!("worker {tid}: reconnect: {e}"))?;
                                stream
                                    .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                                    .map_err(|e| format!("worker {tid}: reconnect timeout: {e}"))?;
                                served = 0;
                            }
                            served += 1;
                            let body = template
                                .replace("{n}", &n.to_string())
                                .replace("{i}", &(n % 2).to_string());
                            let request = format!(
                                "POST {path} HTTP/1.1\r\nHost: blast\r\n\
                                 Content-Type: application/json\r\nContent-Length: {}\r\n\r\n\
                                 {body}",
                                body.len()
                            );
                            let sent = Instant::now();
                            stream
                                .write_all(request.as_bytes())
                                .map_err(|e| format!("worker {tid} req {n}: send: {e}"))?;
                            let resp = hamlet_serve::http::read_response(&mut stream)
                                .map_err(|e| format!("worker {tid} req {n}: recv: {e}"))?;
                            lats.push(sent.elapsed().as_secs_f64() * 1e3);
                            if resp.status != 200 {
                                return Err(format!(
                                    "worker {tid} req {n}: HTTP {}: {}",
                                    resp.status,
                                    String::from_utf8_lossy(&resp.body)
                                ));
                            }
                            let body_text = String::from_utf8_lossy(&resp.body);
                            // Strip the latency field: only the labels must be
                            // comparable across configurations.
                            let labels = body_text
                                .split("\"labels\":")
                                .nth(1)
                                .and_then(|rest| rest.split(']').next())
                                .map(|l| format!("{l}]"))
                                .ok_or_else(|| {
                                    format!("worker {tid} req {n}: no labels in {body_text}")
                                })?;
                            out.push((n, labels));
                            // Cascade responses carry per-row tier
                            // provenance (`"tiers":[0,1,...]`; `null` on
                            // single-model artifacts) — tally rows per
                            // tier for the summary.
                            if let Some(list) = body_text
                                .split("\"tiers\":[")
                                .nth(1)
                                .and_then(|rest| rest.split(']').next())
                            {
                                for t in list.split(',').filter_map(|t| t.trim().parse().ok()) {
                                    let t: usize = t;
                                    if tiers.len() <= t {
                                        tiers.resize(t + 1, 0);
                                    }
                                    tiers[t] += 1;
                                }
                            }
                        }
                        Ok((out, lats, tiers))
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(requests);
            let mut lats = Vec::with_capacity(requests);
            let mut tiers: Vec<u64> = Vec::new();
            let mut errors = Vec::new();
            for h in handles {
                match h.join().expect("blast worker panicked") {
                    Ok((mut chunk, mut chunk_lats, chunk_tiers)) => {
                        all.append(&mut chunk);
                        lats.append(&mut chunk_lats);
                        if tiers.len() < chunk_tiers.len() {
                            tiers.resize(chunk_tiers.len(), 0);
                        }
                        for (acc, n) in tiers.iter_mut().zip(chunk_tiers) {
                            *acc += n;
                        }
                    }
                    Err(e) => errors.push(e),
                }
            }
            if let Some(e) = errors.into_iter().next() {
                return Err(e);
            }
            Ok((all, lats, tiers))
        })?;
    let elapsed = started.elapsed();
    results.sort_by_key(|(n, _)| *n);
    for (n, labels) in &results {
        println!("{n}\t{labels}");
    }
    // Client-observed per-request latency percentiles (nearest rank).
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let (p50, p90, p99) = (pct(0.5), pct(0.9), pct(0.99));
    let req_per_s = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "blast: {requests} requests over {concurrency} connections in {elapsed:?} \
         ({req_per_s:.0} req/s), latency p50 {p50:.3} ms / p90 {p90:.3} ms / p99 {p99:.3} ms"
    );
    if !tier_rows.is_empty() {
        eprintln!(
            "blast: cascade tier rows {tier_rows:?} ({} escalated past tier 0)",
            tier_rows.iter().skip(1).sum::<u64>()
        );
    }
    if expect_tiers > 0 {
        let distinct = tier_rows.iter().filter(|&&n| n > 0).count();
        if distinct < expect_tiers {
            return Err(format!(
                "--expect-tiers {expect_tiers}: only {distinct} tier(s) answered rows \
                 (histogram {tier_rows:?}); the cascade never split the workload"
            ));
        }
    }
    if let Some(dest) = flags.get("summary-json") {
        let tier_field = if tier_rows.is_empty() {
            String::new()
        } else {
            let counts: Vec<String> = tier_rows.iter().map(u64::to_string).collect();
            format!(",\"tier_rows\":[{}]", counts.join(","))
        };
        let summary = format!(
            "{{\"requests\":{requests},\"concurrency\":{concurrency},\
             \"elapsed_ms\":{:.3},\"req_per_s\":{req_per_s:.1},\
             \"p50_ms\":{p50:.3},\"p90_ms\":{p90:.3},\"p99_ms\":{p99:.3}{tier_field}}}",
            elapsed.as_secs_f64() * 1e3
        );
        if dest == "-" {
            // After the label lines, so diff-oriented consumers of stdout
            // can still strip it with `head -n -1`.
            println!("{summary}");
        } else {
            std::fs::write(dest, summary + "\n")
                .map_err(|e| format!("writing --summary-json {dest}: {e}"))?;
        }
    }
    Ok(())
}

/// Pulls the first unsigned-integer value of a `"name":N` JSON field out
/// of a response body (the same split-based extraction blast uses for
/// labels; good enough for the flat bodies this CLI consumes).
fn json_u64_field(text: &str, name: &str) -> Option<u64> {
    let rest = text.split(&format!("\"{name}\":")).nth(1)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// `blast --observe`: stream labeled rows into `/v1/observe` at a target
/// request rate from one keep-alive connection. The body template is an
/// [`ObserveRequest`](hamlet_serve::api::ObserveRequest) JSON with the
/// usual `{n}`/`{i}` substitutions, so CI and local runs can fabricate
/// deterministic in-domain labeled traffic.
fn cmd_blast_observe(
    addr: &str,
    path: &str,
    template: &str,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let requests: usize = match flags.get("requests") {
        Some(n) => n.parse().map_err(|_| format!("bad --requests `{n}`"))?,
        None => 64,
    };
    let rate: f64 = match flags.get("rate") {
        Some(r) => r
            .parse()
            .map_err(|_| format!("bad --rate `{r}` (requests per second, 0 = unpaced)"))?,
        None => 0.0,
    };
    let io_timeout = std::time::Duration::from_secs(30);
    let connect = || -> Result<TcpStream, String> {
        let s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        s.set_read_timeout(Some(io_timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        Ok(s)
    };
    let started = Instant::now();
    let mut stream = connect()?;
    let mut served = 0usize;
    let mut accepted_total = 0u64;
    let mut buffered_last = 0u64;
    for n in 0..requests {
        if rate > 0.0 {
            let due = started + std::time::Duration::from_secs_f64(n as f64 / rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        if served + 1 >= hamlet_serve::http::MAX_KEEPALIVE_REQUESTS {
            stream = connect()?;
            served = 0;
        }
        served += 1;
        let body = template
            .replace("{n}", &n.to_string())
            .replace("{i}", &(n % 2).to_string());
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: blast\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("req {n}: send: {e}"))?;
        let resp = hamlet_serve::http::read_response(&mut stream)
            .map_err(|e| format!("req {n}: recv: {e}"))?;
        let body_text = String::from_utf8_lossy(&resp.body);
        if resp.status != 200 {
            return Err(format!("req {n}: HTTP {}: {body_text}", resp.status));
        }
        accepted_total += json_u64_field(&body_text, "accepted")
            .ok_or_else(|| format!("req {n}: no `accepted` in {body_text}"))?;
        buffered_last = json_u64_field(&body_text, "buffered").unwrap_or(buffered_last);
    }
    let elapsed = started.elapsed();
    let req_per_s = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "blast observe: {requests} requests ({accepted_total} labeled rows) in {elapsed:?} \
         ({req_per_s:.0} req/s), {buffered_last} rows buffered server-side"
    );
    if let Some(dest) = flags.get("summary-json") {
        let summary = format!(
            "{{\"mode\":\"observe\",\"requests\":{requests},\"rows_accepted\":{accepted_total},\
             \"buffered\":{buffered_last},\"elapsed_ms\":{:.3},\"req_per_s\":{req_per_s:.1}}}",
            elapsed.as_secs_f64() * 1e3
        );
        if dest == "-" {
            println!("{summary}");
        } else {
            std::fs::write(dest, summary + "\n")
                .map_err(|e| format!("writing --summary-json {dest}: {e}"))?;
        }
    }
    Ok(())
}

/// `rollout status|start|abort`: thin HTTP client over the rollout plane's
/// admin endpoints, printing the server's JSON verbatim.
fn cmd_rollout(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");
    let slice_field = || -> Result<String, String> {
        match flags.get("slice") {
            Some(s) => {
                let slice: u8 = s.parse().map_err(|_| format!("bad --slice `{s}`"))?;
                Ok(format!(",\"slice\":{slice}"))
            }
            None => Ok(String::new()),
        }
    };
    let (method, path, body) = match positional.first().map(String::as_str) {
        Some("status") => ("GET", "/v1/rollout/status", String::new()),
        Some("start") => {
            let body = match (flags.get("candidate"), flags.get("refresh")) {
                (Some(key), None) => format!("{{\"candidate\":\"{key}\"{}}}", slice_field()?),
                (None, Some(name)) => format!("{{\"refresh\":\"{name}\"{}}}", slice_field()?),
                _ => {
                    return Err(
                        "rollout start needs exactly one of --candidate <KEY> (an already-\
                         registered version) or --refresh <NAME> (warm-start refit on the \
                         observe buffer)"
                            .into(),
                    )
                }
            };
            ("POST", "/v1/rollout/start", body)
        }
        Some("abort") => ("POST", "/v1/rollout/abort", String::new()),
        _ => {
            return Err("usage: rollout <status|start|abort> [--addr <ADDR>] \
                 [--candidate <KEY> | --refresh <NAME>] [--slice <PCT>]"
                .into())
        }
    };
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    let request = if body.is_empty() {
        format!("{method} {path} HTTP/1.1\r\nHost: cli\r\nConnection: close\r\n\r\n")
    } else {
        format!(
            "{method} {path} HTTP/1.1\r\nHost: cli\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    s.write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let (status, resp_body) = read_one_response(&mut s)?;
    println!("{resp_body}");
    if !(200..300).contains(&status) {
        return Err(format!("HTTP {status}"));
    }
    Ok(())
}

/// Nearest-rank percentile over an already-sorted latency vector.
fn pct_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `blast --conns/--duration`: sustained open-loop mode. Opens `--conns`
/// keep-alive connections serially, timing connect plus one /healthz round
/// trip per connection — how long the network plane takes to accept, adopt
/// and first service each socket (the accept-latency proxy; raw `connect`
/// completes from the kernel backlog before the reactor ever sees the fd,
/// so it alone measures nothing). Then drives requests from `--active` of
/// them for `--duration` seconds while the remainder sit parked as idle
/// keep-alive load on the reactors.
fn cmd_blast_sustained(
    addr: &str,
    path: &str,
    template: &str,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let conns: usize = match flags.get("conns") {
        Some(n) => n.parse().map_err(|_| format!("bad --conns `{n}`"))?,
        None => 256,
    }
    .max(1);
    let duration_s: f64 = match flags.get("duration") {
        Some(d) => d
            .parse()
            .map_err(|_| format!("bad --duration `{d}` (seconds)"))?,
        None => 5.0,
    };
    if duration_s <= 0.0 {
        return Err(format!("--duration must be positive, got {duration_s}"));
    }
    let active: usize = match flags.get("active") {
        Some(a) => a.parse().map_err(|_| format!("bad --active `{a}`"))?,
        None => 16,
    }
    .clamp(1, conns);
    let io_timeout = std::time::Duration::from_secs(30);

    // Phase 1: open every connection, timing until its first (trivial)
    // response arrives.
    let mut accept_ms = Vec::with_capacity(conns);
    let mut sockets = Vec::with_capacity(conns);
    for i in 0..conns {
        let t = Instant::now();
        let mut s = TcpStream::connect(addr).map_err(|e| format!("conn {i}: connect: {e}"))?;
        s.set_read_timeout(Some(io_timeout))
            .map_err(|e| format!("conn {i}: timeout: {e}"))?;
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: blast\r\n\r\n")
            .map_err(|e| format!("conn {i}: send: {e}"))?;
        read_one_response(&mut s).map_err(|e| format!("conn {i}: {e}"))?;
        accept_ms.push(t.elapsed().as_secs_f64() * 1e3);
        sockets.push(s);
    }

    // Phase 2: the active subset drives requests until the deadline; the
    // parked majority stays open, exercising "idle connections are free".
    let deadline = Instant::now() + std::time::Duration::from_secs_f64(duration_s);
    let started = Instant::now();
    let drivers: Vec<TcpStream> = sockets.drain(..active).collect();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = drivers
            .into_iter()
            .enumerate()
            .map(|(tid, mut stream)| {
                scope.spawn(move || -> Result<Vec<f64>, String> {
                    let mut lats = Vec::new();
                    // The accept-phase /healthz already used one request.
                    let mut served = 1usize;
                    let mut n = tid;
                    while Instant::now() < deadline {
                        if served + 1 >= hamlet_serve::http::MAX_KEEPALIVE_REQUESTS {
                            stream = TcpStream::connect(addr)
                                .map_err(|e| format!("driver {tid}: reconnect: {e}"))?;
                            stream
                                .set_read_timeout(Some(io_timeout))
                                .map_err(|e| format!("driver {tid}: reconnect timeout: {e}"))?;
                            served = 0;
                        }
                        served += 1;
                        let body = template
                            .replace("{n}", &n.to_string())
                            .replace("{i}", &(n % 2).to_string());
                        let request = format!(
                            "POST {path} HTTP/1.1\r\nHost: blast\r\n\
                             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n\
                             {body}",
                            body.len()
                        );
                        let sent = Instant::now();
                        stream
                            .write_all(request.as_bytes())
                            .map_err(|e| format!("driver {tid} req {n}: send: {e}"))?;
                        let resp = hamlet_serve::http::read_response(&mut stream)
                            .map_err(|e| format!("driver {tid} req {n}: recv: {e}"))?;
                        if resp.status != 200 {
                            return Err(format!(
                                "driver {tid} req {n}: HTTP {}: {}",
                                resp.status,
                                String::from_utf8_lossy(&resp.body)
                            ));
                        }
                        lats.push(sent.elapsed().as_secs_f64() * 1e3);
                        n += active;
                    }
                    Ok(lats)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut errors = Vec::new();
        for h in handles {
            match h.join().expect("blast driver panicked") {
                Ok(mut chunk) => all.append(&mut chunk),
                Err(e) => errors.push(e),
            }
        }
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        Ok(all)
    })?;
    let elapsed = started.elapsed();
    drop(sockets);

    accept_ms.sort_by(|a, b| a.total_cmp(b));
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len();
    let req_per_s = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    let (ap50, ap99) = (pct_sorted(&accept_ms, 0.5), pct_sorted(&accept_ms, 0.99));
    let (p50, p90, p99) = (
        pct_sorted(&latencies, 0.5),
        pct_sorted(&latencies, 0.9),
        pct_sorted(&latencies, 0.99),
    );
    eprintln!(
        "blast sustained: {conns} conns ({active} active) for {:.1}s: {requests} requests \
         ({req_per_s:.0} req/s), accept p50 {ap50:.3} ms / p99 {ap99:.3} ms, \
         latency p50 {p50:.3} ms / p90 {p90:.3} ms / p99 {p99:.3} ms",
        elapsed.as_secs_f64()
    );
    if let Some(dest) = flags.get("summary-json") {
        let summary = format!(
            "{{\"mode\":\"sustained\",\"conns\":{conns},\"active\":{active},\
             \"duration_s\":{:.3},\"requests\":{requests},\"req_per_s\":{req_per_s:.1},\
             \"accept_p50_ms\":{ap50:.3},\"accept_p99_ms\":{ap99:.3},\
             \"p50_ms\":{p50:.3},\"p90_ms\":{p90:.3},\"p99_ms\":{p99:.3}}}",
            elapsed.as_secs_f64()
        );
        if dest == "-" {
            println!("{summary}");
        } else {
            std::fs::write(dest, summary + "\n")
                .map_err(|e| format!("writing --summary-json {dest}: {e}"))?;
        }
    }
    Ok(())
}

/// `artifact inspect|convert|diff`: offline artifact tooling.
fn cmd_artifact(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    match positional.first().map(String::as_str) {
        Some("inspect") => {
            let [path] = &positional[1..] else {
                return Err("usage: artifact inspect <PATH>".into());
            };
            artifact_inspect(Path::new(path))
        }
        Some("convert") => {
            let [src] = &positional[1..] else {
                return Err("usage: artifact convert <SRC> [--to v3|v2] [--dir <DIR>]".into());
            };
            artifact_convert(Path::new(src), flags)
        }
        Some("diff") => {
            let [a, b] = &positional[1..] else {
                return Err("usage: artifact diff <A> <B>".into());
            };
            let load = |p: &str| {
                ModelArtifact::load(Path::new(p)).map_err(|e| format!("loading {p}: {e}"))
            };
            let d = hamlet_serve::diff::diff_artifacts(&load(a)?, &load(b)?);
            println!(
                "{}",
                serde_json::to_string_pretty(&d).map_err(|e| e.to_string())?
            );
            if !d.contract_compatible() {
                eprintln!(
                    "note: contracts are NOT request-compatible; clients of `{}` \
                     cannot blindly switch to `{}`",
                    d.a, d.b
                );
            }
            Ok(())
        }
        _ => Err("usage: artifact <inspect|convert|diff> ...".into()),
    }
}

/// Prints an artifact's identity and physical layout without loading the
/// model payload (v3: container header + META section only).
fn artifact_inspect(path: &Path) -> Result<(), String> {
    use serde::{Number, Value};
    let head = ModelArtifact::load_head(path).map_err(|e| e.to_string())?;
    let file_len = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    let mut out = vec![
        ("path".into(), Value::Str(path.display().to_string())),
        ("format".into(), Value::Str(head.format.to_string())),
        ("file_bytes".into(), Value::Num(Number::UInt(file_len))),
        ("key".into(), Value::Str(head.key())),
        ("family".into(), Value::Str(head.family.clone())),
        ("encoding".into(), Value::Str(head.encoding.clone())),
        ("config".into(), Value::Str(head.config.clone())),
        (
            "n_features".into(),
            Value::Num(Number::UInt(head.n_features as u64)),
        ),
        (
            "test_accuracy".into(),
            Value::Num(Number::Float(head.test_accuracy)),
        ),
        ("dataset".into(), Value::Str(head.dataset.clone())),
        (
            "schema_fingerprint".into(),
            Value::Num(Number::UInt(head.schema_fingerprint)),
        ),
    ];
    if head.format == Format::V3 {
        // Physical layout: section table straight from the header.
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        let entries = hamlet_serve::container::parse_sections(&bytes).map_err(|e| e.to_string())?;
        let sections = entries
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("tag".into(), Value::Str(s.tag_str())),
                    ("offset".into(), Value::Num(Number::UInt(s.offset as u64))),
                    ("bytes".into(), Value::Num(Number::UInt(s.len as u64))),
                ])
            })
            .collect();
        out.push(("sections".into(), Value::Arr(sections)));
        // Quantized payloads carry a JSON descriptor section: per-tensor
        // encoding, byte size, and (for i8) the symmetric scale.
        if let Ok(entry) =
            hamlet_serve::container::find(&entries, hamlet_serve::container::SEC_QNTS)
        {
            let qnts = &bytes[entry.offset..entry.offset + entry.len];
            let desc: Value = serde_json::from_slice(qnts)
                .map_err(|e| format!("QNTS section is not valid JSON: {e}"))?;
            out.push(("quantization".into(), desc));
        }
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&Value::Obj(out)).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Rewrites an artifact between formats, reporting both sizes.
fn artifact_convert(src: &Path, flags: &HashMap<String, String>) -> Result<(), String> {
    let to = match flags.get("to").map(String::as_str) {
        None | Some("v3") => Format::V3,
        Some("v2") => Format::V2,
        Some(other) => return Err(format!("bad --to `{other}` (v3|v2)")),
    };
    let out_dir = flags
        .get("dir")
        .map(PathBuf::from)
        .or_else(|| src.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let artifact =
        ModelArtifact::load(src).map_err(|e| format!("loading {}: {e}", src.display()))?;
    if let Some(spec) = flags.get("quantize") {
        if flags.get("to").map(String::as_str) == Some("v2") {
            return Err("--quantize writes v3 binary artifacts; drop --to v2".into());
        }
        let enc = hamlet_ml::quant::QuantEncoding::parse(spec)
            .ok_or_else(|| format!("bad --quantize `{spec}` (i8|f16)"))?;
        return artifact_quantize(src, &artifact, enc, &out_dir, flags);
    }
    // Refuse in-place rewrites *before* touching the filesystem, comparing
    // resolved paths so `./artifacts/x` and `artifacts/x` don't sneak past.
    let planned = artifact.path_in_format(&out_dir, to);
    let resolved_src = src.canonicalize().map_err(|e| e.to_string())?;
    let same_file = match planned.canonicalize() {
        Ok(resolved_dst) => resolved_dst == resolved_src,
        // Destination doesn't exist yet — cannot be the source.
        Err(_) => false,
    };
    if same_file {
        return Err(format!(
            "refusing to overwrite {} with itself; pass --dir or --to",
            src.display()
        ));
    }
    let dst = artifact
        .save_format(&out_dir, to)
        .map_err(|e| e.to_string())?;
    let src_len = std::fs::metadata(src).map_err(|e| e.to_string())?.len();
    let dst_len = std::fs::metadata(&dst).map_err(|e| e.to_string())?.len();
    println!(
        "{{\"src\":\"{}\",\"src_bytes\":{src_len},\"dst\":\"{}\",\"dst_bytes\":{dst_len},\
         \"ratio\":{:.2}}}",
        src.display(),
        dst.display(),
        src_len as f64 / dst_len.max(1) as f64
    );
    Ok(())
}

/// `convert --quantize i8|f16`: rewrite the weight tensors into a NEW v3
/// artifact named `<name>-<enc>` (same version) and report the size ratio
/// plus a prediction-agreement estimate on deterministic in-domain rows.
fn artifact_quantize(
    src: &Path,
    artifact: &ModelArtifact,
    enc: hamlet_ml::quant::QuantEncoding,
    out_dir: &Path,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let sample_rows: usize = match flags.get("sample-rows") {
        Some(n) => n.parse().map_err(|_| format!("bad --sample-rows `{n}`"))?,
        None => 512,
    };
    let mut quantized = artifact.clone();
    quantized.model = artifact
        .model
        .quantize(enc)
        .map_err(|e| format!("quantizing {}: {e}", artifact.key()))?;
    // A distinct name, never an in-place downgrade: the f32 original stays
    // servable next to its quantized sibling.
    quantized.name = format!("{}-{}", artifact.name, enc.name());

    // Agreement estimate: a fixed-seed LCG draws in-domain codes from the
    // contract cardinalities, so the report is reproducible run to run.
    let cards: Vec<u32> = artifact.features().iter().map(|f| f.cardinality).collect();
    let d = cards.len();
    let agreement = if d == 0 || sample_rows == 0 {
        1.0
    } else {
        let mut state = 0x243F6A88_85A308D3u64;
        let mut rows = Vec::with_capacity(sample_rows * d);
        for _ in 0..sample_rows {
            for &card in &cards {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rows.push(((state >> 33) % u64::from(card.max(1))) as u32);
            }
        }
        let base = artifact.model.predict_batch(&rows, d);
        let quant = quantized.model.predict_batch(&rows, d);
        let same = base.iter().zip(&quant).filter(|(a, b)| a == b).count();
        same as f64 / base.len() as f64
    };

    let dst = quantized
        .save_format(out_dir, Format::V3)
        .map_err(|e| e.to_string())?;
    let src_len = std::fs::metadata(src).map_err(|e| e.to_string())?.len();
    let dst_len = std::fs::metadata(&dst).map_err(|e| e.to_string())?.len();
    println!(
        "{{\"src\":\"{}\",\"src_bytes\":{src_len},\"dst\":\"{}\",\"dst_bytes\":{dst_len},\
         \"ratio\":{:.2},\"encoding\":\"{}\",\"sample_rows\":{sample_rows},\
         \"agreement\":{agreement:.4}}}",
        src.display(),
        dst.display(),
        src_len as f64 / dst_len.max(1) as f64,
        enc.name()
    );
    Ok(())
}

/// `cascade build`: bundle existing artifacts into a tiered cascade.
fn cmd_cascade(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    match positional.first().map(String::as_str) {
        Some("build") => cascade_build(flags),
        _ => Err(
            "usage: cascade build --tiers <PATH,PATH[,...]> [--target-p <P>] \
             [--calibrator platt|isotonic] [--sample-rows <N>] [--name <NAME>] [--dir <DIR>]"
                .into(),
        ),
    }
}

/// Deterministic in-domain sample rows: a fixed-seed LCG drawing codes
/// from the contract cardinalities, identical run to run (the same
/// generator the quantization agreement estimate uses).
fn sample_in_domain_rows(cards: &[u32], n: usize) -> Vec<u32> {
    let mut state = 0x243F6A88_85A308D3u64;
    let mut rows = Vec::with_capacity(n * cards.len());
    for _ in 0..n {
        for &card in cards {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rows.push(((state >> 33) % u64::from(card.max(1))) as u32);
        }
    }
    rows
}

fn cascade_build(flags: &HashMap<String, String>) -> Result<(), String> {
    use hamlet_ml::any::AnyClassifier;
    use hamlet_ml::cascade::{pick_threshold, Calibrator, CascadeModel, CascadeTier};

    let tier_paths: Vec<PathBuf> = flags
        .get("tiers")
        .ok_or("--tiers is required (comma-separated artifact paths, cheapest first, top last)")?
        .split(',')
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
        .collect();
    if tier_paths.len() < 2 {
        return Err(
            "--tiers needs at least two artifact paths (cheap front tier, top tier)".into(),
        );
    }
    let target_p: f64 = match flags.get("target-p") {
        Some(p) => p.parse().map_err(|_| format!("bad --target-p `{p}`"))?,
        None => 0.95,
    };
    if !(0.0..=1.0).contains(&target_p) {
        return Err(format!("--target-p must be in [0, 1], got {target_p}"));
    }
    let sample_rows: usize = match flags.get("sample-rows") {
        Some(n) => n.parse().map_err(|_| format!("bad --sample-rows `{n}`"))?,
        None => 2048,
    };
    if sample_rows == 0 {
        return Err("--sample-rows must be positive: calibration needs data".into());
    }
    let isotonic = match flags.get("calibrator").map(String::as_str) {
        None | Some("platt") => false,
        Some("isotonic") => true,
        Some(other) => return Err(format!("bad --calibrator `{other}` (platt|isotonic)")),
    };

    let artifacts: Vec<ModelArtifact> = tier_paths
        .iter()
        .map(|p| ModelArtifact::load(p).map_err(|e| format!("loading {}: {e}", p.display())))
        .collect::<Result<_, _>>()?;
    // Every tier consumes the same rows, verbatim — enforce contract
    // identity up front rather than letting a mismatched tier misread
    // another tier's codes at serve time.
    let fp0 = artifacts[0].contract.fingerprint();
    for (path, art) in tier_paths.iter().zip(&artifacts).skip(1) {
        let fp = art.contract.fingerprint();
        if fp != fp0 {
            return Err(format!(
                "tier `{}` has contract fingerprint {fp:#018x} but `{}` has {fp0:#018x}; \
                 cascade tiers must share one feature contract (same features, \
                 cardinalities and dictionaries)",
                path.display(),
                tier_paths[0].display()
            ));
        }
    }

    let cards: Vec<u32> = artifacts[0]
        .features()
        .iter()
        .map(|f| f.cardinality)
        .collect();
    let d = cards.len();
    if d == 0 {
        return Err("tier artifacts have an empty feature contract".into());
    }
    let rows = sample_in_domain_rows(&cards, sample_rows);

    // Distillation targets: the authoritative top tier's own predictions.
    // Calibration asks "when does the cheap tier agree with the model it
    // fronts for?" — no ground-truth labels required.
    let top_artifact = artifacts.last().expect("len >= 2");
    let top_predictions = top_artifact.model.predict_batch(&rows, d);

    let mut tiers = Vec::with_capacity(artifacts.len());
    let mut thresholds = Vec::with_capacity(artifacts.len());
    for art in &artifacts[..artifacts.len() - 1] {
        let scores = art.model.score_batch(&rows, d);
        let agree: Vec<bool> = art
            .model
            .predict_batch(&rows, d)
            .iter()
            .zip(&top_predictions)
            .map(|(mine, top)| mine == top)
            .collect();
        let calibrator = if isotonic {
            Calibrator::fit_isotonic(&scores, &agree)
        } else {
            Calibrator::fit_platt(&scores, &agree)
        }
        .map_err(|e| format!("calibrating {}: {e}", art.key()))?;
        let conf_agree: Vec<(f64, bool)> = scores
            .iter()
            .map(|&s| calibrator.confidence(s))
            .zip(agree)
            .collect();
        let threshold = pick_threshold(&conf_agree, target_p);
        thresholds.push(threshold);
        tiers.push(CascadeTier {
            model: art.model.clone(),
            calibrator,
            threshold,
        });
    }
    // The top tier always answers whatever reaches it.
    thresholds.push(1.0);
    tiers.push(CascadeTier {
        model: top_artifact.model.clone(),
        calibrator: Calibrator::Platt { a: 0.0, b: 0.0 },
        threshold: 1.0,
    });
    let cascade = CascadeModel::new(tiers).map_err(|e| e.to_string())?;

    // Report numbers on the same sample: agreement with the top tier,
    // rows answered per tier, and a single-threaded latency comparison
    // (best of a few repetitions, so one cold pass can't skew it).
    let reps = 3;
    let top_ns = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(top_artifact.model.predict_batch(&rows, d));
            t.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(0);
    let tiered = cascade.predict_batch_tiered(&rows, d, 1, sample_rows.max(1));
    let cascade_ns = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(cascade.predict_batch_tiered(&rows, d, 1, sample_rows.max(1)));
            t.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(0);
    let agreement = tiered
        .labels
        .iter()
        .zip(&top_predictions)
        .filter(|(a, b)| a == b)
        .count() as f64
        / top_predictions.len().max(1) as f64;
    let hist = tiered.tier_histogram();
    let deepest = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
    let tier_rows = &hist[..=deepest];
    let escalated: u64 = tier_rows.iter().skip(1).sum();
    let escalation_ratio = escalated as f64 / tiered.labels.len().max(1) as f64;

    let out_dir = flags
        .get("dir")
        .map(PathBuf::from)
        .or_else(|| tier_paths[0].parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let mut out = top_artifact.clone();
    out.model = AnyClassifier::Cascade(cascade);
    out.name = flags
        .get("name")
        .cloned()
        .unwrap_or_else(|| format!("{}-casc", top_artifact.name));
    // Cascades need the v3 CASC descriptor section.
    let dst = out
        .save_format(&out_dir, Format::V3)
        .map_err(|e| e.to_string())?;
    let dst_len = std::fs::metadata(&dst).map_err(|e| e.to_string())?.len();

    let join_json = |xs: &[String]| xs.join(",");
    let tier_names: Vec<String> = tier_paths
        .iter()
        .map(|p| format!("\"{}\"", p.display()))
        .collect();
    let threshold_strs: Vec<String> = thresholds.iter().map(|t| format!("{t:.6}")).collect();
    let tier_row_strs: Vec<String> = tier_rows.iter().map(u64::to_string).collect();
    println!(
        "{{\"tiers\":[{}],\"dst\":\"{}\",\"dst_bytes\":{dst_len},\
         \"calibrator\":\"{}\",\"target_p\":{target_p},\"sample_rows\":{sample_rows},\
         \"thresholds\":[{}],\"agreement\":{agreement:.4},\
         \"escalation_ratio\":{escalation_ratio:.4},\"tier_rows\":[{}],\
         \"top_ms\":{:.3},\"cascade_ms\":{:.3},\"speedup\":{:.2}}}",
        join_json(&tier_names),
        dst.display(),
        if isotonic { "isotonic" } else { "platt" },
        join_json(&threshold_strs),
        join_json(&tier_row_strs),
        top_ns as f64 / 1e6,
        cascade_ns as f64 / 1e6,
        top_ns as f64 / cascade_ns.max(1) as f64,
    );
    Ok(())
}

/// Reads one HTTP response, returning (status, body text).
fn read_one_response(s: &mut TcpStream) -> Result<(u16, String), String> {
    let resp = hamlet_serve::http::read_response(s).map_err(|e| format!("recv: {e}"))?;
    Ok((resp.status, String::from_utf8_lossy(&resp.body).to_string()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(cmd, "-h" | "--help" | "help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (positional, flags) = match parse_args(&args[1..]) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !matches!(cmd, "artifact" | "cascade" | "rollout") && !positional.is_empty() {
        eprintln!("error: unexpected argument `{}`", positional[0]);
        return ExitCode::FAILURE;
    }
    let result = match cmd {
        "train" => cmd_train(&flags),
        "serve" => cmd_serve(&flags),
        "probe" => cmd_probe(&flags),
        "blast" => cmd_blast(&flags),
        "artifact" => cmd_artifact(&positional, &flags),
        "cascade" => cmd_cascade(&positional, &flags),
        "rollout" => cmd_rollout(&positional, &flags),
        "datasets" => {
            for d in DATASETS {
                println!("{d}");
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
