//! `hamlet-serve` CLI: train servable artifacts and run the HTTP server.
//!
//! ```bash
//! hamlet-serve train --name movies-tree --dataset movies --spec TreeGini \
//!     [--config NoJoin|JoinAll|NoFK] [--scale 2000] [--seed 7] [--full] [--dir artifacts]
//! hamlet-serve serve [--addr 127.0.0.1:8080] [--workers N] [--dir artifacts]
//! hamlet-serve datasets
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_serve::api::TrainRequest;
use hamlet_serve::server::AppState;
use hamlet_serve::train::{train_and_register, DATASETS};

const USAGE: &str = "hamlet-serve — model training and batched HTTP serving

USAGE:
    hamlet-serve train --name <NAME> --dataset <DATASET> --spec <SPEC>
                       [--config <CONFIG>] [--scale <N>] [--seed <N>]
                       [--full] [--dir <DIR>]
    hamlet-serve serve [--addr <ADDR>] [--workers <N>] [--dir <DIR>]
    hamlet-serve datasets

SPECS:    TreeGini TreeInfoGain TreeGainRatio OneNN SvmLinear SvmQuadratic
          SvmRbf Ann NaiveBayesBfs LogRegL1
CONFIGS:  NoJoin (default) | JoinAll | NoFK
DATASETS: movies yelp walmart expedia lastfm books flights onexr
DEFAULTS: --dir artifacts, --addr 127.0.0.1:8080, --workers = CPU count,
          --scale 2000, --seed 7; --full uses the paper-fidelity grids
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        if name == "full" {
            flags.insert("full".to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Parses a serde-named enum value (e.g. `TreeGini`) via its JSON form.
fn parse_enum<T: serde::Deserialize>(what: &str, value: &str) -> Result<T, String> {
    serde_json::from_str(&format!("\"{value}\""))
        .map_err(|_| format!("unknown {what} `{value}` (see --help)"))
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("name").ok_or("--name is required")?.clone();
    let dataset = flags.get("dataset").ok_or("--dataset is required")?.clone();
    let spec: ModelSpec = parse_enum("spec", flags.get("spec").ok_or("--spec is required")?)?;
    let config: Option<FeatureConfig> = flags
        .get("config")
        .map(|c| parse_enum("config", c))
        .transpose()?;
    let scale = flags
        .get("scale")
        .map(|s| s.parse().map_err(|_| format!("bad --scale `{s}`")))
        .transpose()?;
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?;
    let dir = PathBuf::from(flags.get("dir").map(String::as_str).unwrap_or("artifacts"));

    // No warm-load: version allocation reads versions from artifact
    // filenames, so existing models need not be deserialized to train.
    let registry = hamlet_serve::registry::ModelRegistry::new();
    let req = TrainRequest {
        name,
        dataset,
        spec,
        config,
        scale,
        seed,
        full_budget: flags.get("full").map(|_| true),
    };
    eprintln!(
        "training {} on `{}` ({})...",
        req.spec.name(),
        req.dataset,
        req.config.clone().unwrap_or(FeatureConfig::NoJoin).name()
    );
    let resp = train_and_register(&registry, &dir, &req).map_err(|e| e.to_string())?;
    println!(
        "{}",
        serde_json::to_string_pretty(&resp).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");
    let workers = match flags.get("workers") {
        Some(w) => w.parse().map_err(|_| format!("bad --workers `{w}`"))?,
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    };
    let dir = PathBuf::from(flags.get("dir").map(String::as_str).unwrap_or("artifacts"));

    let (state, loaded) = AppState::warm(dir.clone()).map_err(|e| e.to_string())?;
    let server = hamlet_serve::server::serve(addr, workers, state).map_err(|e| e.to_string())?;
    eprintln!(
        "hamlet-serve listening on http://{} ({} worker(s), {} model(s) warm from {})",
        server.addr(),
        workers,
        loaded,
        dir.display()
    );
    server.block_forever()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(cmd, "-h" | "--help" | "help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&args[1..]) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "train" => cmd_train(&flags),
        "serve" => cmd_serve(&flags),
        "datasets" => {
            for d in DATASETS {
                println!("{d}");
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
