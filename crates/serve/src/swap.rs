//! A hand-rolled, offline-safe `ArcSwap`-style cell: lock-free `Arc`
//! loads, mutex-serialized stores.
//!
//! The registry's bare-name predict hot path needs to resolve
//! `name → latest artifact` without ever touching a lock: under many small
//! concurrent requests, even an uncontended `RwLock` read acquisition
//! bounces a futex word between cores, and a single training request
//! taking the write lock would stall every predict behind it. No external
//! crates are available offline, so this is the classic **double-slot
//! refcounted swap**:
//!
//! - Two slots each hold an `Option<Arc<T>>` plus a reader count; an
//!   `active` index says which slot is current.
//! - **Readers** (`load`) increment the active slot's reader count, then
//!   re-check that the slot is *still* active. If yes, the slot's value
//!   cannot be rewritten while their count is held (writers drain the
//!   count first), so cloning the `Arc` is safe. If the active index moved
//!   underneath them, they back out and retry — at most once per
//!   concurrent store, so the path is lock-free: a reader is only ever
//!   delayed by actual writes, never by other readers.
//! - **Writers** (`store`) serialize on a mutex (stores are rare: one per
//!   train/demote), write the *inactive* slot after waiting for straggler
//!   readers to drain from it, then flip `active`. The value a reader
//!   holds is never freed out from under it — the old slot is only reused
//!   two stores later, after its reader count drained.
//!
//! Orderings are deliberately all `SeqCst`: the cell swaps once per model
//! registration, and the read side's two RMWs dominate either way; being
//! obviously correct beats shaving nanoseconds off `Acquire`/`Release`
//! reasoning here.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn new(value: Option<Arc<T>>) -> Self {
        Slot {
            readers: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }
}

/// A cell holding an `Option<Arc<T>>` with lock-free reads (see module
/// docs).
pub struct ArcSwapCell<T> {
    slots: [Slot<T>; 2],
    active: AtomicUsize,
    write: Mutex<()>,
}

// Safety: T behind Arc is shared across threads on load (needs Send+Sync);
// the interior UnsafeCell is only written by the mutex-holding writer after
// draining readers, and only read by readers pinning the slot.
unsafe impl<T: Send + Sync> Send for ArcSwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwapCell<T> {}

impl<T> ArcSwapCell<T> {
    /// A cell holding `value`.
    pub fn new(value: Option<Arc<T>>) -> Self {
        ArcSwapCell {
            slots: [Slot::new(value), Slot::new(None)],
            active: AtomicUsize::new(0),
            write: Mutex::new(()),
        }
    }

    /// Clones the current value without taking any lock. Retries only when
    /// a concurrent `store` flips the active slot mid-read.
    pub fn load(&self) -> Option<Arc<T>> {
        loop {
            let i = self.active.load(Ordering::SeqCst);
            let slot = &self.slots[i];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == i {
                // Pinned: a writer targeting this slot waits for our count
                // to drain before touching the value, and the value it
                // *last* wrote here happens-before the flip we observed.
                let v = unsafe { (*slot.value.get()).clone() };
                slot.readers.fetch_sub(1, Ordering::SeqCst);
                return v;
            }
            // The slot was retired between our index read and our pin; the
            // writer may be about to reuse it. Back out and reread.
            slot.readers.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes a new value. Serialized against other stores; readers are
    /// never blocked (stragglers still reading the slot being reused are
    /// waited out before it is overwritten).
    pub fn store(&self, value: Option<Arc<T>>) {
        let _writer = self.write.lock().expect("ArcSwapCell writer poisoned");
        let cur = self.active.load(Ordering::SeqCst);
        let next = 1 - cur;
        // Readers of `next` are stragglers from before the previous flip;
        // each is at most one recheck away from backing out.
        while self.slots[next].readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // Safe: we hold the writer mutex, the slot is inactive, and no
        // reader pins it (checked above; new readers re-check `active`
        // after pinning and back out of an inactive slot).
        unsafe {
            *self.slots[next].value.get() = value;
        }
        self.active.store(next, Ordering::SeqCst);
    }
}

impl<T> std::fmt::Debug for ArcSwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwapCell")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let cell: ArcSwapCell<u64> = ArcSwapCell::new(None);
        assert!(cell.load().is_none());
        cell.store(Some(Arc::new(7)));
        assert_eq!(*cell.load().unwrap(), 7);
        cell.store(Some(Arc::new(8)));
        assert_eq!(*cell.load().unwrap(), 8);
        cell.store(None);
        assert!(cell.load().is_none());
    }

    #[test]
    fn old_values_survive_while_held() {
        let cell = ArcSwapCell::new(Some(Arc::new(vec![1u8; 64])));
        let held = cell.load().unwrap();
        // Two stores reuse both slots; the held Arc must stay valid.
        cell.store(Some(Arc::new(vec![2u8; 64])));
        cell.store(Some(Arc::new(vec![3u8; 64])));
        assert_eq!(held[0], 1);
        assert_eq!(cell.load().unwrap()[0], 3);
    }

    /// Readers hammer `load` while a writer publishes a monotonically
    /// increasing sequence: every observed value must be valid, and each
    /// reader's observations must be monotone (a flip never resurfaces an
    /// older value).
    #[test]
    fn contended_loads_are_monotone_and_never_tear() {
        let cell = Arc::new(ArcSwapCell::new(Some(Arc::new(0u64))));
        let writer_done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let writer_done = Arc::clone(&writer_done);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while writer_done.load(Ordering::Relaxed) == 0 {
                        let v = *cell.load().expect("value always present");
                        assert!(v >= last, "went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            scope.spawn(move || {
                for v in 1..=2000u64 {
                    cell.store(Some(Arc::new(v)));
                }
                writer_done.store(1, Ordering::Relaxed);
            });
        });
    }
}
