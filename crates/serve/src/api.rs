//! Request/response shapes of the HTTP API (all JSON).

use hamlet_core::advisor::{AdvisorReport, DimStats};
use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::{ModelFamily, ModelSpec};

use crate::registry::ModelSummary;

/// `POST /v1/predict` — a batch of categorical rows for one model.
/// Exactly one of `rows` (pre-encoded codes) and `rows_raw` (raw label
/// strings, dictionary-encoded server-side against the artifact's contract)
/// must be supplied.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PredictRequest {
    /// Registry name (`model-name`) or pinned key (`model-name@3`).
    pub model: String,
    /// Rows of categorical codes; every row must match the model's feature
    /// contract (width and per-feature cardinality).
    pub rows: Option<Vec<Vec<u32>>>,
    /// Rows of raw label strings; the server encodes them against the
    /// model's domains, mapping labels unseen at training time to the
    /// `Others` slot on open domains and rejecting them (400) on closed
    /// ones. Requires a format-v2 artifact (dictionaries embedded).
    pub rows_raw: Option<Vec<Vec<String>>>,
}

/// `POST /v1/predict` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PredictResponse {
    /// The exact artifact that answered (`name@version`).
    pub model: String,
    /// One label per input row.
    pub labels: Vec<bool>,
    /// Cascade artifacts only: the tier that answered each row (0 = the
    /// cheap front tier). Absent (`null`) for single-model artifacts.
    pub tiers: Option<Vec<u8>>,
    /// With `?explain_tiers=1` on a cascade artifact: the calibrated
    /// confidence of the answering tier, per row. Absent otherwise.
    pub tier_confidence: Option<Vec<f64>>,
    /// Server-side latency of validation + prediction, in milliseconds.
    pub latency_ms: f64,
}

/// `POST /v1/explain` — decode coded rows back to raw label strings
/// against the model's dictionaries (the inverse of `rows_raw` ingest).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExplainRequest {
    /// Registry name (`model-name`) or pinned key (`model-name@3`).
    pub model: String,
    /// Rows of categorical codes to decode; every code must be inside its
    /// feature's domain.
    pub rows: Vec<Vec<u32>>,
}

/// `POST /v1/explain` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExplainResponse {
    /// The exact artifact whose contract decoded the rows (`name@version`).
    pub model: String,
    /// One label string per input code, row-aligned with the request.
    pub rows_raw: Vec<Vec<String>>,
}

/// `POST /v1/advise` — star-schema statistics for a sourcing decision.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AdviseRequest {
    /// Model family whose tuple-ratio threshold applies.
    pub family: ModelFamily,
    /// Labelled training examples available.
    pub n_train: usize,
    /// Per-dimension statistics (name, `n_R`, open-domain flag).
    pub dims: Vec<DimStats>,
}

/// `POST /v1/advise` response: the advisor report, verbatim from
/// `hamlet_core::advisor::advise_dims`.
pub type AdviseResponse = AdvisorReport;

/// `POST /v1/train` — train on an emulated dataset and register the result.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainRequest {
    /// Registry name for the new artifact.
    pub name: String,
    /// Dataset: a Table-1 emulator (`movies`, `yelp`, `walmart`, `expedia`,
    /// `lastfm`, `books`, `flights`) or the `onexr` simulation scenario.
    pub dataset: String,
    /// Model to tune (paper spec).
    pub spec: ModelSpec,
    /// Feature configuration (defaults to `NoJoin` — the paper's verdict).
    pub config: Option<FeatureConfig>,
    /// Target total labelled examples for the emulator (default 2000).
    pub scale: Option<usize>,
    /// Generator seed (default 7).
    pub seed: Option<u64>,
    /// Use the full paper grids instead of the quick budget (default false;
    /// full grids are minutes, quick is seconds).
    pub full_budget: Option<bool>,
}

/// `POST /v1/train` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainResponse {
    /// Key the artifact was registered under.
    pub key: String,
    /// Where the artifact was persisted.
    pub path: String,
    /// Training metrics.
    pub metrics: RunResult,
    /// Schema fingerprint of the generated star.
    pub schema_fingerprint: u64,
}

/// `GET /v1/models` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelsResponse {
    /// One row per registered artifact.
    pub models: Vec<ModelSummary>,
}

/// `POST /v1/models/demote` — return a promoted non-latest version to its
/// lazy (header-only) slot, releasing its payload memory. Responds with
/// the updated [`ModelSummary`] (`resident: false` on success); the latest
/// version of a name refuses with a 400.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DemoteRequest {
    /// Exact pinned key `name@version` to demote.
    pub key: String,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Health {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Registered model count.
    pub models: usize,
    /// Cross-request predict coalescer counters.
    pub coalesce: crate::coalesce::CoalesceSnapshot,
}

/// `GET /v1/stats` response: the telemetry snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StatsResponse {
    /// Seconds since the server booted.
    pub uptime_secs: f64,
    /// Registered model versions (resident or lazy).
    pub models_registered: usize,
    /// Versions currently resident in memory.
    pub models_resident: usize,
    /// SIMD kernel dispatch tier selected at startup (`avx2`, `sse2`, or
    /// `scalar`; `scalar` also when forced via `HAMLET_FORCE_SCALAR`).
    pub kernel_backend: String,
    /// One row per endpoint dimension, fixed order.
    pub endpoints: Vec<EndpointStatsRow>,
    /// One row per model key that has seen predict traffic, sorted by key.
    pub models: Vec<ModelStatsRow>,
    /// Cross-request predict coalescer counters (same source `/healthz`
    /// reports).
    pub coalesce: crate::coalesce::CoalesceSnapshot,
    /// Tail of recent audit events (the durable log keeps full history).
    pub events: Vec<crate::telemetry::Event>,
    /// Rollout-plane state machine counters (same body as
    /// `GET /v1/rollout/status`).
    pub rollout: RolloutStatusResponse,
}

/// Per-endpoint stats row in [`StatsResponse`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EndpointStatsRow {
    pub endpoint: String,
    pub requests: u64,
    pub errors: u64,
    /// Latency percentiles in milliseconds; absent until the endpoint has
    /// seen traffic.
    pub p50_ms: Option<f64>,
    pub p99_ms: Option<f64>,
    pub p999_ms: Option<f64>,
    /// Of the errors, 500s caused by a contained executor panic (tracked
    /// distinctly so a panicking model is tellable from bad requests).
    pub panics: u64,
}

/// Per-model stats row in [`StatsResponse`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelStatsRow {
    /// Pinned key `name@version`.
    pub model: String,
    /// Weight-tensor storage encoding (`f32`/`i8`/`f16`); absent when the
    /// version has since been deleted from the registry.
    pub encoding: Option<String>,
    /// Predict requests answered by this version.
    pub requests: u64,
    /// Of those, requests that rode a merged (≥ 2 participant) batch.
    pub merged_requests: u64,
    /// Data rows classified.
    pub rows: u64,
    /// Latency stats in milliseconds; absent until the model has traffic.
    pub mean_ms: Option<f64>,
    pub p50_ms: Option<f64>,
    pub p99_ms: Option<f64>,
    pub p999_ms: Option<f64>,
    /// Seconds since the last predict hit; absent when never hit.
    pub idle_secs: Option<f64>,
    /// Cascade artifacts only: rows answered per tier (index = tier,
    /// trimmed after the deepest tier that saw traffic). Absent for
    /// single-model artifacts and cascades with no traffic yet.
    pub cascade_tier_rows: Option<Vec<u64>>,
    /// Cascade artifacts only: fraction of served rows that escalated past
    /// tier 0 (lower = the cheap tier short-circuits more).
    pub cascade_escalation_ratio: Option<f64>,
    /// Shadow-scored mirrored rows (rollout candidates only).
    pub shadow_rows: Option<u64>,
    /// Fraction of shadow-scored rows agreeing with the incumbent; absent
    /// until mirrored traffic arrives.
    pub shadow_agreement: Option<f64>,
    /// Mirrored rows skipped because their execution panicked.
    pub shadow_skipped_rows: Option<u64>,
}

/// `POST /v1/observe` — stream labeled production rows into the rollout
/// plane's observe buffer. They feed the drift advisor (the paper's
/// avoid-join decision rule re-run on live FK cardinalities) and
/// warm-start incremental refreshes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ObserveRequest {
    /// Registry name (`model-name`) or pinned key (`model-name@3`); rows
    /// are buffered under the bare name either way.
    pub model: String,
    /// Rows of categorical codes, validated against the model's contract
    /// exactly like `/v1/predict` input.
    pub rows: Vec<Vec<u32>>,
    /// Observed ground-truth label per row, row-aligned with `rows`.
    pub labels: Vec<bool>,
}

/// `POST /v1/observe` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ObserveResponse {
    /// Bare name the rows were buffered under.
    pub model: String,
    /// Rows accepted by this request.
    pub accepted: usize,
    /// Rows currently buffered for the name (bounded ring).
    pub buffered: usize,
}

/// `POST /v1/rollout/start` — put a candidate version into shadow.
/// Exactly one of `candidate` and `refresh` must be supplied.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RolloutStartRequest {
    /// Existing registered key (`name@version`) to roll out.
    pub candidate: Option<String>,
    /// Instead: a bare model name — warm-start refresh it on the observe
    /// buffer (`train_incremental`, SGD-family models only) and roll out
    /// the resulting candidate.
    pub refresh: Option<String>,
    /// Canary traffic slice percent (defaults to the server's
    /// `--canary-slice`).
    pub slice: Option<u8>,
}

/// `GET /v1/rollout/status`, `POST /v1/rollout/{start,abort}` response.
pub type RolloutStatusResponse = crate::rollout::RolloutSnapshot;

/// Error envelope used by every non-2xx response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ApiError {
    /// Human-readable description.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let req = PredictRequest {
            model: "m@1".into(),
            rows: Some(vec![vec![0, 1], vec![2, 3]]),
            rows_raw: None,
        };
        let text = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.model, "m@1");
        assert_eq!(back.rows, Some(vec![vec![0, 1], vec![2, 3]]));
        assert_eq!(back.rows_raw, None);

        // A pre-rows_raw client payload (no such key) still parses, and a
        // raw-label payload parses without `rows`.
        let old: PredictRequest = serde_json::from_str("{\"model\":\"m\",\"rows\":[[0]]}").unwrap();
        assert_eq!(old.rows, Some(vec![vec![0]]));
        assert!(old.rows_raw.is_none());
        let raw: PredictRequest =
            serde_json::from_str("{\"model\":\"m\",\"rows_raw\":[[\"v0\",\"x\"]]}").unwrap();
        assert!(raw.rows.is_none());
        assert_eq!(raw.rows_raw, Some(vec![vec!["v0".into(), "x".into()]]));

        let adv: AdviseRequest = serde_json::from_str(
            "{\"family\":\"TreeOrAnn\",\"n_train\":100,\
             \"dims\":[{\"name\":\"users\",\"n_rows\":40,\"open_domain\":false}]}",
        )
        .unwrap();
        assert_eq!(adv.family, ModelFamily::TreeOrAnn);
        assert_eq!(adv.dims[0].n_rows, 40);
    }

    #[test]
    fn train_request_optionals_default_via_null() {
        let req: TrainRequest =
            serde_json::from_str("{\"name\":\"m\",\"dataset\":\"movies\",\"spec\":\"TreeGini\"}")
                .unwrap();
        assert!(req.config.is_none());
        assert!(req.scale.is_none());
        assert_eq!(req.spec, ModelSpec::TreeGini);
    }
}
