//! Cross-request predict coalescing at the executor boundary.
//!
//! Production traffic on `/v1/predict` is overwhelmingly *many tiny
//! bodies* — one row from each of thousands of clients — not a few big
//! batches. Served naively, every such request pays full dispatch (latency
//! cell, fan-out budget, a solo `predict` call too small to shard), so the
//! batch-parallel machinery sits idle exactly when load is highest. The
//! coalescer fixes that by merging **concurrent in-flight requests that
//! resolved the same artifact** into one sharded batch predict:
//!
//! - The first request to find no open batch for its model becomes the
//!   **leader**: it opens a batch with its rows and holds it open for a
//!   bounded window (see below). Its executor thread is parked for at most
//!   that window.
//! - Requests arriving meanwhile become **followers**: their (already
//!   validated) rows and [`Responder`]s are appended to the open batch and
//!   their executor returns *immediately* to pull the next job — so the
//!   merge width is bounded by the number of concurrent requests, not by
//!   the executor count.
//! - The leader then executes the whole batch as one
//!   `predict_segments_sharded` fan-out and answers every participant.
//!   Rows are never re-ordered across a request boundary and per-row
//!   prediction is stateless, so each response is **bit-identical** to the
//!   uncoalesced execution.
//!
//! The window is **fed by the per-model ns/row EWMA** (`AppState::latency`)
//! rather than fixed: there is no point holding a batch open longer than
//! the work itself costs, so for a cheap model (a tree at tens of ns/row)
//! the effective window collapses to roughly the cost of a full batch,
//! while an expensive RBF-SVM — where merging pays for itself many times
//! over in fan-out — gets the full configured window. The leader also
//! flushes early when the batch hits `max_rows` or when the executor
//! queue drains (nobody left to wait for, observed via
//! [`Responder::queue_depth`]) — which is what makes *sequential*
//! keep-alive traffic pay no window at all: a lone request sees an empty
//! queue and runs solo immediately. The gauge counts only coalescable
//! (predict) jobs — see `ServerOptions::queue_gauge` — but it still
//! cannot tell *which model* a pending predict targets (nor whether it is
//! a large batch that will never merge), so a lane whose leaders
//! repeatedly wait out the window without a single partner **damps
//! itself**: it stops leading after a few empty windows and retries one
//! exploratory window every handful of requests, bounding the cost of a
//! misleading gauge while noticing a return of real concurrency within
//! ~16 requests.
//!
//! Error isolation is structural: validation and dictionary encoding run
//! per request *before* anything is merged, so a bad row 4xxes only its
//! own request and never taints a batch. A panic inside the merged
//! predict unwinds the batch, whose responders then answer 500 from their
//! destructors — one poisoned batch never wedges a connection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::artifact::ModelArtifact;
use crate::http::Responder;

/// Tuning for the predict coalescer.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// Longest a leader holds a batch open waiting for merge partners.
    /// Zero disables coalescing entirely (every request runs solo).
    pub window: Duration,
    /// A batch flushes as soon as it holds this many rows; requests at
    /// least this large never coalesce (they shard fine on their own).
    pub max_rows: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            window: Duration::from_micros(200),
            max_rows: 512,
        }
    }
}

/// Monotonic counters describing coalescer behaviour (reported by
/// `GET /healthz`).
#[derive(Debug, Default)]
pub struct CoalesceStats {
    batches: AtomicU64,
    merged_requests: AtomicU64,
    solo_requests: AtomicU64,
    flush_full: AtomicU64,
    flush_timeout: AtomicU64,
    flush_drained: AtomicU64,
}

/// A serializable snapshot of [`CoalesceStats`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoalesceSnapshot {
    /// Batches flushed through the merged path (including ones whose
    /// window expired with a single participant).
    pub batches: u64,
    /// Requests answered out of batches that actually merged (≥ 2
    /// participants) — zero here means no two requests ever shared a
    /// batch.
    pub merged_requests: u64,
    /// Requests executed alone: coalescing disabled, batch too large, no
    /// concurrency to merge with, or a window that expired partnerless.
    pub solo_requests: u64,
    /// Batches flushed because they reached `max_rows`.
    pub flush_full: u64,
    /// Batches flushed because the merge window expired.
    pub flush_timeout: u64,
    /// Batches flushed early because the executor queue drained.
    pub flush_drained: u64,
}

impl CoalesceStats {
    /// Current counter values.
    pub fn snapshot(&self) -> CoalesceSnapshot {
        CoalesceSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            merged_requests: self.merged_requests.load(Ordering::Relaxed),
            solo_requests: self.solo_requests.load(Ordering::Relaxed),
            flush_full: self.flush_full.load(Ordering::Relaxed),
            flush_timeout: self.flush_timeout.load(Ordering::Relaxed),
            flush_drained: self.flush_drained.load(Ordering::Relaxed),
        }
    }
}

/// One validated predict request waiting for execution: its flattened
/// row-major codes, arrival time (for per-request latency reporting) and
/// reply handle.
#[derive(Debug)]
pub struct PendingPredict {
    /// Row-major codes, already validated/encoded against the contract.
    pub rows: Vec<u32>,
    /// When the request entered the handler.
    pub start: Instant,
    /// Whether this request asked for per-row tier confidence
    /// (`?explain_tiers=1`); carried per participant so coalesced partners
    /// with different flags each get the response shape they asked for.
    pub explain_tiers: bool,
    /// Where its response goes.
    pub responder: Responder,
    /// `Some` marks a **mirrored** part from the rollout plane's shadow
    /// lane: the rows are a copy of live traffic already answered by the
    /// incumbent, the responder is detached (its receiver dropped), and
    /// after execution the labels are scored against `expected` instead of
    /// being sent anywhere. Real requests carry `None`.
    pub shadow: Option<crate::rollout::ShadowCtx>,
}

/// A flushed batch the leader must execute: every participant resolved
/// `artifact`, and `parts` are in arrival order.
#[derive(Debug)]
pub struct Batch {
    /// The artifact every participant resolved.
    pub artifact: Arc<ModelArtifact>,
    /// Participants in arrival order.
    pub parts: Vec<PendingPredict>,
    why: FlushCause,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Full,
    Timeout,
    Drained,
}

/// What [`Coalescer::submit`] decided.
#[derive(Debug)]
pub enum Submitted {
    /// The caller is the batch's leader; execute `Batch` and answer every
    /// participant.
    Flush(Batch),
    /// The rows joined an open batch; its leader will answer. Return at
    /// once — the executor is free.
    Joined,
    /// Coalescing does not apply; the caller runs this request solo.
    Solo(PendingPredict),
}

/// An open-or-idle merge point for one resolved model key.
#[derive(Debug, Default)]
struct Lane {
    state: Mutex<LaneState>,
    joined: Condvar,
}

#[derive(Debug, Default)]
struct LaneState {
    open: Option<OpenBatch>,
    /// Consecutive windows this lane's leaders waited out without a single
    /// partner arriving. The queue gauge counts pending *predict* jobs but
    /// not which model they target, so steady interleaved traffic against
    /// two different models (or a stream of large never-merging batches)
    /// would otherwise make each lane's leader burn a full window for
    /// partners that cannot exist. Past [`LONELY_LEAD_THRESHOLD`] the lane
    /// mostly stops leading (runs solo), retrying one window every
    /// [`LONELY_RETRY_EVERY`] requests; the first real merge resets it to
    /// fully eager.
    lonely_streak: u32,
    /// Solo requests skipped while damped (drives the periodic retry).
    damped_skips: u32,
}

#[derive(Debug)]
struct OpenBatch {
    artifact: Arc<ModelArtifact>,
    parts: Vec<PendingPredict>,
    total_rows: usize,
    d: usize,
}

/// The cross-request predict coalescer (see module docs).
#[derive(Debug)]
pub struct Coalescer {
    config: CoalesceConfig,
    /// Behaviour counters. Shared: the server hands in the block owned by
    /// its `Telemetry` handle so `/healthz`, `/v1/stats` and `/metrics`
    /// all read the same accounting.
    pub stats: Arc<CoalesceStats>,
    /// One lane per resolved model key, resolved through the same
    /// lock-free snapshot technique as the registry's latest index — the
    /// hot path must not reintroduce a global mutex just to clone a lane
    /// `Arc`. The mutex only serializes first-seen-key inserts (once per
    /// model, ever), under which the snapshot is republished.
    lanes: crate::swap::ArcSwapCell<HashMap<String, Arc<Lane>>>,
    lanes_mut: Mutex<()>,
}

/// Leader wake-up cadence while holding a batch open: short enough to
/// notice `queue_depth` draining promptly, long enough that a 200 µs
/// window costs only a handful of wake-ups.
const WAIT_SLICE: Duration = Duration::from_micros(64);

/// Consecutive partnerless window timeouts after which a lane stops
/// leading (requests run solo instead of waiting)...
const LONELY_LEAD_THRESHOLD: u32 = 4;

/// ...retrying one exploratory window per this many damped solo requests,
/// so a lane recovers promptly once real concurrency returns while the
/// steady-state overhead of a stuck queue gauge stays ≤ one window per
/// `LONELY_RETRY_EVERY` requests.
const LONELY_RETRY_EVERY: u32 = 16;

/// When a new-key insert finds this many lanes, idle ones (no thread
/// holding them, no open batch) are pruned first. Lanes are keyed by
/// `name@version`, so a periodically retrained model would otherwise leak
/// one lane per superseded version for the process lifetime.
const LANES_GC_THRESHOLD: usize = 256;

impl Coalescer {
    /// A coalescer with the given tuning and its own counter block.
    pub fn new(config: CoalesceConfig) -> Self {
        Coalescer::with_stats(config, Arc::new(CoalesceStats::default()))
    }

    /// A coalescer recording into an externally owned counter block
    /// (telemetry's, in the server).
    pub fn with_stats(config: CoalesceConfig, stats: Arc<CoalesceStats>) -> Self {
        Coalescer {
            config,
            stats,
            lanes: crate::swap::ArcSwapCell::new(Some(Arc::new(HashMap::new()))),
            lanes_mut: Mutex::new(()),
        }
    }

    /// The lane for a resolved model key: lock-free once the key has been
    /// seen; a copy-on-write snapshot republish (serialized on
    /// `lanes_mut`) the first time.
    fn lane(&self, key: &str) -> Arc<Lane> {
        let snapshot = self.lanes.load().expect("lane snapshot always present");
        if let Some(lane) = snapshot.get(key) {
            return Arc::clone(lane);
        }
        let _writer = self.lanes_mut.lock().expect("coalescer lanes poisoned");
        // Re-check under the insert lock: another thread may have won.
        let snapshot = self.lanes.load().expect("lane snapshot always present");
        if let Some(lane) = snapshot.get(key) {
            return Arc::clone(lane);
        }
        let lane = Arc::new(Lane::default());
        let mut next = (*snapshot).clone();
        if next.len() >= LANES_GC_THRESHOLD {
            // Drop idle lanes (no open batch, not locked this instant).
            // Pruning is always *correctness*-safe: a racing submit that
            // cloned its lane from the old snapshot keeps the detached
            // lane and finishes normally — worst case two batches briefly
            // coexist for one key, which costs a missed merge, never a
            // wrong answer. `try_lock` keeps this sweep non-blocking.
            next.retain(|_, l| match l.state.try_lock() {
                Ok(state) => state.open.is_some(),
                Err(_) => true, // in use right now: keep
            });
        }
        next.insert(key.to_string(), Arc::clone(&lane));
        self.lanes.store(Some(Arc::new(next)));
        lane
    }

    /// A disabled coalescer (every request runs solo).
    pub fn disabled() -> Self {
        Coalescer::new(CoalesceConfig {
            window: Duration::ZERO,
            max_rows: 0,
        })
    }

    /// Whether any merging can happen at all.
    pub fn enabled(&self) -> bool {
        !self.config.window.is_zero() && self.config.max_rows > 1
    }

    /// The configured flush threshold.
    pub fn max_rows(&self) -> usize {
        self.config.max_rows
    }

    /// The merge window a leader would hold open for a model whose
    /// observed sequential cost is `ewma_ns_per_row`: never longer than
    /// the configured window, and never (much) longer than a full batch of
    /// that model costs to execute — waiting past that point adds more
    /// latency than the merge can save.
    pub fn effective_window(&self, ewma_ns_per_row: Option<f64>) -> Duration {
        let configured = self.config.window;
        let Some(ns) = ewma_ns_per_row else {
            return configured;
        };
        if !ns.is_finite() || ns <= 0.0 {
            return configured;
        }
        let full_batch_ns = (ns * self.config.max_rows as f64).min(1e15);
        configured.min(Duration::from_nanos(full_batch_ns as u64).max(configured / 16))
    }

    /// Routes one validated request: merge into an open batch, lead a new
    /// one, or run solo. May block for up to the effective window (leader
    /// path only). `key` is the artifact's resolved `name@version` (passed
    /// in so the hot path computes it exactly once); `ewma_ns_per_row` is
    /// the model's observed sequential per-row cost, if any.
    pub fn submit(
        &self,
        key: &str,
        artifact: &Arc<ModelArtifact>,
        d: usize,
        part: PendingPredict,
        ewma_ns_per_row: Option<f64>,
    ) -> Submitted {
        let n = part.rows.len() / d.max(1);
        if !self.enabled() || n >= self.config.max_rows {
            self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
            return Submitted::Solo(part);
        }
        let lane = self.lane(key);
        let mut state = lane.state.lock().expect("coalescer lane poisoned");
        if let Some(open) = state.open.as_mut() {
            // An identity (not just key) match: a hot-swap racing this
            // request could have replaced the artifact under the same key,
            // and two different models must never share a batch.
            if Arc::ptr_eq(&open.artifact, artifact)
                && open.d == d
                && open.total_rows + n <= self.config.max_rows
            {
                open.total_rows += n;
                open.parts.push(part);
                drop(state);
                // Wake the leader: the batch may just have become full.
                lane.joined.notify_all();
                return Submitted::Joined;
            }
            // Full or mismatched batch: run solo rather than serialize
            // behind it.
            drop(state);
            self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
            return Submitted::Solo(part);
        }
        if part.responder.queue_depth() <= 1 {
            // Nothing else is queued or running: there is nobody to merge
            // with, so waiting would be pure added latency.
            self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
            return Submitted::Solo(part);
        }
        if state.lonely_streak >= LONELY_LEAD_THRESHOLD {
            // The gauge says predicts are pending but recent windows all
            // expired empty — they must target other models (or be large
            // never-merging batches). Run solo, with a periodic
            // exploratory lead so real concurrency is noticed.
            state.damped_skips += 1;
            if state.damped_skips >= LONELY_RETRY_EVERY {
                state.damped_skips = 0;
                state.lonely_streak = LONELY_LEAD_THRESHOLD - 1; // one retry
            }
            drop(state);
            self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
            return Submitted::Solo(part);
        }
        // Become the leader: open the batch and hold it for the window.
        state.open = Some(OpenBatch {
            artifact: Arc::clone(artifact),
            d,
            total_rows: n,
            parts: vec![part],
        });
        let deadline = Instant::now() + self.effective_window(ewma_ns_per_row);
        let why = loop {
            let open = state.open.as_ref().expect("leader owns the open batch");
            if open.total_rows >= self.config.max_rows {
                break FlushCause::Full;
            }
            // The leader's own job is still counted in the gauge, so ≤ 1
            // means the executor queue drained: flush now rather than
            // wait out the window for partners that cannot exist.
            if open.parts[0].responder.queue_depth() <= 1 {
                break FlushCause::Drained;
            }
            let now = Instant::now();
            if now >= deadline {
                break FlushCause::Timeout;
            }
            let (next, _timeout) = lane
                .joined
                .wait_timeout(state, (deadline - now).min(WAIT_SLICE))
                .expect("coalescer lane poisoned");
            state = next;
        };
        let open = state.open.take().expect("leader owns the open batch");
        // Partner bookkeeping for the lonely-lane damping (see LaneState).
        if open.parts.len() > 1 {
            state.lonely_streak = 0;
            state.damped_skips = 0;
        } else if why == FlushCause::Timeout {
            state.lonely_streak = state.lonely_streak.saturating_add(1);
        }
        drop(state);
        match why {
            FlushCause::Full => self.stats.flush_full.fetch_add(1, Ordering::Relaxed),
            FlushCause::Timeout => self.stats.flush_timeout.fetch_add(1, Ordering::Relaxed),
            FlushCause::Drained => self.stats.flush_drained.fetch_add(1, Ordering::Relaxed),
        };
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        if open.parts.len() > 1 {
            self.stats
                .merged_requests
                .fetch_add(open.parts.len() as u64, Ordering::Relaxed);
        } else {
            // A batch nobody joined is solo execution with extra steps —
            // counting it as "merged" would let a broken coalescer look
            // healthy (and the CI probe asserts merged_requests > 0).
            self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
        }
        Submitted::Flush(Batch {
            artifact: open.artifact,
            parts: open.parts,
            why,
        })
    }
}

impl Batch {
    /// Wraps a single pending part as a one-participant batch, so solo and
    /// mirrored executions flow through the same `run_batch` path as real
    /// coalesced flushes (one spot owns panic containment, latency
    /// accounting and shadow scoring).
    pub fn solo(artifact: Arc<ModelArtifact>, part: PendingPredict) -> Batch {
        Batch {
            artifact,
            parts: vec![part],
            why: FlushCause::Drained,
        }
    }

    /// Why the leader flushed (exposed for tests and logging).
    pub fn flushed_by_timeout(&self) -> bool {
        self.why == FlushCause::Timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests::toy_artifact;
    use crate::http::Responder;

    fn part(
        rows: Vec<u32>,
        depth: usize,
    ) -> (
        PendingPredict,
        std::sync::mpsc::Receiver<crate::http::Response>,
    ) {
        let (responder, rx) = Responder::direct_with_depth(depth);
        (
            PendingPredict {
                rows,
                start: Instant::now(),
                explain_tiers: false,
                responder,
                shadow: None,
            },
            rx,
        )
    }

    #[test]
    fn disabled_and_oversized_requests_run_solo() {
        let artifact = Arc::new(toy_artifact("solo", 1));
        let off = Coalescer::disabled();
        assert!(!off.enabled());
        let (p, _rx) = part(vec![0, 0], 8);
        assert!(matches!(
            off.submit(&artifact.key(), &artifact, 2, p, None),
            Submitted::Solo(_)
        ));

        let on = Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(50),
            max_rows: 4,
        });
        // 4 rows ≥ max_rows: shards fine on its own, no merge.
        let (p, _rx) = part(vec![0; 8], 8);
        assert!(matches!(
            on.submit(&artifact.key(), &artifact, 2, p, None),
            Submitted::Solo(_)
        ));
        assert_eq!(on.stats.snapshot().solo_requests, 1);
    }

    #[test]
    fn lone_requests_skip_the_window_entirely() {
        let artifact = Arc::new(toy_artifact("lone", 1));
        let c = Coalescer::new(CoalesceConfig {
            window: Duration::from_secs(5), // would be very visible
            max_rows: 512,
        });
        let (p, _rx) = part(vec![0, 0], 1); // queue depth 1: nothing pending
        let t0 = Instant::now();
        assert!(matches!(
            c.submit(&artifact.key(), &artifact, 2, p, None),
            Submitted::Solo(_)
        ));
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "a lone request must not wait for merge partners"
        );
    }

    #[test]
    fn window_timeout_flushes_a_lonely_leader() {
        let artifact = Arc::new(toy_artifact("timeout", 1));
        let c = Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(30),
            max_rows: 512,
        });
        // Depth 2 claims another request is pending; it never joins, so
        // the leader flushes alone at the window.
        let (p, _rx) = part(vec![0, 0], 2);
        let t0 = Instant::now();
        let Submitted::Flush(batch) = c.submit(&artifact.key(), &artifact, 2, p, None) else {
            panic!("expected leader flush");
        };
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "waited the window"
        );
        assert!(batch.flushed_by_timeout());
        assert_eq!(batch.parts.len(), 1);
        assert_eq!(c.stats.snapshot().flush_timeout, 1);
    }

    #[test]
    fn followers_merge_into_the_leaders_batch_until_full() {
        let artifact = Arc::new(toy_artifact("merge", 1));
        let c = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_secs(10), // flush must come from `Full`
            max_rows: 4,
        }));
        std::thread::scope(|scope| {
            let leader = {
                let c = Arc::clone(&c);
                let artifact = Arc::clone(&artifact);
                scope.spawn(move || {
                    let (p, _rx) = part(vec![0, 0], 4);
                    c.submit(&artifact.key(), &artifact, 2, p, None)
                })
            };
            // Give the leader time to open the batch, then fill it.
            std::thread::sleep(Duration::from_millis(50));
            for _ in 0..3 {
                let (p, _rx) = part(vec![1, 1], 4);
                match c.submit(&artifact.key(), &artifact, 2, p, None) {
                    Submitted::Joined => {}
                    other => panic!("expected follower join, got {other:?}"),
                }
            }
            let Submitted::Flush(batch) = leader.join().unwrap() else {
                panic!("leader must flush");
            };
            assert_eq!(batch.parts.len(), 4);
            assert!(!batch.flushed_by_timeout(), "flushed because full");
        });
        let stats = c.stats.snapshot();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.merged_requests, 4);
        assert_eq!(stats.flush_full, 1);
    }

    #[test]
    fn different_artifacts_never_share_a_batch() {
        // Same key, different identity (a hot-swap race): the follower
        // must fall back to solo, not merge into the stale batch.
        let a1 = Arc::new(toy_artifact("same", 1));
        let a2 = Arc::new(toy_artifact("same", 1));
        let c = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(200),
            max_rows: 8,
        }));
        std::thread::scope(|scope| {
            let leader = {
                let c = Arc::clone(&c);
                let a1 = Arc::clone(&a1);
                scope.spawn(move || {
                    let (p, _rx) = part(vec![0, 0], 2);
                    c.submit(&a1.key(), &a1, 2, p, None)
                })
            };
            std::thread::sleep(Duration::from_millis(50));
            let (p, _rx) = part(vec![1, 1], 2);
            assert!(
                matches!(c.submit(&a2.key(), &a2, 2, p, None), Submitted::Solo(_)),
                "identity mismatch must not merge"
            );
            assert!(matches!(leader.join().unwrap(), Submitted::Flush(_)));
        });
    }

    #[test]
    fn lonely_lanes_damp_to_solo_and_recover_on_a_real_merge() {
        let artifact = Arc::new(toy_artifact("damp", 1));
        let c = Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(15),
            max_rows: 512,
        });
        // A depth gauge stuck at 2 (e.g. steady predict traffic against a
        // different model that can never merge here): the first
        // few requests each lead and wait out the window...
        for i in 0..LONELY_LEAD_THRESHOLD {
            let (p, _rx) = part(vec![0, 0], 2);
            assert!(
                matches!(
                    c.submit(&artifact.key(), &artifact, 2, p, None),
                    Submitted::Flush(_)
                ),
                "request {i} should still lead"
            );
        }
        // ...after which the lane stops burning windows: solo, and fast.
        let t0 = Instant::now();
        let mut solos = 0;
        for _ in 0..LONELY_RETRY_EVERY - 1 {
            let (p, _rx) = part(vec![0, 0], 2);
            if matches!(
                c.submit(&artifact.key(), &artifact, 2, p, None),
                Submitted::Solo(_)
            ) {
                solos += 1;
            }
        }
        assert_eq!(solos, LONELY_RETRY_EVERY - 1, "damped lane runs solo");
        assert!(
            t0.elapsed() < Duration::from_millis(10),
            "damped requests must not wait: {:?}",
            t0.elapsed()
        );
        // The periodic exploratory lead comes back around...
        let retried = (0..3).any(|_| {
            let (p, _rx) = part(vec![0, 0], 2);
            matches!(
                c.submit(&artifact.key(), &artifact, 2, p, None),
                Submitted::Flush(_)
            )
        });
        assert!(retried, "damping must keep probing for concurrency");
        // ...and one real merge resets the lane to fully eager. (The
        // exploratory lead above timed out lonely, so the lane is damped
        // again: drain a full retry cycle first so the next submit leads.)
        for _ in 0..LONELY_RETRY_EVERY {
            let (p, _rx) = part(vec![0, 0], 2);
            let _ = c.submit(&artifact.key(), &artifact, 2, p, None);
        }
        std::thread::scope(|scope| {
            let leader = {
                let c = &c;
                let artifact = Arc::clone(&artifact);
                scope.spawn(move || {
                    let (p, _rx) = part(vec![0, 0], 2);
                    c.submit(&artifact.key(), &artifact, 2, p, None)
                })
            };
            std::thread::sleep(Duration::from_millis(5));
            let (p, _rx) = part(vec![1, 1], 2);
            // May join the leader's batch (or miss the window and lead a
            // lonely batch itself; either way the leader's flush counts).
            let _ = c.submit(&artifact.key(), &artifact, 2, p, None);
            leader.join().unwrap();
        });
        let (p, _rx) = part(vec![0, 0], 2);
        assert!(
            matches!(
                c.submit(&artifact.key(), &artifact, 2, p, None),
                Submitted::Flush(_)
            ),
            "a successful merge resets the damping"
        );
    }

    #[test]
    fn effective_window_tracks_the_models_cost() {
        let c = Coalescer::new(CoalesceConfig {
            window: Duration::from_micros(200),
            max_rows: 512,
        });
        // Unknown model: full window.
        assert_eq!(c.effective_window(None), Duration::from_micros(200));
        // Expensive model (10 µs/row): a full batch dwarfs the window.
        assert_eq!(
            c.effective_window(Some(10_000.0)),
            Duration::from_micros(200)
        );
        // Cheap model (20 ns/row): the window collapses to ~a full batch
        // (512 × 20 ns ≈ 10 µs) — waiting longer than the work costs is
        // pure latency.
        let cheap = c.effective_window(Some(20.0));
        assert!(cheap <= Duration::from_micros(13), "{cheap:?}");
        assert!(cheap >= Duration::from_micros(200) / 16, "{cheap:?}");
        // Garbage observations fall back to the configured window.
        assert_eq!(
            c.effective_window(Some(f64::NAN)),
            Duration::from_micros(200)
        );
        assert_eq!(c.effective_window(Some(-1.0)), Duration::from_micros(200));
    }
}
