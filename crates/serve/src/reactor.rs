//! Event-driven reactor: a single thread multiplexing every connection
//! over raw `epoll`.
//!
//! No async runtime and no FFI crate are available offline, so the three
//! epoll syscalls (`epoll_create1` / `epoll_ctl` / `epoll_wait`) plus
//! `eventfd` are declared directly as `extern "C"` against the platform
//! libc that every Rust binary on Linux already links. Everything above the
//! syscall boundary is safe Rust:
//!
//! - [`Epoll`] — an owned epoll instance with add/modify/delete/wait;
//! - [`Waker`] — an `eventfd` the executor pool writes to when a response
//!   is ready, so the reactor wakes from `epoll_wait` without a timeout
//!   race (the classic self-pipe trick, one fd instead of two);
//! - [`TimerWheel`] — a coarse hashed wheel (512 ms slots) holding every
//!   connection's next deadline. Entries are filed lazily and verified
//!   against the connection's *current* deadline when their slot comes due,
//!   so refreshing a deadline is O(1) and never has to find-and-remove;
//! - [`run`] — the event loop: accept new connections (closing with a 503
//!   once `max_conns` is reached), feed readable/writable events into each
//!   connection's state machine ([`crate::conn::Conn`]), hand parsed
//!   requests to the executor pool over a channel, queue finished responses
//!   for write-readiness-driven flushing, and reap expired connections.
//!
//! The reactor thread never runs a handler and never blocks on a socket:
//! slow clients cost a buffer, idle keep-alive clients cost a file
//! descriptor, and all worker threads stay available for actual request
//! execution.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::raw::{c_int, c_uint};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::conn::{Conn, Verdict};
use crate::http::{Completion, Job, ServerOptions};

// ---- raw epoll / eventfd FFI (no external crates; offline build) ----

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const EFD_CLOEXEC: c_int = 0x80000;

/// Mirror of `struct epoll_event`. The kernel ABI packs this to 12 bytes on
/// x86-64 (and only there), hence the conditional `repr(packed)`.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: c_int,
}

impl Epoll {
    pub(crate) fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.fd, op, fd, arg) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    pub(crate) fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` for readiness events. Interrupted waits
    /// report zero events rather than erroring.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> std::io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wakeup handle shared by the executor pool: writing
/// bumps the counter and makes the reactor's `epoll_wait` return.
pub(crate) struct Waker {
    file: std::fs::File,
}

impl Waker {
    pub(crate) fn new() -> std::io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created eventfd we exclusively own.
        let file = unsafe { std::fs::File::from_raw_fd(fd) };
        Ok(Waker { file })
    }

    fn fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signal the reactor. A full counter (EAGAIN) means a wake is already
    /// pending, which is exactly what we want — ignore every error.
    pub(crate) fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Consume pending wake signals (nonblocking).
    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

/// Wheel granularity; deadlines are only ever late by at most one slot
/// plus one `epoll_wait` timeout, which is fine for second-scale timeouts.
const WHEEL_SLOT: Duration = Duration::from_millis(512);

/// Slots in the ring (≈131 s span). Deadlines beyond the span are clamped
/// to the last slot and re-filed when they surface — correctness never
/// depends on the span, only efficiency.
const WHEEL_SLOTS: usize = 256;

/// A coarse hashed timer wheel over connection tokens.
///
/// Insert-only: entries are *not* removed when a deadline moves or a
/// connection closes. Instead, when a slot comes due the reactor checks
/// each surfaced token against the connection's live deadline and either
/// reaps it, re-files it, or drops the stale entry. That keeps deadline
/// refreshes O(1) on the hot path at the cost of at most one spurious
/// surfacing per refresh.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_tick: now,
        }
    }

    /// File `token` to surface at (or shortly after) `deadline`.
    pub(crate) fn insert(&mut self, token: u64, deadline: Instant, now: Instant) {
        let remaining = deadline.saturating_duration_since(now);
        let ticks = (remaining.as_millis() / WHEEL_SLOT.as_millis()) as usize + 1;
        let slot = (self.cursor + ticks.min(WHEEL_SLOTS - 1)) % WHEEL_SLOTS;
        self.slots[slot].push(token);
    }

    /// Advance to `now`, returning every token whose slot came due.
    pub(crate) fn tick(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while now.saturating_duration_since(self.last_tick) >= WHEEL_SLOT {
            self.last_tick += WHEEL_SLOT;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            due.append(&mut self.slots[self.cursor]);
        }
        due
    }
}

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
/// Wheel-only token for [`ServerOptions::on_tick`]: never registered with
/// epoll, it just rides the timer wheel and is re-filed after each firing.
const TOKEN_TICK: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 3;

/// Pre-rendered response for connections over the `max_conns` cap.
const OVERLOADED: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
    Content-Type: application/json\r\nContent-Length: 36\r\n\
    Connection: close\r\n\r\n{\"error\":\"connection limit reached\"}";

/// The reactor event loop. Owns the listener, every connection, the epoll
/// instance and the timer wheel; runs until `shutdown` is set (the waker is
/// poked by `Server::shutdown` so the flag is observed promptly).
pub(crate) fn run(
    listener: TcpListener,
    jobs: Sender<Job>,
    completions: Receiver<Completion>,
    waker: Arc<Waker>,
    shutdown: Arc<AtomicBool>,
    opts: Arc<ServerOptions>,
    queue_depth: Arc<AtomicUsize>,
) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("hamlet-serve reactor: epoll_create1 failed: {e}");
            return;
        }
    };
    let now = Instant::now();
    let mut wheel = TimerWheel::new(now);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    if let Err(e) = epoll.add(waker.fd(), TOKEN_WAKER, EPOLLIN) {
        eprintln!("hamlet-serve reactor: registering waker failed: {e}");
        return;
    }
    if let Err(e) = epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN) {
        eprintln!("hamlet-serve reactor: registering listener failed: {e}");
        return;
    }
    if let Some(tick) = &opts.on_tick {
        wheel.insert(TOKEN_TICK, now + tick.every, now);
    }

    let mut events = [EpollEvent { events: 0, data: 0 }; 256];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // drops listener, conns, and the job sender → executors drain and exit
        }
        let n = match epoll.wait(&mut events, WHEEL_SLOT.as_millis() as c_int) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("hamlet-serve reactor: epoll_wait failed: {e}");
                return;
            }
        };
        let now = Instant::now();

        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_WAKER => waker.drain(),
                TOKEN_LISTENER => accept_ready(
                    &listener,
                    &epoll,
                    &mut conns,
                    &mut wheel,
                    &mut next_token,
                    now,
                    &opts,
                ),
                _ => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // already closed this iteration
                    };
                    let mut verdict = Verdict::Open;
                    if bits & (EPOLLERR | EPOLLHUP) != 0 {
                        // Peer is gone in both directions; nothing we queue
                        // can be delivered.
                        verdict = Verdict::Close;
                    } else {
                        if bits & EPOLLIN != 0 {
                            verdict = conn.on_readable(now);
                        }
                        if verdict == Verdict::Open && bits & EPOLLOUT != 0 {
                            verdict = conn.on_writable(now);
                        }
                    }
                    finish_step(
                        &epoll,
                        &mut conns,
                        &mut wheel,
                        token,
                        verdict,
                        &jobs,
                        &queue_depth,
                        &opts,
                        now,
                    );
                }
            }
        }

        // Executor completions (the waker event only interrupts the wait;
        // the channel is the actual data path).
        loop {
            match completions.try_recv() {
                Ok(done) => {
                    let Some(conn) = conns.get_mut(&done.token) else {
                        continue; // connection died while the handler ran
                    };
                    conn.complete(&done.response, now);
                    // Opportunistic flush: most responses fit the socket
                    // buffer and complete without waiting for EPOLLOUT.
                    let verdict = if conn.wants_flush() {
                        conn.on_writable(now)
                    } else {
                        Verdict::Open
                    };
                    finish_step(
                        &epoll,
                        &mut conns,
                        &mut wheel,
                        done.token,
                        verdict,
                        &jobs,
                        &queue_depth,
                        &opts,
                        now,
                    );
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return, // executor pool gone
            }
        }

        // Deadline sweep: surfaced tokens are checked against their live
        // deadline (lazy wheel semantics — see TimerWheel docs).
        for token in wheel.tick(now) {
            if token == TOKEN_TICK {
                if let Some(tick) = &opts.on_tick {
                    (tick.run)();
                    wheel.insert(TOKEN_TICK, now + tick.every, now);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue; // stale entry for a closed connection
            };
            if conn.expired(now) {
                close_conn(&epoll, &mut conns, token);
            } else if let Some(deadline) = conn.deadline {
                wheel.insert(token, deadline, now);
                conn.filed = Some(deadline);
            } else {
                conn.filed = None; // Dispatched: re-filed when a deadline returns
            }
        }
    }
}

/// Accept every pending connection (level-triggered listener).
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    next_token: &mut u64,
    now: Instant,
    opts: &Arc<ServerOptions>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.len() >= opts.max_conns {
                    // Over capacity: answer 503 best-effort and drop. The
                    // write is nonblocking; a client that cannot even take
                    // 200 bytes gets a bare close.
                    let _ = stream.set_nonblocking(true);
                    let _ = (&stream).write(OVERLOADED);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1; // tokens are never reused: no ABA with late completions
                let conn = Conn::new(stream, now, Arc::clone(opts));
                if epoll
                    .add(conn.stream().as_raw_fd(), token, conn.desired_events())
                    .is_err()
                {
                    continue; // dropping the stream closes it
                }
                let registered = conn.desired_events();
                let deadline = conn.deadline;
                let mut conn = conn;
                conn.registered = registered;
                if let Some(d) = deadline {
                    wheel.insert(token, d, now);
                    conn.filed = Some(d);
                }
                conns.insert(token, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Unexpected accept failure — most importantly EMFILE /
                // ENFILE fd exhaustion. The level-triggered listener stays
                // ready while the backlog is non-empty, so returning
                // immediately would spin the reactor at 100% CPU doing
                // failed accepts. Back off briefly instead: pending
                // clients wait in the kernel backlog and existing
                // connections resume right after.
                std::thread::sleep(Duration::from_millis(50));
                return;
            }
        }
    }
}

/// Post-I/O bookkeeping shared by every path that touches a connection:
/// dispatch newly parsed requests, sync epoll interest, file deadlines,
/// or tear the connection down.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by three call sites
fn finish_step(
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    token: u64,
    verdict: Verdict,
    jobs: &Sender<Job>,
    queue_depth: &AtomicUsize,
    opts: &ServerOptions,
    now: Instant,
) {
    if verdict == Verdict::Close {
        close_conn(epoll, conns, token);
        return;
    }
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    // At most one request per connection is in flight (response ordering),
    // so this hands over at most one job.
    if let Some(request) = conn.next_job(now) {
        // Gauge-eligible jobs (see ServerOptions::queue_gauge) are counted
        // before the send so an executor (or a coalescing handler reading
        // the gauge) never observes its own job as "nothing else pending"
        // while more dispatches race in.
        let counted = (opts.queue_gauge)(&request);
        if counted {
            queue_depth.fetch_add(1, Ordering::SeqCst);
        }
        if jobs
            .send(Job {
                token,
                request,
                counted,
            })
            .is_err()
        {
            // Executor pool is gone (shutdown mid-flight).
            if counted {
                queue_depth.fetch_sub(1, Ordering::SeqCst);
            }
            close_conn(epoll, conns, token);
            return;
        }
    }
    let conn = conns.get_mut(&token).expect("still present");
    let want = conn.desired_events();
    if want != conn.registered
        && epoll
            .modify(conn.stream().as_raw_fd(), token, want)
            .is_err()
    {
        close_conn(epoll, conns, token);
        return;
    }
    conn.registered = want;
    if let Some(deadline) = conn.deadline {
        // Only re-file when the filed entry would fire too early or not at
        // all; firing late is handled lazily by the sweep.
        if conn.filed.is_none_or(|f| f > deadline) {
            wheel.insert(token, deadline, now);
            conn.filed = Some(deadline);
        }
    }
}

fn close_conn(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = epoll.delete(conn.stream().as_raw_fd());
        // Dropping the Conn closes the socket.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_roundtrip_on_a_real_socket_pair() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        epoll.add(server.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing to read yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        let bits = events[0].events;
        assert!(bits & EPOLLIN != 0);

        // MOD to write interest: a fresh socket is immediately writable.
        epoll.modify(server.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let bits = events[0].events;
        assert!(bits & EPOLLOUT != 0);
        epoll.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.fd(), TOKEN_WAKER, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no wake yet");
        waker.wake();
        waker.wake(); // coalesces
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        waker.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn timer_wheel_surfaces_deadlines_coarsely() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(600), t0);
        wheel.insert(2, t0 + Duration::from_secs(40), t0);
        // Nothing due immediately.
        assert!(wheel.tick(t0).is_empty());
        // After ~1.6 s the 600 ms deadline has surfaced, the 40 s one not.
        let due: Vec<u64> = wheel.tick(t0 + Duration::from_millis(1600));
        assert!(due.contains(&1), "{due:?}");
        assert!(!due.contains(&2), "{due:?}");
        // Far future: everything surfaces (possibly via clamped re-file).
        let due = wheel.tick(t0 + Duration::from_secs(200));
        assert!(due.contains(&2), "{due:?}");
    }

    #[test]
    fn timer_wheel_clamps_beyond_span_deadlines() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // A deadline far past the wheel span must still surface eventually
        // (the reactor re-files it on surfacing; here we just check it
        // comes out at the clamped horizon rather than being lost).
        wheel.insert(9, t0 + Duration::from_secs(10_000), t0);
        let span = WHEEL_SLOT * (WHEEL_SLOTS as u32);
        let due = wheel.tick(t0 + span + WHEEL_SLOT);
        assert!(due.contains(&9), "{due:?}");
    }
}
