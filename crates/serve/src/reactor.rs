//! Event-driven reactors: N threads, each multiplexing a shard of the
//! connections over its own raw `epoll` instance.
//!
//! No async runtime and no FFI crate are available offline, so the handful
//! of syscalls we need (`epoll_create1` / `epoll_ctl` / `epoll_wait`,
//! `eventfd`, `writev`, and the socket calls behind `SO_REUSEPORT`) are
//! declared directly as `extern "C"` against the platform libc that every
//! Rust binary on Linux already links. Everything above the syscall
//! boundary is safe Rust:
//!
//! - [`Epoll`] — an owned epoll instance with add/modify/delete/wait;
//! - [`Waker`] — an `eventfd` the executor pool writes to when a response
//!   is ready, so a reactor wakes from `epoll_wait` without a timeout
//!   race (the classic self-pipe trick, one fd instead of two);
//! - [`TimerWheel`] — a coarse hashed wheel (512 ms slots) holding every
//!   connection's next deadline. Entries are filed lazily and verified
//!   against the connection's *current* deadline when their slot comes due,
//!   so refreshing a deadline is O(1) and never has to find-and-remove;
//! - [`run`] — one reactor's event loop: accept new connections (closing
//!   with a 503 once `max_conns` is reached fleet-wide), feed
//!   readable/writable events into each connection's state machine
//!   ([`crate::conn::Conn`]), hand parsed requests to the executor pool
//!   through the fair [`Dispatcher`](crate::http::Dispatcher), queue
//!   finished responses for write-readiness-driven flushing, and reap
//!   expired connections.
//!
//! **Sharded accept.** With `--reactors N > 1` each reactor gets its own
//! listening socket bound with `SO_REUSEPORT`, so the kernel load-balances
//! accepts across reactors with zero cross-thread coordination
//! ([`AcceptRole::Shard`]). Where that bind fails (non-Linux-y kernels,
//! IPv6 targets), reactor 0 falls back to owning the single listener and
//! dealing accepted streams round-robin to its siblings over per-reactor
//! channels, waking each over its eventfd ([`AcceptRole::Owner`] /
//! [`AcceptRole::Member`]).
//!
//! **`EPOLLONESHOT` everywhere.** Every connection fd is registered
//! one-shot: the kernel disarms it on delivery, and the owning reactor
//! re-arms (`EPOLL_CTL_MOD`) only after the connection's state step
//! completes. That makes each readiness cycle race-free by construction —
//! no second event can arrive while one is being processed — which is what
//! keeps connection state transitions safe no matter which path (I/O
//! event, executor completion, handoff adoption) touched the `Conn` last.
//!
//! A reactor thread never runs a handler and never blocks on a socket:
//! slow clients cost a buffer, idle keep-alive clients cost a file
//! descriptor, and all worker threads stay available for actual request
//! execution.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::{c_int, c_uint};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::conn::{Conn, Verdict};
use crate::http::{Completion, Dispatcher, Job, ReactorStats, ServerOptions};

// ---- raw epoll / eventfd / socket FFI (no external crates; offline build) ----

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
/// Disarm the fd after one event delivery; re-armed via `EPOLL_CTL_MOD`.
const EPOLLONESHOT: u32 = 0x4000_0000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const EFD_CLOEXEC: c_int = 0x80000;

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0x800;
const SOCK_CLOEXEC: c_int = 0x80000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;

/// Mirror of `struct iovec` for [`writev`].
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct IoVec {
    pub base: *const u8,
    pub len: usize,
}

/// Mirror of `struct sockaddr_in` (16 bytes); port and address are
/// big-endian on the wire.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// Mirror of `struct epoll_event`. The kernel ABI packs this to 12 bytes on
/// x86-64 (and only there), hence the conditional `repr(packed)`.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    pub(crate) fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, len: c_uint) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_int, len: c_uint) -> c_int;
}

/// Bind `n` listening sockets to the same IPv4 address with
/// `SO_REUSEPORT`, so the kernel shards incoming connections across them.
/// Port 0 is resolved once (first socket) and reused for the rest, so all
/// shards share the ephemeral port. Any failure — including a non-IPv4
/// target — reports an error and the caller falls back to the
/// accept-and-deal topology.
pub(crate) fn reuseport_listeners(addr: &str, n: usize) -> std::io::Result<Vec<TcpListener>> {
    use std::net::{SocketAddr, ToSocketAddrs};
    let sa = addr
        .to_socket_addrs()?
        .find_map(|a| match a {
            SocketAddr::V4(v4) => Some(v4),
            SocketAddr::V6(_) => None,
        })
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "SO_REUSEPORT sharding requires an IPv4 address",
            )
        })?;
    let mut port = sa.port();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: freshly created socket fd we exclusively own; wrapping
        // first makes every error path below close it on drop.
        let listener = unsafe { TcpListener::from_raw_fd(fd) };
        let one: c_int = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            let rc = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    &one,
                    std::mem::size_of::<c_int>() as c_uint,
                )
            };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        let sin = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: u32::from(*sa.ip()).to_be(),
            sin_zero: [0; 8],
        };
        if unsafe { bind(fd, &sin, std::mem::size_of::<SockAddrIn>() as c_uint) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        if unsafe { listen(fd, 1024) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        if port == 0 {
            port = listener.local_addr()?.port();
        }
        out.push(listener);
    }
    Ok(out)
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: c_int,
}

impl Epoll {
    pub(crate) fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.fd, op, fd, arg) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    pub(crate) fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` for readiness events. Interrupted waits
    /// report zero events rather than erroring.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> std::io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wakeup handle shared by the executor pool: writing
/// bumps the counter and makes the reactor's `epoll_wait` return.
pub(crate) struct Waker {
    file: std::fs::File,
}

impl Waker {
    pub(crate) fn new() -> std::io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created eventfd we exclusively own.
        let file = unsafe { std::fs::File::from_raw_fd(fd) };
        Ok(Waker { file })
    }

    fn fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signal the reactor. A full counter (EAGAIN) means a wake is already
    /// pending, which is exactly what we want — ignore every error.
    pub(crate) fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Consume pending wake signals (nonblocking).
    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

/// Wheel granularity; deadlines are only ever late by at most one slot
/// plus one `epoll_wait` timeout, which is fine for second-scale timeouts.
const WHEEL_SLOT: Duration = Duration::from_millis(512);

/// Slots in the ring (≈131 s span). Deadlines beyond the span are clamped
/// to the last slot and re-filed when they surface — correctness never
/// depends on the span, only efficiency.
const WHEEL_SLOTS: usize = 256;

/// A coarse hashed timer wheel over connection tokens.
///
/// Insert-only: entries are *not* removed when a deadline moves or a
/// connection closes. Instead, when a slot comes due the reactor checks
/// each surfaced token against the connection's live deadline and either
/// reaps it, re-files it, or drops the stale entry. That keeps deadline
/// refreshes O(1) on the hot path at the cost of at most one spurious
/// surfacing per refresh.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_tick: now,
        }
    }

    /// File `token` to surface at (or shortly after) `deadline`.
    pub(crate) fn insert(&mut self, token: u64, deadline: Instant, now: Instant) {
        let remaining = deadline.saturating_duration_since(now);
        let ticks = (remaining.as_millis() / WHEEL_SLOT.as_millis()) as usize + 1;
        let slot = (self.cursor + ticks.min(WHEEL_SLOTS - 1)) % WHEEL_SLOTS;
        self.slots[slot].push(token);
    }

    /// Advance to `now`, returning every token whose slot came due.
    pub(crate) fn tick(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while now.saturating_duration_since(self.last_tick) >= WHEEL_SLOT {
            self.last_tick += WHEEL_SLOT;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            due.append(&mut self.slots[self.cursor]);
        }
        due
    }
}

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
/// Wheel-only token for [`ServerOptions::on_tick`]: never registered with
/// epoll, it just rides the timer wheel and is re-filed after each firing.
const TOKEN_TICK: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 3;

/// Pre-rendered response for connections over the `max_conns` cap.
const OVERLOADED: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
    Content-Type: application/json\r\nContent-Length: 36\r\n\
    Connection: close\r\n\r\n{\"error\":\"connection limit reached\"}";

/// How one reactor gets its connections (see module docs).
pub(crate) enum AcceptRole {
    /// Own `SO_REUSEPORT` listening socket (or the only listener when
    /// running single-reactor): the kernel shards accepts.
    Shard(TcpListener),
    /// Fallback topology: this reactor owns the single listener and deals
    /// accepted streams round-robin to itself and every sibling, waking
    /// each sibling over its eventfd.
    Owner {
        listener: TcpListener,
        siblings: Vec<(Sender<TcpStream>, Arc<Waker>)>,
    },
    /// Fallback topology: no listener; adopts streams dealt by the owner.
    Member(Receiver<TcpStream>),
}

/// Everything one reactor thread needs, bundled so [`run`] stays a
/// single-argument spawn target.
pub(crate) struct ReactorConfig {
    /// This reactor's index (0-based); index 0 drives `on_tick`.
    pub index: usize,
    pub role: AcceptRole,
    pub dispatcher: Arc<Dispatcher>,
    pub completions: Receiver<Completion>,
    pub waker: Arc<Waker>,
    pub shutdown: Arc<AtomicBool>,
    pub opts: Arc<ServerOptions>,
    pub queue_depth: Arc<AtomicUsize>,
    /// Per-reactor gauges exported at `/metrics`.
    pub stats: Arc<ReactorStats>,
    /// Fleet-wide open-connection count backing the `max_conns` cap.
    pub total_conns: Arc<AtomicUsize>,
}

/// One reactor's mutable state plus the shared handles its helpers need.
struct Reactor {
    index: usize,
    epoll: Epoll,
    opts: Arc<ServerOptions>,
    dispatcher: Arc<Dispatcher>,
    queue_depth: Arc<AtomicUsize>,
    stats: Arc<ReactorStats>,
    total_conns: Arc<AtomicUsize>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    /// Round-robin cursor for the `Owner` deal.
    rr: usize,
}

/// One reactor's event loop. Owns a shard of the connections, its own
/// epoll instance and timer wheel; runs until `shutdown` is set (the waker
/// is poked by `Server::shutdown` so the flag is observed promptly).
pub(crate) fn run(cfg: ReactorConfig) {
    let ReactorConfig {
        index,
        role,
        dispatcher,
        completions,
        waker,
        shutdown,
        opts,
        queue_depth,
        stats,
        total_conns,
    } = cfg;
    // Dropped on every exit path: when the last reactor leaves, the
    // dispatcher closes and the executor pool drains and exits.
    let _open = dispatcher.reactor_guard();
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("hamlet-serve reactor {index}: epoll_create1 failed: {e}");
            return;
        }
    };
    let now = Instant::now();
    if let Err(e) = epoll.add(waker.fd(), TOKEN_WAKER, EPOLLIN) {
        eprintln!("hamlet-serve reactor {index}: registering waker failed: {e}");
        return;
    }
    let listener_fd = match &role {
        AcceptRole::Shard(l) | AcceptRole::Owner { listener: l, .. } => Some(l.as_raw_fd()),
        AcceptRole::Member(_) => None,
    };
    if let Some(fd) = listener_fd {
        if let Err(e) = epoll.add(fd, TOKEN_LISTENER, EPOLLIN) {
            eprintln!("hamlet-serve reactor {index}: registering listener failed: {e}");
            return;
        }
    }
    let mut r = Reactor {
        index,
        epoll,
        opts,
        dispatcher,
        queue_depth,
        stats,
        total_conns,
        conns: HashMap::new(),
        wheel: TimerWheel::new(now),
        next_token: FIRST_CONN_TOKEN,
        rr: 0,
    };
    // Application ticks fire on exactly one reactor (the auto-demoter must
    // not run N× faster because the network plane got wider).
    if r.index == 0 {
        if let Some(tick) = &r.opts.on_tick {
            r.wheel.insert(TOKEN_TICK, now + tick.every, now);
        }
    }

    let mut events = [EpollEvent { events: 0, data: 0 }; 256];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // drops the conns; the guard drop closes the dispatcher
        }
        let n = match r.epoll.wait(&mut events, WHEEL_SLOT.as_millis() as c_int) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("hamlet-serve reactor {}: epoll_wait failed: {e}", r.index);
                return;
            }
        };
        let now = Instant::now();

        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_WAKER => waker.drain(),
                TOKEN_LISTENER => match &role {
                    AcceptRole::Shard(listener) => r.accept_ready(listener, &[], now),
                    AcceptRole::Owner { listener, siblings } => {
                        r.accept_ready(listener, siblings, now)
                    }
                    AcceptRole::Member(_) => {}
                },
                _ => {
                    let Some(conn) = r.conns.get_mut(&token) else {
                        continue; // already closed this iteration
                    };
                    // EPOLLONESHOT: delivery disarmed the fd; finish_step
                    // re-arms once the state step is done.
                    conn.armed = false;
                    let mut verdict = Verdict::Open;
                    if bits & (EPOLLERR | EPOLLHUP) != 0 {
                        // Peer is gone in both directions; nothing we queue
                        // can be delivered.
                        verdict = Verdict::Close;
                    } else {
                        if bits & EPOLLIN != 0 {
                            verdict = conn.on_readable(now);
                        }
                        if verdict == Verdict::Open && bits & EPOLLOUT != 0 {
                            verdict = conn.on_writable(now);
                        }
                    }
                    r.finish_step(token, verdict, now);
                }
            }
        }

        // Streams dealt by the owner reactor (fallback topology only); the
        // owner wakes this reactor's eventfd after each send.
        if let AcceptRole::Member(handoff) = &role {
            while let Ok(stream) = handoff.try_recv() {
                r.adopt(stream, now);
            }
        }

        // Executor completions (the waker event only interrupts the wait;
        // the channel is the actual data path).
        loop {
            match completions.try_recv() {
                Ok(done) => {
                    let Some(conn) = r.conns.get_mut(&done.token) else {
                        continue; // connection died while the handler ran
                    };
                    conn.complete(&done.response, now);
                    // Opportunistic flush: most responses fit the socket
                    // buffer and complete without waiting for EPOLLOUT.
                    let verdict = if conn.wants_flush() {
                        conn.on_writable(now)
                    } else {
                        Verdict::Open
                    };
                    r.finish_step(done.token, verdict, now);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return, // server handle gone
            }
        }

        // Deadline sweep: surfaced tokens are checked against their live
        // deadline (lazy wheel semantics — see TimerWheel docs).
        for token in r.wheel.tick(now) {
            if token == TOKEN_TICK {
                if let Some(tick) = &r.opts.on_tick {
                    (tick.run)();
                    r.wheel.insert(TOKEN_TICK, now + tick.every, now);
                }
                continue;
            }
            let Some(conn) = r.conns.get_mut(&token) else {
                continue; // stale entry for a closed connection
            };
            if conn.expired(now) {
                r.close_conn(token);
            } else if let Some(deadline) = conn.deadline {
                r.wheel.insert(token, deadline, now);
                conn.filed = Some(deadline);
            } else {
                conn.filed = None; // Dispatched: re-filed when a deadline returns
            }
        }
    }
}

impl Reactor {
    /// Accept every pending connection (level-triggered listener). With
    /// siblings (the `Owner` fallback role), deal streams round-robin
    /// across the whole fleet including this reactor.
    fn accept_ready(
        &mut self,
        listener: &TcpListener,
        siblings: &[(Sender<TcpStream>, Arc<Waker>)],
        now: Instant,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if siblings.is_empty() {
                        self.adopt(stream, now);
                        continue;
                    }
                    let target = self.rr % (siblings.len() + 1);
                    self.rr = self.rr.wrapping_add(1);
                    if target == 0 {
                        self.adopt(stream, now);
                        continue;
                    }
                    let (tx, waker) = &siblings[target - 1];
                    match tx.send(stream) {
                        Ok(()) => waker.wake(),
                        // Sibling exited (shutdown mid-flight): keep the
                        // stream local rather than dropping it.
                        Err(back) => self.adopt(back.0, now),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Unexpected accept failure — most importantly EMFILE /
                    // ENFILE fd exhaustion. The level-triggered listener stays
                    // ready while the backlog is non-empty, so returning
                    // immediately would spin the reactor at 100% CPU doing
                    // failed accepts. Back off briefly instead: pending
                    // clients wait in the kernel backlog and existing
                    // connections resume right after.
                    std::thread::sleep(Duration::from_millis(50));
                    return;
                }
            }
        }
    }

    /// Take ownership of an accepted stream: admission-check against the
    /// fleet-wide cap, register one-shot with epoll, file the idle
    /// deadline.
    fn adopt(&mut self, stream: TcpStream, now: Instant) {
        if self.total_conns.load(Ordering::SeqCst) >= self.opts.max_conns {
            // Over capacity: answer 503 best-effort and drop. The write is
            // nonblocking; a client that cannot even take 200 bytes gets a
            // bare close.
            let _ = stream.set_nonblocking(true);
            let _ = (&stream).write(OVERLOADED);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1; // tokens are never reused: no ABA with late completions
        let mut conn = Conn::new(stream, now, Arc::clone(&self.opts));
        let want = conn.desired_events();
        if self
            .epoll
            .add(conn.stream().as_raw_fd(), token, want | EPOLLONESHOT)
            .is_err()
        {
            return; // dropping the stream closes it
        }
        conn.registered = want;
        conn.armed = true;
        if let Some(d) = conn.deadline {
            self.wheel.insert(token, d, now);
            conn.filed = Some(d);
        }
        self.conns.insert(token, conn);
        self.total_conns.fetch_add(1, Ordering::SeqCst);
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Post-I/O bookkeeping shared by every path that touches a
    /// connection: dispatch newly parsed requests through the fair queue,
    /// re-arm the one-shot epoll registration, file deadlines, or tear the
    /// connection down.
    fn finish_step(&mut self, token: u64, verdict: Verdict, now: Instant) {
        if verdict == Verdict::Close {
            self.close_conn(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // At most one request per connection is in flight (response
        // ordering), so this hands over at most one job.
        let next = conn.next_job(now);
        if let Some(request) = next {
            // Gauge-eligible jobs (see ServerOptions::queue_gauge) are
            // counted before the push so an executor (or a coalescing
            // handler reading the gauge) never observes its own job as
            // "nothing else pending" while more dispatches race in.
            let counted = (self.opts.queue_gauge)(&request);
            if counted {
                self.queue_depth.fetch_add(1, Ordering::SeqCst);
            }
            let key = crate::http::fair_key(&request);
            self.dispatcher.push(
                key,
                Job {
                    reactor: self.index,
                    token,
                    request,
                    counted,
                },
            );
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.desired_events();
        // One-shot protocol: a MOD both updates interest and re-arms, so
        // it is needed whenever the kernel side is disarmed *or* the
        // interest set changed (a MOD on a still-armed fd is a harmless
        // re-arm; level-triggered, so buffered readiness fires again
        // immediately).
        if !conn.armed || want != conn.registered {
            let fd = conn.stream().as_raw_fd();
            if self.epoll.modify(fd, token, want | EPOLLONESHOT).is_err() {
                self.close_conn(token);
                return;
            }
            let conn = self.conns.get_mut(&token).expect("still present");
            conn.registered = want;
            conn.armed = true;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(deadline) = conn.deadline {
            // Only re-file when the filed entry would fire too early or
            // not at all; firing late is handled lazily by the sweep.
            if conn.filed.is_none_or(|f| f > deadline) {
                self.wheel.insert(token, deadline, now);
                conn.filed = Some(deadline);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream().as_raw_fd());
            self.total_conns.fetch_sub(1, Ordering::SeqCst);
            self.stats.connections.fetch_sub(1, Ordering::Relaxed);
            // Dropping the Conn closes the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_roundtrip_on_a_real_socket_pair() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        epoll.add(server.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing to read yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        let bits = events[0].events;
        assert!(bits & EPOLLIN != 0);

        // MOD to write interest: a fresh socket is immediately writable.
        epoll.modify(server.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let bits = events[0].events;
        assert!(bits & EPOLLOUT != 0);
        epoll.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.fd(), TOKEN_WAKER, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no wake yet");
        waker.wake();
        waker.wake(); // coalesces
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        waker.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn timer_wheel_surfaces_deadlines_coarsely() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(600), t0);
        wheel.insert(2, t0 + Duration::from_secs(40), t0);
        // Nothing due immediately.
        assert!(wheel.tick(t0).is_empty());
        // After ~1.6 s the 600 ms deadline has surfaced, the 40 s one not.
        let due: Vec<u64> = wheel.tick(t0 + Duration::from_millis(1600));
        assert!(due.contains(&1), "{due:?}");
        assert!(!due.contains(&2), "{due:?}");
        // Far future: everything surfaces (possibly via clamped re-file).
        let due = wheel.tick(t0 + Duration::from_secs(200));
        assert!(due.contains(&2), "{due:?}");
    }

    #[test]
    fn timer_wheel_clamps_beyond_span_deadlines() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // A deadline far past the wheel span must still surface eventually
        // (the reactor re-files it on surfacing; here we just check it
        // comes out at the clamped horizon rather than being lost).
        wheel.insert(9, t0 + Duration::from_secs(10_000), t0);
        let span = WHEEL_SLOT * (WHEEL_SLOTS as u32);
        let due = wheel.tick(t0 + span + WHEEL_SLOT);
        assert!(due.contains(&9), "{due:?}");
    }
}
