//! Train-to-artifact pipeline shared by the CLI and `POST /v1/train`.

use std::path::Path;

use hamlet_core::experiment::run_experiment_with_model;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::Budget;
use hamlet_datagen::emulate::EmulatorSpec;
use hamlet_datagen::onexr::{self, OneXrParams};
use hamlet_datagen::sim::GeneratedStar;

use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::CatDataset;

use crate::api::{TrainRequest, TrainResponse};
use crate::artifact::{ModelArtifact, TrainingMetadata, FORMAT_VERSION};
use crate::error::{Result, ServeError};
use crate::registry::ModelRegistry;
use crate::rollout::ObservedRow;

/// Datasets servable by name (the Table-1 emulators plus the OneXr
/// scenario).
pub const DATASETS: &[&str] = &[
    "movies", "yelp", "walmart", "expedia", "lastfm", "books", "flights", "onexr",
];

/// Resolves a dataset name to a generated star at the requested scale.
pub fn resolve_dataset(name: &str, scale: usize, seed: u64) -> Result<GeneratedStar> {
    let spec = match name.to_ascii_lowercase().as_str() {
        "movies" => EmulatorSpec::movies(),
        "yelp" => EmulatorSpec::yelp(),
        "walmart" => EmulatorSpec::walmart(),
        "expedia" => EmulatorSpec::expedia(),
        "lastfm" => EmulatorSpec::lastfm(),
        "books" => EmulatorSpec::books(),
        "flights" => EmulatorSpec::flights(),
        "onexr" => {
            // `scale` means *total* labelled examples everywhere; OneXr's
            // n_s parameter is the training-split size and the generator
            // adds n_s/4 validation + n_s/4 test, so total = 1.5 × n_s.
            return Ok(onexr::generate(OneXrParams {
                n_s: (scale.max(12) * 2) / 3,
                seed,
                ..Default::default()
            }));
        }
        other => {
            return Err(ServeError::BadRequest(format!(
                "unknown dataset `{other}` (expected one of {DATASETS:?})"
            )))
        }
    };
    Ok(spec.generate_scaled(scale, seed))
}

/// Trains per the request, persists the artifact into `dir`, registers it,
/// and reports key/path/metrics.
pub fn train_and_register(
    registry: &ModelRegistry,
    dir: &Path,
    req: &TrainRequest,
) -> Result<TrainResponse> {
    if req.name.is_empty()
        || !req
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(ServeError::BadRequest(format!(
            "model name `{}` must be non-empty [A-Za-z0-9_-]",
            req.name
        )));
    }
    let scale = req.scale.unwrap_or(2000);
    let seed = req.seed.unwrap_or(7);
    let config = req.config.clone().unwrap_or(FeatureConfig::NoJoin);
    let budget = if req.full_budget.unwrap_or(false) {
        Budget::paper()
    } else {
        Budget::quick()
    };

    let g = resolve_dataset(&req.dataset, scale, seed)?;
    let trained = run_experiment_with_model(&g, req.spec, &config, &budget)
        .map_err(|e| ServeError::Train(e.to_string()))?;

    let fingerprint = g.star.fingerprint();
    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: req.name.clone(),
        // Placeholder: register_next_version assigns the real version
        // atomically with registration.
        version: 0,
        model: trained.model,
        feature_config: config,
        contract: trained.contract,
        schema_fingerprint: fingerprint,
        metadata: TrainingMetadata {
            dataset: req.dataset.to_ascii_lowercase(),
            spec: req.spec,
            train_rows: g.n_train,
            metrics: trained.result.clone(),
        },
    };
    // Respect artifacts already on disk even when this registry was not
    // warm-loaded (the CLI path): versions are parsed from filenames, so no
    // stored model gets deserialized just to allocate a number.
    let disk_floor = ModelArtifact::max_version_on_disk(dir, &req.name) + 1;
    let (key, path) = registry.register_next_version(artifact, disk_floor, |a| a.save(dir))?;
    // The slot now has a backing file, which is what makes it demotable
    // once a newer version supersedes it.
    registry.record_origin(&key, &path);
    Ok(TrainResponse {
        key,
        path: path.display().to_string(),
        metrics: trained.result,
        schema_fingerprint: fingerprint,
    })
}

/// Warm-start incremental refresh: continues the SGD-family solve of the
/// model `name` currently resolves to, on labeled rows observed in
/// production (`/v1/observe`), and registers the result as a **held
/// candidate** — the rollout plane's shadow/canary machinery decides
/// whether it ever serves bare-name traffic. Only SGD-family models
/// (logistic regression, the MLP) support this; batch learners (trees,
/// SVMs, kNN) need a full retrain through [`train_and_register`].
pub fn train_incremental(
    registry: &ModelRegistry,
    dir: &Path,
    name: &str,
    rows: &[ObservedRow],
) -> Result<TrainResponse> {
    let base = registry.get(name)?;
    let d = base.contract.width();
    if rows.is_empty() {
        return Err(ServeError::BadRequest(format!(
            "no observed rows buffered for `{name}`; stream some through /v1/observe first"
        )));
    }
    let mut flat = Vec::with_capacity(rows.len() * d);
    let mut labels = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        if r.codes.len() != d {
            return Err(ServeError::BadRequest(format!(
                "observed row {i} has {} codes but `{}` expects {d}",
                r.codes.len(),
                base.key()
            )));
        }
        flat.extend_from_slice(&r.codes);
        labels.push(r.label);
    }
    let ds = CatDataset::new(base.contract.features().to_vec(), flat, labels)
        .map_err(|e| ServeError::Train(e.to_string()))?;
    let refreshed: AnyClassifier = match &base.model {
        AnyClassifier::LogReg(m) => m
            .fit_incremental(&ds, hamlet_ml::logreg::LogRegParams::default())
            .map_err(|e| ServeError::Train(e.to_string()))?
            .into(),
        AnyClassifier::Mlp(m) => {
            // Short refresh: a few epochs from the current weights, batch
            // hyper-parameters reused from the small preset.
            let mut params = hamlet_ml::ann::AnnParams::small(1e-4, 0.01);
            params.epochs = 5;
            m.fit_incremental(&ds, params)
                .map_err(|e| ServeError::Train(e.to_string()))?
                .into()
        }
        other => {
            return Err(ServeError::BadRequest(format!(
                "model family `{}` does not support incremental refresh \
                 (only logreg and mlp do); retrain via /v1/train instead",
                other.family()
            )))
        }
    };
    // Fresh training accuracy on the observed rows is the only honest
    // metric a refresh has; val/test carry over as unknown (-1).
    let correct = {
        let preds = refreshed.predict_batch(
            &rows
                .iter()
                .flat_map(|r| r.codes.iter().copied())
                .collect::<Vec<u32>>(),
            d,
        );
        preds
            .iter()
            .zip(rows.iter())
            .filter(|(p, r)| **p == r.label)
            .count()
    };
    let mut metrics = base.metadata.metrics.clone();
    metrics.train_accuracy = correct as f64 / rows.len() as f64;
    metrics.val_accuracy = -1.0;
    metrics.test_accuracy = -1.0;
    metrics.winner = format!(
        "warm-start refresh of {} on {} observed rows",
        base.key(),
        rows.len()
    );

    let artifact = ModelArtifact {
        format_version: FORMAT_VERSION,
        name: base.name.clone(),
        version: 0, // assigned by register_candidate
        model: refreshed,
        feature_config: base.feature_config.clone(),
        contract: base.contract.clone(),
        schema_fingerprint: base.schema_fingerprint,
        metadata: TrainingMetadata {
            dataset: base.metadata.dataset.clone(),
            spec: base.metadata.spec,
            train_rows: rows.len(),
            metrics: metrics.clone(),
        },
    };
    let disk_floor = ModelArtifact::max_version_on_disk(dir, &base.name) + 1;
    let (key, path) = registry.register_candidate(artifact, disk_floor, |a| a.save(dir))?;
    registry.record_origin(&key, &path);
    Ok(TrainResponse {
        key,
        path: path.display().to_string(),
        metrics,
        schema_fingerprint: base.schema_fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_core::model_zoo::ModelSpec;

    #[test]
    fn unknown_dataset_is_a_bad_request() {
        match resolve_dataset("mnist", 1000, 1) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("mnist")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn bad_names_are_rejected() {
        let reg = ModelRegistry::new();
        let dir = std::env::temp_dir().join("hamlet-train-rejects");
        for name in ["", "has space", "sla/sh"] {
            let req = TrainRequest {
                name: name.into(),
                dataset: "movies".into(),
                spec: ModelSpec::TreeGini,
                config: None,
                scale: None,
                seed: None,
                full_budget: None,
            };
            assert!(train_and_register(&reg, &dir, &req).is_err(), "{name:?}");
        }
    }

    #[test]
    fn trains_persists_and_versions() {
        let dir = std::env::temp_dir().join(format!("hamlet-train-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = ModelRegistry::new();
        let req = TrainRequest {
            name: "movies-tree".into(),
            dataset: "movies".into(),
            spec: ModelSpec::TreeGini,
            config: None,
            scale: Some(800),
            seed: Some(3),
            full_budget: None,
        };
        let r1 = train_and_register(&reg, &dir, &req).unwrap();
        assert_eq!(r1.key, "movies-tree@1");
        assert!(
            r1.metrics.test_accuracy > 0.5,
            "{}",
            r1.metrics.test_accuracy
        );
        // Retraining bumps the version; both artifacts exist on disk.
        let r2 = train_and_register(&reg, &dir, &req).unwrap();
        assert_eq!(r2.key, "movies-tree@2");
        assert_eq!(reg.len(), 2);
        let (reloaded, n) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(n, 2);
        assert_eq!(reloaded.get("movies-tree").unwrap().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_refresh_registers_a_held_candidate() {
        let dir = std::env::temp_dir().join(format!("hamlet-train-incr-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = ModelRegistry::new();
        let req = TrainRequest {
            name: "movies-lr".into(),
            dataset: "movies".into(),
            spec: ModelSpec::LogRegL1,
            config: None,
            scale: Some(400),
            seed: Some(3),
            full_budget: None,
        };
        let r1 = train_and_register(&reg, &dir, &req).unwrap();
        assert_eq!(r1.key, "movies-lr@1");
        let base = reg.get("movies-lr").unwrap();

        // Fabricate observed rows from the contract (any in-domain codes).
        let rows: Vec<ObservedRow> = (0..60)
            .map(|i| ObservedRow {
                codes: base
                    .contract
                    .features()
                    .iter()
                    .map(|f| (i as u32) % f.cardinality)
                    .collect(),
                label: i % 2 == 0,
            })
            .collect();
        let r2 = train_incremental(&reg, &dir, "movies-lr", &rows).unwrap();
        assert_eq!(r2.key, "movies-lr@2");
        assert!(r2.metrics.winner.contains("warm-start"));
        // Candidate is held: bare-name traffic still resolves to v1.
        assert_eq!(reg.get("movies-lr").unwrap().version, 1);
        assert_eq!(reg.get("movies-lr@2").unwrap().version, 2);
        // A wrong-width row is rejected before any fitting happens.
        let bad = vec![ObservedRow {
            codes: vec![0],
            label: true,
        }];
        assert!(train_incremental(&reg, &dir, "movies-lr", &bad).is_err());
        // Batch learners refuse the refresh.
        let tree_req = TrainRequest {
            name: "movies-tr".into(),
            spec: ModelSpec::TreeGini,
            ..req
        };
        train_and_register(&reg, &dir, &tree_req).unwrap();
        let err = train_incremental(&reg, &dir, "movies-tr", &rows).unwrap_err();
        assert!(err.to_string().contains("incremental"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
