//! Safe rollout plane: shadow → canary → promote with guardrails.
//!
//! The paper's verdict — avoid the KFK join — is only safe *inside* a
//! tuple-ratio envelope, and a freshly trained artifact carries no live
//! evidence that it behaves. This module makes version cutover earn its
//! way instead of happening instantly:
//!
//! ```text
//!            start                    guardrails clear        guardrails clear
//!   (held) ───────────▶ SHADOW ─────────────────────▶ CANARY ─────────────▶ promoted
//!   candidate           mirrored traffic,             slice of live           (adopt:
//!   registered          responses discarded,          traffic served          latest
//!   invisible           agreement + latency           for real                cut over)
//!                       scored vs incumbent              │
//!                           │                             │ any guardrail trips
//!                           └──────────────┬──────────────┘
//!                                          ▼
//!                                     ROLLED BACK
//!                        (demote + `Demote`/`Drift` audit events,
//!                         incumbent keeps serving throughout)
//! ```
//!
//! - **Shadow**: live `/v1/predict` batches against the incumbent are
//!   mirrored into a second coalescer lane keyed by the candidate, after
//!   the real responses have been sent. The mirrored responses are
//!   discarded; per-row agreement with the incumbent and candidate latency
//!   accumulate in the candidate's [`ModelStats`].
//! - **Canary**: a configurable percent of bare-name requests — selected
//!   by hashing the coalescer lane key with the row codes — is served by
//!   the candidate for real; the rest keeps shadow-scoring.
//! - **Auto-promote**: only when live agreement, canary error ratio and
//!   p99 clear the [`GuardrailConfig`] over minimum sample counts.
//! - **Auto-rollback**: the instant any guardrail trips, the candidate is
//!   demoted back to its lazy slot and the incumbent (which never stopped
//!   serving bare-name traffic) simply continues.
//!
//! Every transition is journaled to a dedicated CRC-framed [`EventLog`]
//! under `<artifact-dir>/rollout/`, so a server restart mid-rollout
//! resumes the state machine (with counters reset — live evidence does not
//! survive a restart, by design). Labeled production rows stream in via
//! `POST /v1/observe` into an [`ObserveStore`] (bounded ring + crash-safe
//! on-disk buffer reusing the event log's frame format); they feed both
//! warm-start candidate training (`train_incremental`) and the **drift
//! leg**: a timer-driven re-run of the paper's avoid-join decision rule
//! over live FK cardinalities, appending `Drift` audit events and
//! optionally freezing auto-promotion while the no-join artifact is
//! outside its safety envelope.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use hamlet_core::advisor::{advise_dims, Advice, DimStats};
use hamlet_ml::dataset::Provenance;

use crate::artifact::ModelArtifact;
use crate::container::crc32;
use crate::error::{Result, ServeError};
use crate::registry::ModelRegistry;
use crate::telemetry::eventlog::{scan_frames, write_frame};
use crate::telemetry::{Event, EventKind, EventLog, ModelStats, Telemetry};

/// Guardrails a candidate must clear to advance, and the knobs of the
/// drift advisor. All server-configurable (`hamlet-serve serve
/// --canary-slice --guardrail-*`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardrailConfig {
    /// Percent (0–100) of bare-name traffic the canary serves.
    pub canary_slice: u8,
    /// Minimum mirrored rows scored before shadow can graduate.
    pub min_shadow_rows: u64,
    /// Minimum canary-served requests before auto-promote.
    pub min_canary_requests: u64,
    /// Minimum live agreement with the incumbent (both phases).
    pub min_agreement: f64,
    /// Maximum canary error (panic-500) ratio.
    pub max_error_ratio: f64,
    /// Candidate p99 must stay within this multiple of the incumbent's.
    pub max_p99_ratio: f64,
    /// Freeze auto-promotion while the drift advisor reports the artifact
    /// outside its safety envelope.
    pub drift_freeze: bool,
    /// Minimum observed rows before a drift verdict is attempted.
    pub drift_min_rows: usize,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        Self {
            canary_slice: 10,
            min_shadow_rows: 200,
            min_canary_requests: 50,
            min_agreement: 0.98,
            max_error_ratio: 0.02,
            max_p99_ratio: 3.0,
            drift_freeze: true,
            drift_min_rows: 50,
        }
    }
}

/// Rollout phase of the active candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Mirrored traffic only; responses discarded.
    Shadow,
    /// A slice of live traffic served for real.
    Canary,
}

impl Phase {
    /// Lowercase tag used in journal records and `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Shadow => "shadow",
            Phase::Canary => "canary",
        }
    }
}

const PHASE_SHADOW: u64 = 1;
const PHASE_CANARY: u64 = 2;

/// The in-flight rollout: one candidate at a time, process-wide.
#[derive(Debug)]
pub struct ActiveRollout {
    /// Bare registry name whose traffic is mirrored/sliced.
    pub name: String,
    /// Candidate key `name@version` (held: invisible to bare-name lookups).
    pub candidate: String,
    /// Incumbent key `name@version` that keeps serving throughout.
    pub incumbent: String,
    /// Canary traffic slice in percent.
    pub slice: u8,
    phase: AtomicU64,
    canary_requests: AtomicU64,
    canary_errors: AtomicU64,
}

impl ActiveRollout {
    fn new(name: &str, candidate: &str, incumbent: &str, slice: u8, phase: Phase) -> Self {
        Self {
            name: name.into(),
            candidate: candidate.into(),
            incumbent: incumbent.into(),
            slice,
            phase: AtomicU64::new(match phase {
                Phase::Shadow => PHASE_SHADOW,
                Phase::Canary => PHASE_CANARY,
            }),
            canary_requests: AtomicU64::new(0),
            canary_errors: AtomicU64::new(0),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        match self.phase.load(Ordering::Relaxed) {
            PHASE_CANARY => Phase::Canary,
            _ => Phase::Shadow,
        }
    }

    /// Counts one canary-served request.
    pub fn count_canary_request(&self) {
        self.canary_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one canary request that died in a panic-500.
    pub fn count_canary_error(&self) {
        self.canary_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Context attached to a mirrored (shadow) predict part: the incumbent's
/// labels to score against, and the candidate's stats cell to fold the
/// agreement into.
#[derive(Debug)]
pub struct ShadowCtx {
    /// Incumbent labels for the mirrored rows, in row order.
    pub expected: Vec<bool>,
    /// The candidate's per-version stats cell.
    pub stats: Arc<ModelStats>,
}

/// One labeled production row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedRow {
    /// Contract-order categorical codes.
    pub codes: Vec<u32>,
    /// Observed ground-truth label.
    pub label: bool,
}

/// Per-name cap on buffered rows (both the ring and what a reload keeps).
pub const OBSERVE_CAP_ROWS: usize = 65_536;

/// On-disk buffer size that triggers a compacting rewrite from the ring.
const OBSERVE_COMPACT_BYTES: u64 = 8 << 20;

struct ObserveBuffer {
    rows: VecDeque<ObservedRow>,
    file: std::fs::File,
    file_bytes: u64,
}

/// Bounded in-memory + crash-safe on-disk buffer of labeled rows, one
/// file per model name under `<artifact-dir>/observe/`, framed with the
/// event log's `[len][crc32][payload]` record format. On open, a torn
/// tail (crash mid-append) is truncated away exactly like the event log's
/// recovery path; complete records are never lost.
pub struct ObserveStore {
    dir: PathBuf,
    cap_rows: usize,
    inner: Mutex<HashMap<String, ObserveBuffer>>,
    total_rows: AtomicU64,
}

impl std::fmt::Debug for ObserveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserveStore")
            .field("dir", &self.dir)
            .field("cap_rows", &self.cap_rows)
            .finish_non_exhaustive()
    }
}

fn encode_observed(buf: &mut Vec<u8>, row: &ObservedRow) {
    let mut payload = Vec::with_capacity(5 + row.codes.len() * 4);
    payload.push(u8::from(row.label));
    payload.extend_from_slice(&(row.codes.len() as u32).to_le_bytes());
    for &c in &row.codes {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    write_frame(buf, &payload);
}

fn decode_observed(payload: &[u8]) -> Option<ObservedRow> {
    if payload.len() < 5 {
        return None;
    }
    let label = payload[0] != 0;
    let d = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
    let body = &payload[5..];
    if body.len() != d * 4 {
        return None;
    }
    let codes = body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Some(ObservedRow { codes, label })
}

impl ObserveStore {
    /// Opens (lazily — per-name files load on first touch) a store rooted
    /// at `dir`.
    pub fn open(dir: &Path, cap_rows: usize) -> ObserveStore {
        ObserveStore {
            dir: dir.to_path_buf(),
            cap_rows: cap_rows.max(1),
            inner: Mutex::new(HashMap::new()),
            total_rows: AtomicU64::new(0),
        }
    }

    fn file_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.obs"))
    }

    /// Loads (or creates) the buffer for `name`, recovering the valid
    /// prefix of its file and truncating any torn tail.
    fn load(&self, name: &str) -> Result<ObserveBuffer> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| ServeError::io(format!("creating {}", self.dir.display()), e))?;
        let path = self.file_path(name);
        let ctx = |e| ServeError::io(format!("opening {}", path.display()), e);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(ctx)?;
        let bytes = std::fs::read(&path).map_err(ctx)?;
        let mut rows = VecDeque::new();
        let valid = scan_frames(&bytes, |payload| match decode_observed(payload) {
            Some(row) => {
                if rows.len() == self.cap_rows {
                    rows.pop_front();
                }
                rows.push_back(row);
                true
            }
            None => false,
        });
        if valid < bytes.len() {
            file.set_len(valid as u64).map_err(ctx)?;
        }
        self.total_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(ObserveBuffer {
            rows,
            file,
            file_bytes: valid as u64,
        })
    }

    /// Appends labeled rows for `name` (ring + durable file, one fsync per
    /// call); returns how many rows are now buffered for the name.
    pub fn append(&self, name: &str, rows: &[ObservedRow]) -> Result<usize> {
        let mut inner = self.inner.lock().expect("observe lock");
        if !inner.contains_key(name) {
            let buf = self.load(name)?;
            inner.insert(name.to_string(), buf);
        }
        let buf = inner.get_mut(name).expect("just inserted");
        let mut framed = Vec::new();
        for row in rows {
            encode_observed(&mut framed, row);
            if buf.rows.len() == self.cap_rows {
                buf.rows.pop_front();
            }
            buf.rows.push_back(row.clone());
        }
        let path = self.file_path(name);
        let ctx = |e| ServeError::io(format!("appending {}", path.display()), e);
        buf.file.write_all(&framed).map_err(ctx)?;
        buf.file.sync_data().map_err(ctx)?;
        buf.file_bytes += framed.len() as u64;
        self.total_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        if buf.file_bytes > OBSERVE_COMPACT_BYTES {
            self.compact(name, buf)?;
        }
        Ok(buf.rows.len())
    }

    /// Rewrites the on-disk buffer from the in-memory ring (temp file +
    /// atomic rename), dropping rows the ring has already evicted.
    fn compact(&self, name: &str, buf: &mut ObserveBuffer) -> Result<()> {
        let path = self.file_path(name);
        let tmp = self.dir.join(format!(".{name}.obs.tmp"));
        let ctx = |e| ServeError::io(format!("compacting {}", path.display()), e);
        let mut framed = Vec::new();
        for row in &buf.rows {
            encode_observed(&mut framed, row);
        }
        let mut f = std::fs::File::create(&tmp).map_err(ctx)?;
        f.write_all(&framed).map_err(ctx)?;
        f.sync_all().map_err(ctx)?;
        std::fs::rename(&tmp, &path).map_err(ctx)?;
        buf.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(ctx)?;
        buf.file_bytes = framed.len() as u64;
        Ok(())
    }

    /// A copy of the buffered rows for `name` (loading its file on first
    /// touch; an unreadable or absent buffer reads as empty).
    pub fn snapshot(&self, name: &str) -> Vec<ObservedRow> {
        let mut inner = self.inner.lock().expect("observe lock");
        if !inner.contains_key(name) {
            match self.load(name) {
                Ok(buf) => {
                    inner.insert(name.to_string(), buf);
                }
                Err(_) => return Vec::new(),
            }
        }
        inner[name].rows.iter().cloned().collect()
    }

    /// Names with at least one buffered row (touched this process).
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("observe lock");
        let mut names: Vec<String> = inner
            .iter()
            .filter(|(_, b)| !b.rows.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Rows currently buffered for `name`.
    pub fn buffered(&self, name: &str) -> usize {
        let inner = self.inner.lock().expect("observe lock");
        inner.get(name).map_or(0, |b| b.rows.len())
    }

    /// Total rows accepted since boot (including reloaded ones).
    pub fn total_rows(&self) -> u64 {
        self.total_rows.load(Ordering::Relaxed)
    }
}

/// Test-only fault-injection knobs, seeded once from the environment at
/// warm boot (so parallel tests never race on `set_var`).
#[derive(Debug, Clone, Default)]
pub struct Faults {
    /// `HAMLET_FAULT_PREDICT_PANIC=<key>`: panic before executing a batch
    /// for this exact artifact key (exercises panic containment).
    pub predict_panic: Option<String>,
    /// `HAMLET_FAULT_FLIP_LABELS=<key>`: invert every label this artifact
    /// key computes (a deliberately degraded candidate).
    pub flip_labels: Option<String>,
}

impl Faults {
    /// Reads the knobs from the environment.
    pub fn from_env() -> Faults {
        let non_empty =
            |v: std::result::Result<String, std::env::VarError>| v.ok().filter(|s| !s.is_empty());
        Faults {
            predict_panic: non_empty(std::env::var("HAMLET_FAULT_PREDICT_PANIC")),
            flip_labels: non_empty(std::env::var("HAMLET_FAULT_FLIP_LABELS")),
        }
    }

    /// Panics iff the panic knob names `key`.
    pub fn maybe_panic(&self, key: &str) {
        if self.predict_panic.as_deref() == Some(key) {
            panic!("injected predict panic for `{key}`");
        }
    }

    /// Flips `labels` in place iff the flip knob names `key`.
    pub fn maybe_flip(&self, key: &str, labels: &mut [bool]) {
        if self.flip_labels.as_deref() == Some(key) {
            for l in labels.iter_mut() {
                *l = !*l;
            }
        }
    }
}

/// One journal record: the JSON carried in a `Rollout` event's detail
/// field, replayed at boot to restore an in-flight rollout.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct JournalRecord {
    /// `start` | `canary` | `promote` | `rollback` | `abort`.
    action: String,
    candidate: String,
    incumbent: String,
    slice: u8,
    /// Present on `rollback` (the tripped guardrail).
    reason: Option<String>,
}

/// Point-in-time rollout-plane counters for `/metrics`, `/v1/stats` and
/// the `rollout status` CLI.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct RolloutSnapshot {
    /// Whether a rollout is in flight.
    pub active: bool,
    /// Bare name under rollout.
    pub model: Option<String>,
    /// Candidate key.
    pub candidate: Option<String>,
    /// Incumbent key.
    pub incumbent: Option<String>,
    /// `shadow` | `canary` when active.
    pub phase: Option<String>,
    /// Canary traffic slice percent.
    pub slice: u8,
    /// Auto-promotion frozen by the drift advisor.
    pub frozen: bool,
    /// Requests served by the canary so far.
    pub canary_requests: u64,
    /// Canary requests that died in a panic-500.
    pub canary_errors: u64,
    /// Drift-advisor runs since boot.
    pub drift_checks: u64,
    /// Drift verdicts (safety envelope left) since boot.
    pub drift_events: u64,
    /// Auto-promotions since boot.
    pub promotions: u64,
    /// Auto-rollbacks (and aborts) since boot.
    pub rollbacks: u64,
    /// Labeled rows accepted by `/v1/observe` since boot.
    pub observe_rows: u64,
}

/// The rollout state machine + drift advisor. One per server, rooted in
/// the artifact directory (`rollout/` journal, `observe/` buffers).
#[derive(Debug)]
pub struct RolloutPlane {
    journal: Option<EventLog>,
    guardrails: GuardrailConfig,
    active: RwLock<Option<Arc<ActiveRollout>>>,
    /// The observed-row buffer feeding drift checks and warm-start fits.
    pub observe: ObserveStore,
    frozen: AtomicBool,
    drift_checks: AtomicU64,
    drift_events: AtomicU64,
    promotions: AtomicU64,
    rollbacks: AtomicU64,
}

impl RolloutPlane {
    /// Opens the plane under `artifact_dir` and replays the journal tail
    /// (the in-flight rollout, if the process died mid-flight, is restored
    /// by [`RolloutPlane::resume`] once the registry exists).
    pub fn open(artifact_dir: &Path, guardrails: GuardrailConfig) -> Result<RolloutPlane> {
        let journal = EventLog::open(&artifact_dir.join("rollout"))?;
        Ok(RolloutPlane {
            journal: Some(journal),
            guardrails,
            active: RwLock::new(None),
            observe: ObserveStore::open(&artifact_dir.join("observe"), OBSERVE_CAP_ROWS),
            frozen: AtomicBool::new(false),
            drift_checks: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        })
    }

    /// A plane with no durable journal and a process-unique observe
    /// directory (lazily created on first append) — for tests and
    /// library use where nothing should touch a shared disk location.
    pub fn in_memory(guardrails: GuardrailConfig) -> RolloutPlane {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hamlet-rollout-mem-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        RolloutPlane {
            journal: None,
            guardrails,
            active: RwLock::new(None),
            observe: ObserveStore::open(&dir, OBSERVE_CAP_ROWS),
            frozen: AtomicBool::new(false),
            drift_checks: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }

    /// The configured guardrails.
    pub fn guardrails(&self) -> &GuardrailConfig {
        &self.guardrails
    }

    /// Whether the drift advisor currently freezes auto-promotion.
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }

    /// The in-flight rollout, if any.
    pub fn active(&self) -> Option<Arc<ActiveRollout>> {
        self.active.read().expect("rollout lock").clone()
    }

    /// Replays the journal and restores an in-flight rollout: the
    /// candidate goes back on **hold** (warm-load made the highest on-disk
    /// version the latest, which mid-rollout is exactly wrong) and the
    /// phase resumes where the journal left off, with live counters reset
    /// — evidence does not survive a restart, by design. Call once at warm
    /// boot, after the registry is loaded.
    pub fn resume(&self, registry: &ModelRegistry, telemetry: &Telemetry) {
        let Some(journal) = &self.journal else {
            return;
        };
        let tail = match journal.tail(usize::MAX) {
            Ok(events) => tail_records(&tail_rollout_events(events)),
            Err(_) => return,
        };
        let Some((rec, phase)) = tail else {
            return;
        };
        // The rollout only resumes if both versions still resolve; a
        // deleted candidate degenerates to "no rollout" (the journal keeps
        // the history either way).
        if registry.get(&rec.candidate).is_err() || registry.get(&rec.incumbent).is_err() {
            return;
        }
        if registry.hold(&rec.candidate).is_err() {
            return;
        }
        let name = rec
            .candidate
            .rsplit_once('@')
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| rec.candidate.clone());
        let active = Arc::new(ActiveRollout::new(
            &name,
            &rec.candidate,
            &rec.incumbent,
            rec.slice,
            phase,
        ));
        *self.active.write().expect("rollout lock") = Some(active);
        telemetry.record_event(
            EventKind::Rollout,
            &name,
            &format!(
                "resumed {} rollout of `{}` from journal after restart",
                phase.name(),
                rec.candidate
            ),
        );
    }

    /// Appends a journal record and mirrors it into the telemetry audit
    /// stream (ring + durable event log).
    fn journal(&self, telemetry: &Telemetry, name: &str, rec: &JournalRecord) {
        let detail = serde_json::to_string(rec).unwrap_or_else(|_| rec.action.clone());
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(&Event::now(EventKind::Rollout, name, &detail)) {
                eprintln!("rollout journal append failed: {e}");
            }
        }
        telemetry.record_event(EventKind::Rollout, name, &detail);
    }

    /// Starts a rollout: `candidate_key` (an exact `name@version`) enters
    /// shadow against the current latest version of its name. If the
    /// candidate currently *is* the latest (e.g. it was just trained
    /// through `/v1/train`), it is first put on hold so the prior version
    /// resumes serving bare-name traffic for the duration.
    pub fn start(
        &self,
        registry: &ModelRegistry,
        telemetry: &Telemetry,
        candidate_key: &str,
        slice: Option<u8>,
    ) -> Result<RolloutSnapshot> {
        if self.active().is_some() {
            return Err(ServeError::BadRequest(
                "a rollout is already active; abort it first".into(),
            ));
        }
        let candidate = registry.get(candidate_key)?;
        let cand_key = candidate.key();
        let name = candidate.name.clone();
        // If the candidate is what `name` currently resolves to, step it
        // aside so an incumbent exists to mirror against.
        if registry.get(&name).is_ok_and(|a| a.key() == cand_key) {
            registry.hold(&cand_key)?;
        }
        let incumbent = registry.get(&name).map_err(|_| {
            ServeError::BadRequest(format!(
                "candidate `{cand_key}` has no incumbent to shadow (it is the only version of `{name}`)"
            ))
        })?;
        if incumbent.key() == cand_key {
            return Err(ServeError::BadRequest(format!(
                "candidate `{cand_key}` is already the serving version"
            )));
        }
        if incumbent.feature_fingerprint() != candidate.feature_fingerprint() {
            return Err(ServeError::BadRequest(format!(
                "candidate `{cand_key}` and incumbent `{}` disagree on the feature contract; \
                 mirrored traffic would not validate",
                incumbent.key()
            )));
        }
        let slice = slice.unwrap_or(self.guardrails.canary_slice).min(100);
        let rec = JournalRecord {
            action: "start".into(),
            candidate: cand_key.clone(),
            incumbent: incumbent.key(),
            slice,
            reason: None,
        };
        self.journal(telemetry, &name, &rec);
        let active = Arc::new(ActiveRollout::new(
            &name,
            &cand_key,
            &incumbent.key(),
            slice,
            Phase::Shadow,
        ));
        *self.active.write().expect("rollout lock") = Some(active);
        Ok(self.snapshot())
    }

    /// Operator abort: clears the rollout without demoting the candidate.
    pub fn abort(&self, telemetry: &Telemetry) -> Result<RolloutSnapshot> {
        let Some(active) = self.active.write().expect("rollout lock").take() else {
            return Err(ServeError::BadRequest("no rollout is active".into()));
        };
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        let rec = JournalRecord {
            action: "abort".into(),
            candidate: active.candidate.clone(),
            incumbent: active.incumbent.clone(),
            slice: active.slice,
            reason: Some("operator abort".into()),
        };
        self.journal(telemetry, &active.name, &rec);
        Ok(self.snapshot())
    }

    /// Auto-rollback: journal + audit events, demote the candidate back to
    /// its lazy slot (the incumbent never stopped serving), and clear the
    /// rollout.
    fn rollback(
        &self,
        registry: &ModelRegistry,
        telemetry: &Telemetry,
        active: &ActiveRollout,
        reason: &str,
    ) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        let rec = JournalRecord {
            action: "rollback".into(),
            candidate: active.candidate.clone(),
            incumbent: active.incumbent.clone(),
            slice: active.slice,
            reason: Some(reason.into()),
        };
        self.journal(telemetry, &active.name, &rec);
        // The live evidence itself is a drift signal: the no-join artifact
        // stopped behaving on observed traffic.
        self.drift_events.fetch_add(1, Ordering::Relaxed);
        telemetry.record_event(
            EventKind::Drift,
            &active.candidate,
            &format!("candidate rolled back on live evidence: {reason}"),
        );
        // Demote releases the candidate's resident payload; an unpersisted
        // candidate (no backing file) just stays held, which is equally
        // out of traffic.
        if let Err(e) = registry.demote(&active.candidate) {
            telemetry.record_event(
                EventKind::Rollout,
                &active.name,
                &format!("rollback demote of `{}` skipped: {e}", active.candidate),
            );
        }
        *self.active.write().expect("rollout lock") = None;
    }

    /// Graduates shadow → canary.
    fn graduate(&self, telemetry: &Telemetry, active: &ActiveRollout) {
        active.phase.store(PHASE_CANARY, Ordering::Relaxed);
        let rec = JournalRecord {
            action: "canary".into(),
            candidate: active.candidate.clone(),
            incumbent: active.incumbent.clone(),
            slice: active.slice,
            reason: None,
        };
        self.journal(telemetry, &active.name, &rec);
    }

    /// Auto-promote: the candidate becomes the latest for its name.
    fn promote(&self, registry: &ModelRegistry, telemetry: &Telemetry, active: &ActiveRollout) {
        if let Err(e) = registry.adopt(&active.candidate) {
            // Candidate vanished mid-flight (operator delete): treat as a
            // rollback so the plane never wedges.
            self.rollback(registry, telemetry, active, &format!("adopt failed: {e}"));
            return;
        }
        self.promotions.fetch_add(1, Ordering::Relaxed);
        let rec = JournalRecord {
            action: "promote".into(),
            candidate: active.candidate.clone(),
            incumbent: active.incumbent.clone(),
            slice: active.slice,
            reason: None,
        };
        self.journal(telemetry, &active.name, &rec);
        *self.active.write().expect("rollout lock") = None;
    }

    /// One guardrail-evaluation tick (the timer wheel drives this ~1/s;
    /// tests call it directly). Evaluates the active rollout against the
    /// guardrails and performs at most one transition.
    pub fn tick(&self, registry: &ModelRegistry, telemetry: &Telemetry) {
        let Some(active) = self.active() else {
            return;
        };
        let g = &self.guardrails;
        let snap = telemetry.model(&active.candidate).snapshot();
        let inc_snap = telemetry.model(&active.incumbent).snapshot();

        // Agreement and p99 guardrails apply in both phases: shadow
        // mirroring keeps scoring the non-canary traffic during canary.
        let enough_shadow = snap.shadow_rows >= g.min_shadow_rows;
        if enough_shadow {
            let agreement = snap.shadow_agreement().unwrap_or(1.0);
            if agreement < g.min_agreement {
                self.rollback(
                    registry,
                    telemetry,
                    &active,
                    &format!(
                        "shadow agreement {agreement:.4} < {:.4} over {} rows",
                        g.min_agreement, snap.shadow_rows
                    ),
                );
                return;
            }
        }
        if let (Some(cand_p99), Some(inc_p99)) = (
            snap.hist.percentile_ms(0.99),
            inc_snap.hist.percentile_ms(0.99),
        ) {
            if enough_shadow && cand_p99 > inc_p99 * g.max_p99_ratio {
                self.rollback(
                    registry,
                    telemetry,
                    &active,
                    &format!(
                        "candidate p99 {cand_p99:.2}ms > {:.1}x incumbent p99 {inc_p99:.2}ms",
                        g.max_p99_ratio
                    ),
                );
                return;
            }
        }

        match active.phase() {
            Phase::Shadow => {
                if enough_shadow && !self.frozen() {
                    self.graduate(telemetry, &active);
                }
            }
            Phase::Canary => {
                let requests = active.canary_requests.load(Ordering::Relaxed);
                let errors = active.canary_errors.load(Ordering::Relaxed);
                if requests >= 10 {
                    let ratio = errors as f64 / requests as f64;
                    if ratio > g.max_error_ratio {
                        self.rollback(
                            registry,
                            telemetry,
                            &active,
                            &format!(
                                "canary error ratio {ratio:.4} > {:.4} over {requests} requests",
                                g.max_error_ratio
                            ),
                        );
                        return;
                    }
                }
                if requests >= g.min_canary_requests && enough_shadow && !self.frozen() {
                    self.promote(registry, telemetry, &active);
                }
            }
        }
    }

    /// The drift leg: re-runs the paper's avoid-join decision rule over
    /// the observe buffer for every name with observed rows, using **live**
    /// FK cardinalities (distinct codes actually seen) in place of the
    /// training-time dimension sizes. A `RetainJoin` verdict on any
    /// closed-domain FK means the artifact has left its safety envelope:
    /// a `Drift` audit event is appended and (configurably) auto-promotion
    /// freezes until the envelope is recovered.
    pub fn drift_check(&self, registry: &ModelRegistry, telemetry: &Telemetry) {
        let mut any_drifted = false;
        for name in self.observe.names() {
            self.drift_checks.fetch_add(1, Ordering::Relaxed);
            let rows = self.observe.snapshot(&name);
            if rows.len() < self.guardrails.drift_min_rows {
                continue;
            }
            let Ok(artifact) = registry.get(&name) else {
                continue;
            };
            let contract = &artifact.contract;
            let d = contract.width();
            let mut dims = Vec::new();
            for (j, f) in contract.features().iter().enumerate() {
                if !matches!(
                    f.provenance,
                    Provenance::ForeignKey { .. } | Provenance::Foreign { .. }
                ) {
                    continue;
                }
                let distinct: HashSet<u32> = rows
                    .iter()
                    .filter(|r| r.codes.len() == d)
                    .map(|r| r.codes[j])
                    .collect();
                dims.push(DimStats {
                    name: f.name.clone(),
                    n_rows: distinct.len(),
                    open_domain: contract.is_open(j),
                });
            }
            if dims.is_empty() {
                continue;
            }
            let family = artifact.metadata.spec.family();
            let report = advise_dims(&dims, rows.len(), family);
            if !report.all_avoidable() {
                any_drifted = true;
                self.drift_events.fetch_add(1, Ordering::Relaxed);
                let retained: Vec<String> = report
                    .dimensions
                    .iter()
                    .filter(|dd| dd.advice == Advice::RetainJoin)
                    .map(|dd| {
                        format!(
                            "{} (tuple ratio {:.2} < {:.0})",
                            dd.dimension, dd.tuple_ratio, dd.threshold
                        )
                    })
                    .collect();
                telemetry.record_event(
                    EventKind::Drift,
                    &artifact.key(),
                    &format!(
                        "live tuple ratio left the {:?} safety envelope over {} observed rows: {}",
                        family,
                        rows.len(),
                        retained.join(", ")
                    ),
                );
            }
        }
        let freeze = any_drifted && self.guardrails.drift_freeze;
        self.frozen.store(freeze, Ordering::Relaxed);
    }

    /// Routes one bare-name predict request: returns the candidate
    /// artifact when `name` is mid-canary and the request hashes into the
    /// slice. The hash folds the candidate's coalescer lane key with the
    /// row codes, so routing is deterministic per request but uniform
    /// across them.
    pub fn canary_route(
        &self,
        registry: &ModelRegistry,
        served: &ModelArtifact,
        rows: &[u32],
    ) -> Option<(Arc<ActiveRollout>, Arc<ModelArtifact>)> {
        let active = self.active()?;
        if active.phase() != Phase::Canary
            || served.name != active.name
            || served.key() == active.candidate
        {
            return None;
        }
        let mut seed = crc32(active.candidate.as_bytes());
        let mut bytes = Vec::with_capacity(rows.len() * 4 + 4);
        bytes.extend_from_slice(&seed.to_le_bytes());
        for &c in rows {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        seed = crc32(&bytes);
        if seed % 100 >= u32::from(active.slice) {
            return None;
        }
        let candidate = registry.get(&active.candidate).ok()?;
        if candidate.feature_fingerprint() != served.feature_fingerprint() {
            return None;
        }
        Some((active, candidate))
    }

    /// Whether batches served by `artifact` should be mirrored into the
    /// candidate's lane (any active phase; the candidate itself and
    /// already-mirrored parts are excluded by the caller).
    pub fn mirror_target(&self, artifact: &ModelArtifact) -> Option<Arc<ActiveRollout>> {
        let active = self.active()?;
        (artifact.name == active.name && artifact.key() != active.candidate).then_some(active)
    }

    /// Point-in-time counters.
    pub fn snapshot(&self) -> RolloutSnapshot {
        let active = self.active();
        RolloutSnapshot {
            active: active.is_some(),
            model: active.as_ref().map(|a| a.name.clone()),
            candidate: active.as_ref().map(|a| a.candidate.clone()),
            incumbent: active.as_ref().map(|a| a.incumbent.clone()),
            phase: active.as_ref().map(|a| a.phase().name().into()),
            slice: active.as_ref().map_or(0, |a| a.slice),
            frozen: self.frozen(),
            canary_requests: active
                .as_ref()
                .map_or(0, |a| a.canary_requests.load(Ordering::Relaxed)),
            canary_errors: active
                .as_ref()
                .map_or(0, |a| a.canary_errors.load(Ordering::Relaxed)),
            drift_checks: self.drift_checks.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            observe_rows: self.observe.total_rows(),
        }
    }
}

/// Filters an event list down to rollout journal records.
fn tail_rollout_events(events: Vec<Event>) -> Vec<Event> {
    events
        .into_iter()
        .filter(|e| e.kind == EventKind::Rollout)
        .collect()
}

/// Folds journal records to the in-flight rollout at the tail, if any.
fn tail_records(events: &[Event]) -> Option<(JournalRecord, Phase)> {
    let mut state: Option<(JournalRecord, Phase)> = None;
    for e in events {
        let Ok(rec) = serde_json::from_str::<JournalRecord>(&e.detail) else {
            continue;
        };
        match rec.action.as_str() {
            "start" => state = Some((rec, Phase::Shadow)),
            "canary" => {
                if let Some((cur, phase)) = &mut state {
                    if cur.candidate == rec.candidate {
                        *phase = Phase::Canary;
                    }
                }
            }
            "promote" | "rollback" | "abort" => state = None,
            _ => {}
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests::toy_artifact;
    use crate::registry::ModelRegistry;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hamlet-rollout-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn rows(n: usize) -> Vec<ObservedRow> {
        (0..n)
            .map(|i| ObservedRow {
                codes: vec![(i % 2) as u32, (i % 4) as u32],
                label: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn observe_store_rides_the_ring_and_survives_reload() {
        let dir = temp_dir("obs");
        let store = ObserveStore::open(&dir, 8);
        assert_eq!(store.append("m", &rows(5)).unwrap(), 5);
        assert_eq!(store.append("m", &rows(5)).unwrap(), 8, "ring caps at 8");
        assert_eq!(store.buffered("m"), 8);
        assert_eq!(store.total_rows(), 10);
        // A fresh store reloads from disk: all 10 durable rows exist, the
        // ring keeps the newest 8.
        let store2 = ObserveStore::open(&dir, 8);
        let snap = store2.snapshot("m");
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.last().unwrap(), rows(5).last().unwrap());
        // Unknown names read as empty.
        assert!(store2.snapshot("ghost").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_store_truncates_a_torn_tail() {
        let dir = temp_dir("torn");
        {
            let store = ObserveStore::open(&dir, 64);
            store.append("m", &rows(6)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the file tail.
        let path = dir.join("m.obs");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let store = ObserveStore::open(&dir, 64);
        let snap = store.snapshot("m");
        assert_eq!(snap.len(), 5, "torn record dropped, prefix recovered");
        assert_eq!(snap[0], rows(1)[0]);
        // The file was truncated to the valid prefix, so appends resume
        // cleanly.
        assert_eq!(store.append("m", &rows(2)).unwrap(), 7);
        let store2 = ObserveStore::open(&dir, 64);
        assert_eq!(store2.snapshot("m").len(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Registry with `m@1` (latest) and `m@2` persisted + registered as a
    /// held candidate.
    fn registry_with_candidate(dir: &Path) -> (ModelRegistry, String) {
        let reg = ModelRegistry::new();
        let (k1, p1) = reg
            .register_next_version(toy_artifact("m", 0), 1, |a| a.save(dir))
            .unwrap();
        reg.record_origin(&k1, &p1);
        let (k2, p2) = reg
            .register_candidate(toy_artifact("m", 0), 2, |a| a.save(dir))
            .unwrap();
        reg.record_origin(&k2, &p2);
        (reg, k2)
    }

    #[test]
    fn lifecycle_shadow_canary_promote() {
        let dir = temp_dir("promote");
        let (reg, cand) = registry_with_candidate(&dir);
        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();

        let snap = plane.start(&reg, &telemetry, &cand, Some(25)).unwrap();
        assert_eq!(snap.phase.as_deref(), Some("shadow"));
        assert_eq!(snap.slice, 25);
        assert_eq!(reg.get("m").unwrap().version, 1, "incumbent serves");

        // Not enough shadow evidence: tick is a no-op.
        plane.tick(&reg, &telemetry);
        assert_eq!(plane.active().unwrap().phase(), Phase::Shadow);

        // Perfect agreement over enough rows graduates to canary.
        telemetry.model(&cand).record_shadow(500, 500);
        plane.tick(&reg, &telemetry);
        let active = plane.active().unwrap();
        assert_eq!(active.phase(), Phase::Canary);

        // Enough clean canary traffic auto-promotes.
        for _ in 0..60 {
            active.count_canary_request();
        }
        plane.tick(&reg, &telemetry);
        assert!(plane.active().is_none(), "rollout completed");
        assert_eq!(reg.get("m").unwrap().version, 2, "candidate adopted");
        assert_eq!(plane.snapshot().promotions, 1);
        // The audit trail carries every transition.
        let actions: Vec<String> = telemetry
            .recent_events()
            .iter()
            .filter(|e| e.kind == EventKind::Rollout)
            .map(|e| e.detail.clone())
            .collect();
        assert!(
            actions.iter().any(|a| a.contains("\"start\"")),
            "{actions:?}"
        );
        assert!(
            actions.iter().any(|a| a.contains("\"canary\"")),
            "{actions:?}"
        );
        assert!(
            actions.iter().any(|a| a.contains("\"promote\"")),
            "{actions:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn low_agreement_rolls_back_with_audit_trail() {
        let dir = temp_dir("rollback");
        let (reg, cand) = registry_with_candidate(&dir);
        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();
        // Audit residency transitions exactly like the server boot path.
        reg.set_observer({
            let telemetry = telemetry.clone();
            Arc::new(move |note, key| {
                let kind = match note {
                    crate::registry::RegistryNote::Demoted => EventKind::Demote,
                    _ => EventKind::Promote,
                };
                telemetry.record_event(kind, key, "residency change");
            })
        });
        plane.start(&reg, &telemetry, &cand, None).unwrap();

        // 90% agreement < 98% guardrail: instant rollback.
        telemetry.model(&cand).record_shadow(500, 450);
        plane.tick(&reg, &telemetry);
        assert!(plane.active().is_none());
        assert_eq!(reg.get("m").unwrap().version, 1, "incumbent restored");
        let snap = plane.snapshot();
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.drift_events, 1, "rollback is a drift signal");
        let events = telemetry.recent_events();
        assert!(
            events.iter().any(|e| e.kind == EventKind::Drift),
            "{events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Rollout && e.detail.contains("rollback")),
            "{events:?}"
        );
        // The candidate was demoted back to a lazy slot.
        assert!(
            events.iter().any(|e| e.kind == EventKind::Demote),
            "{events:?}"
        );
        // A fresh start can begin again.
        assert!(plane.start(&reg, &telemetry, &cand, None).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_resumes_mid_canary() {
        let dir = temp_dir("resume");
        let (reg, cand) = registry_with_candidate(&dir);
        let telemetry = Telemetry::in_memory();
        {
            let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
            plane.start(&reg, &telemetry, &cand, Some(15)).unwrap();
            telemetry.model(&cand).record_shadow(500, 500);
            plane.tick(&reg, &telemetry);
            assert_eq!(plane.active().unwrap().phase(), Phase::Canary);
            // Process "dies" here: plane dropped mid-canary.
        }
        // Warm boot: the highest on-disk version would win warm-load, so
        // resume() must hold the candidate and restore the canary phase.
        let (reg2, _) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(reg2.get("m").unwrap().version, 2, "warm-load picks v2");
        let plane2 = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        plane2.resume(&reg2, &telemetry);
        let active = plane2.active().expect("rollout resumed");
        assert_eq!(active.phase(), Phase::Canary);
        assert_eq!(active.candidate, cand);
        assert_eq!(active.slice, 15);
        assert_eq!(
            reg2.get("m").unwrap().version,
            1,
            "incumbent restored to bare-name traffic"
        );
        // Counters reset: promotion needs fresh evidence.
        assert_eq!(telemetry.model(&cand).snapshot().shadow_rows, 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_ignores_completed_rollouts_and_torn_tails() {
        let dir = temp_dir("replay-done");
        let (reg, cand) = registry_with_candidate(&dir);
        let telemetry = Telemetry::in_memory();
        {
            let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
            plane.start(&reg, &telemetry, &cand, None).unwrap();
            telemetry.model(&cand).record_shadow(500, 450);
            plane.tick(&reg, &telemetry); // rolls back
        }
        let (reg2, _) = ModelRegistry::warm_load(&dir).unwrap();
        let plane2 = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        plane2.resume(&reg2, &telemetry);
        assert!(plane2.active().is_none(), "completed rollout stays done");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn start_holds_a_candidate_that_is_already_latest() {
        let dir = temp_dir("hold-latest");
        let reg = ModelRegistry::new();
        let (k1, p1) = reg
            .register_next_version(toy_artifact("m", 0), 1, |a| a.save(&dir))
            .unwrap();
        reg.record_origin(&k1, &p1);
        // v2 registered the normal way: it becomes latest instantly (the
        // pre-rollout behavior this plane exists to fix).
        let (k2, p2) = reg
            .register_next_version(toy_artifact("m", 0), 1, |a| a.save(&dir))
            .unwrap();
        reg.record_origin(&k2, &p2);
        assert_eq!(reg.get("m").unwrap().version, 2);
        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();
        let snap = plane.start(&reg, &telemetry, &k2, None).unwrap();
        assert_eq!(snap.candidate.as_deref(), Some(k2.as_str()));
        assert_eq!(snap.incumbent.as_deref(), Some(k1.as_str()));
        assert_eq!(reg.get("m").unwrap().version, 1, "v1 serves during shadow");
        // Double-start refuses.
        assert!(plane.start(&reg, &telemetry, &k2, None).is_err());
        // Abort clears without demoting.
        plane.abort(&telemetry).unwrap();
        assert!(plane.active().is_none());
        assert!(plane.abort(&telemetry).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drift_check_fires_and_freezes_on_live_cardinality_blowup() {
        use hamlet_ml::contract::FeatureContract;
        use hamlet_ml::dataset::FeatureMeta;
        use hamlet_relation::domain::CatDomain;

        let dir = temp_dir("drift");
        // A closed FK domain of 200 values: with few observed rows and many
        // distinct codes, the live tuple ratio collapses below the Tree/ANN
        // threshold of 3.
        let mut art = toy_artifact("d", 0);
        art.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "xs0",
                Provenance::Home,
                CatDomain::synthetic("xs0", 2).into_shared(),
            ),
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic("fk", 200).into_shared(),
            ),
        ])
        .unwrap();
        let reg = ModelRegistry::new();
        let (key, path) = reg.register_next_version(art, 1, |a| a.save(&dir)).unwrap();
        reg.record_origin(&key, &path);

        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();
        // 100 rows spanning 100 distinct FK codes: tuple ratio 1.0 < 3.
        let drifted: Vec<ObservedRow> = (0..100)
            .map(|i| ObservedRow {
                codes: vec![i % 2, i],
                label: i % 2 == 0,
            })
            .collect();
        plane.observe.append("d", &drifted).unwrap();
        plane.drift_check(&reg, &telemetry);
        let snap = plane.snapshot();
        assert_eq!(snap.drift_checks, 1);
        assert_eq!(snap.drift_events, 1);
        assert!(
            snap.frozen,
            "default config freezes promotion while drifted"
        );
        let events = telemetry.recent_events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Drift && e.detail.contains("fk")),
            "{events:?}"
        );

        // Back inside the envelope: plenty of rows over few FK values.
        let safe: Vec<ObservedRow> = (0..2000)
            .map(|i| ObservedRow {
                codes: vec![i % 2, i % 10],
                label: i % 2 == 0,
            })
            .collect();
        plane.observe.append("d", &safe).unwrap();
        plane.drift_check(&reg, &telemetry);
        assert!(!plane.snapshot().frozen, "envelope recovered, unfrozen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_plane_blocks_graduation_but_not_rollback() {
        let dir = temp_dir("frozen");
        let (reg, cand) = registry_with_candidate(&dir);
        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();
        plane.start(&reg, &telemetry, &cand, None).unwrap();
        plane.frozen.store(true, Ordering::Relaxed);
        telemetry.model(&cand).record_shadow(500, 500);
        plane.tick(&reg, &telemetry);
        assert_eq!(
            plane.active().unwrap().phase(),
            Phase::Shadow,
            "frozen: no graduation"
        );
        // Bad agreement still rolls back while frozen.
        telemetry.model(&cand).record_shadow(500, 0);
        plane.tick(&reg, &telemetry);
        assert!(plane.active().is_none(), "rollback is never frozen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canary_routing_is_deterministic_and_respects_the_slice() {
        let dir = temp_dir("route");
        let (reg, cand) = registry_with_candidate(&dir);
        let plane = RolloutPlane::open(&dir, GuardrailConfig::default()).unwrap();
        let telemetry = Telemetry::in_memory();
        plane.start(&reg, &telemetry, &cand, Some(50)).unwrap();
        let incumbent = reg.get("m").unwrap();
        // Shadow phase: no routing at all.
        assert!(plane.canary_route(&reg, &incumbent, &[0, 1]).is_none());
        telemetry.model(&cand).record_shadow(500, 500);
        plane.tick(&reg, &telemetry);
        // Canary: roughly the slice fraction routes, deterministically.
        let mut routed = 0;
        for i in 0..200u32 {
            let rows = [i % 2, i % 4];
            let a = plane.canary_route(&reg, &incumbent, &rows).is_some();
            let b = plane.canary_route(&reg, &incumbent, &rows).is_some();
            assert_eq!(a, b, "routing is deterministic per request");
            routed += usize::from(a);
        }
        assert!(routed > 0, "a 50% slice routes some of 200 requests");
        assert!(routed < 200, "a 50% slice does not route everything");
        // The candidate artifact itself is never re-routed (no recursion).
        let candidate = reg.get(&cand).unwrap();
        assert!(plane.canary_route(&reg, &candidate, &[0, 1]).is_none());
        // Mirroring targets incumbent-served batches only.
        assert!(plane.mirror_target(&incumbent).is_some());
        assert!(plane.mirror_target(&candidate).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_knobs_parse_and_apply() {
        let faults = Faults {
            predict_panic: Some("m@2".into()),
            flip_labels: Some("m@2".into()),
        };
        let mut labels = vec![true, false, true];
        faults.maybe_flip("m@1", &mut labels);
        assert_eq!(labels, vec![true, false, true], "other keys untouched");
        faults.maybe_flip("m@2", &mut labels);
        assert_eq!(labels, vec![false, true, false]);
        faults.maybe_panic("m@1"); // no-op
        assert!(std::panic::catch_unwind(|| faults.maybe_panic("m@2")).is_err());
    }
}
