//! Versioned, validated persistence of trained models.
//!
//! A [`ModelArtifact`] is everything needed to serve a classifier trained by
//! `hamlet_core::experiment`: the model itself (as a serializable
//! [`AnyClassifier`]), the [`FeatureConfig`] it was trained under, the full
//! input [`FeatureContract`] (per feature: name, cardinality, provenance
//! and the label↔code dictionary), a fingerprint of the source star schema,
//! and training metadata (metrics, spec, wall-clock).
//!
//! ## Format history
//!
//! - **v1** — JSON (`.model.json`); feature metadata under a `features`
//!   key, no dictionaries. Still readable: loads upgrade v1 payloads in
//!   memory (the contract simply has no domains, so such models only accept
//!   pre-encoded code rows, never raw labels).
//! - **v2** — JSON (`.model.json`); the contract (with embedded domains)
//!   under a `contract` key. Still readable, and still writable via
//!   [`ModelArtifact::save_format`] for interchange/debugging.
//! - **v3** — the current default: a sectioned binary container
//!   (`.model.bin`, see [`crate::container`]) with a small JSON `META`
//!   section, a deduplicated dictionary string table (`DICT` — each
//!   distinct `CatDomain` stored exactly once, features referencing it by
//!   index), and an aligned raw little-endian model payload (`MODL`).
//!   Dense f32/f64 weight arrays shrink several-fold versus their JSON
//!   text, and the payload can be **mmap-loaded** ([`LoadMode::Mmap`]):
//!   weight slices borrow the mapped file zero-copy, making warm-load
//!   page-fault-bounded instead of parse-bounded.
//!
//! Format is auto-detected on load (magic bytes → v3, otherwise JSON with
//! an explicit `format_version` gate), so a directory may mix all three.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::binenc::{BinWriter, BytesSource, MmapFile};
use hamlet_ml::contract::{BatchError, DomainInterner, FeatureContract};
use hamlet_ml::dataset::FeatureMeta;

use crate::container::{self, SEC_CASC, SEC_DICT, SEC_META, SEC_MODL, SEC_QNTS};
use crate::error::{Result, ServeError};

/// Artifact layout version written by this build.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest artifact layout this build can still read (upgraded on load).
pub const MIN_READ_FORMAT_VERSION: u32 = 1;

/// Filename suffix of binary (format-v3) artifacts.
pub const ARTIFACT_SUFFIX_BIN: &str = ".model.bin";

/// Filename suffix of legacy JSON (format v1/v2) artifacts.
pub const ARTIFACT_SUFFIX_JSON: &str = ".model.json";

/// Every suffix the registry treats as an artifact, preferred first.
pub const ARTIFACT_SUFFIXES: [&str; 2] = [ARTIFACT_SUFFIX_BIN, ARTIFACT_SUFFIX_JSON];

/// On-disk artifact layouts this build understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// JSON, `features` key, no dictionaries (read-only compat).
    V1,
    /// JSON, `contract` key with inline dictionaries.
    V2,
    /// Sectioned binary container with deduplicated dictionaries.
    V3,
}

impl Format {
    /// Numeric format version.
    pub fn version(self) -> u32 {
        match self {
            Format::V1 => 1,
            Format::V2 => 2,
            Format::V3 => 3,
        }
    }

    /// Filename suffix this format is written under.
    pub fn suffix(self) -> &'static str {
        match self {
            Format::V1 | Format::V2 => ARTIFACT_SUFFIX_JSON,
            Format::V3 => ARTIFACT_SUFFIX_BIN,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Format::V1 => write!(f, "v1 (json)"),
            Format::V2 => write!(f, "v2 (json)"),
            Format::V3 => write!(f, "v3 (binary)"),
        }
    }
}

/// How to materialize an artifact's payload on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Read and parse the whole file into owned memory.
    #[default]
    Heap,
    /// Map the file and borrow weight slices from it zero-copy (format-v3
    /// files only; JSON artifacts silently fall back to [`LoadMode::Heap`]).
    /// Pages are faulted in on first prediction, and artifacts of the same
    /// file share physical memory with the page cache.
    Mmap,
}

/// Provenance and quality records captured at training time.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainingMetadata {
    /// Dataset identifier (emulator or scenario name).
    pub dataset: String,
    /// The model family/spec that was tuned.
    pub spec: ModelSpec,
    /// Number of training rows.
    pub train_rows: usize,
    /// Full experiment metrics (accuracies, runtime, winning cell).
    pub metrics: RunResult,
}

/// The cheap-to-read identity of an artifact: everything `/v1/models`
/// reports, parsed without materializing the model. For v3 files this reads
/// only the container header and `META` section; for JSON it parses the
/// text but skips model construction.
#[derive(Debug, Clone)]
pub struct ArtifactHead {
    /// On-disk layout the artifact was found in.
    pub format: Format,
    /// Registry name.
    pub name: String,
    /// Version under the name.
    pub version: u32,
    /// Model family tag (`tree`, `svm`, ...).
    pub family: String,
    /// Weight-tensor storage encoding (`f32` for full precision, `i8`/`f16`
    /// for quantized payloads).
    pub encoding: String,
    /// Feature-config name (`NoJoin`, `JoinAll`, ...).
    pub config: String,
    /// Expected input width (features per row).
    pub n_features: usize,
    /// Holdout accuracy recorded at training time.
    pub test_accuracy: f64,
    /// Source dataset recorded at training time.
    pub dataset: String,
    /// Fingerprint of the source star schema.
    pub schema_fingerprint: u64,
}

impl ArtifactHead {
    /// Registry key `name@version`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }
}

/// A servable trained model with its input contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    /// Artifact layout version (see [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Registry name (caller-chosen, e.g. `movies-tree`).
    pub name: String,
    /// Monotonic version under the name; the registry serves the latest by
    /// default.
    pub version: u32,
    /// The trained classifier.
    pub model: AnyClassifier,
    /// Feature configuration the model was trained under.
    pub feature_config: FeatureConfig,
    /// The input contract: expected columns in order (every prediction row
    /// supplies one code per entry, each `< cardinality`), plus the
    /// label↔code dictionary per feature, which is what lets `/v1/predict`
    /// accept raw label strings.
    pub contract: FeatureContract,
    /// Fingerprint of the star schema that produced the training data
    /// (`StarSchema::fingerprint`).
    pub schema_fingerprint: u64,
    /// Training provenance and metrics.
    pub metadata: TrainingMetadata,
}

impl ModelArtifact {
    /// Registry key `name@version`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// Expected input columns, in contract order.
    pub fn features(&self) -> &[FeatureMeta] {
        self.contract.features()
    }

    /// Fingerprint of the *feature space* this model consumes (names,
    /// cardinalities, provenance, dictionaries, in order). Computed, not
    /// stored: it can never drift from the contract.
    pub fn feature_fingerprint(&self) -> u64 {
        self.contract.fingerprint()
    }

    /// The cheap identity of this (already loaded) artifact.
    ///
    /// `format` here is the layout the in-memory artifact corresponds to —
    /// always [`Format::V3`], because loads normalize `format_version` and
    /// a subsequent `save` writes v3. To learn the *on-disk* encoding of an
    /// existing file, use [`ModelArtifact::load_head`], which reports what
    /// it found.
    pub fn head(&self) -> ArtifactHead {
        ArtifactHead {
            format: Format::V3,
            name: self.name.clone(),
            version: self.version,
            family: self.model.family().to_string(),
            encoding: self.model.encoding().to_string(),
            config: self.feature_config.name(),
            n_features: self.contract.width(),
            test_accuracy: self.metadata.metrics.test_accuracy,
            dataset: self.metadata.dataset.clone(),
            schema_fingerprint: self.schema_fingerprint,
        }
    }

    fn batch_error(&self, e: BatchError) -> ServeError {
        ServeError::BadRequest(format!("model `{}`: {e}", self.key()))
    }

    /// Validates a batch of pre-encoded code rows against the contract and
    /// flattens it row-major for the batched predict hot path. Every
    /// offending row is reported with its index and feature name.
    pub fn validate_coded(&self, rows: &[Vec<u32>]) -> Result<Vec<u32>> {
        if rows.is_empty() {
            return Err(ServeError::BadRequest("empty prediction batch".into()));
        }
        self.contract
            .validate_batch(rows)
            .map_err(|e| self.batch_error(e))
    }

    /// Dictionary-encodes a batch of raw label rows server-side (the NoJoin
    /// FK-as-feature rewrite at ingest). Unseen labels fall back to the
    /// `Others` slot on open domains and are 4xx-worthy per-row errors on
    /// closed ones; format-v1 artifacts (no dictionaries) reject raw rows
    /// outright.
    pub fn encode_raw(&self, rows: &[Vec<String>]) -> Result<Vec<u32>> {
        if rows.is_empty() {
            return Err(ServeError::BadRequest("empty prediction batch".into()));
        }
        self.contract
            .encode_batch(rows)
            .map_err(|e| self.batch_error(e))
    }

    /// Canonical (format-v3) file path inside an artifact directory.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        self.path_in_format(dir, Format::V3)
    }

    /// File path for an explicit format.
    pub fn path_in_format(&self, dir: &Path, format: Format) -> PathBuf {
        dir.join(format!("{}{}", self.key(), format.suffix()))
    }

    /// Persists the artifact in the default (v3 binary) format, creating
    /// the directory if needed. The write goes through a temp file + rename
    /// so readers never observe a torn artifact.
    pub fn save(&self, dir: &Path) -> Result<PathBuf> {
        self.save_format(dir, Format::V3)
    }

    /// Persists in an explicit format (v3 binary or v2 JSON; v1 is
    /// read-only compat and cannot be written).
    pub fn save_format(&self, dir: &Path, format: Format) -> Result<PathBuf> {
        let bytes = match format {
            Format::V1 => {
                return Err(ServeError::BadRequest(
                    "format v1 is read-only; write v2 (json) or v3 (binary)".into(),
                ))
            }
            Format::V2 => {
                let mut json_self = self.clone();
                json_self.format_version = if self.format_version == FORMAT_VERSION {
                    Format::V2.version()
                } else {
                    // Preserve an explicitly forced (e.g. future) version.
                    self.format_version
                };
                serde_json::to_string(&json_self)?.into_bytes()
            }
            Format::V3 => self.to_v3_bytes()?,
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::io(format!("creating {}", dir.display()), e))?;
        let path = self.path_in_format(dir, format);
        let tmp = dir.join(format!(".{}{}.tmp", self.key(), format.suffix()));
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)
                .map_err(|e| ServeError::io(format!("creating {}", tmp.display()), e))?;
            // Fault injection for the CI crash-safety probe: write only a
            // truncated prefix, skip the fsync+rename, and die — the
            // half-written temp file is exactly what a real crash leaves.
            if std::env::var_os("HAMLET_FAULT_PERSIST_CRASH").is_some_and(|v| v != "0") {
                let cut = bytes.len() / 2;
                let _ = file.write_all(&bytes[..cut]);
                return Err(ServeError::io(
                    format!(
                        "HAMLET_FAULT_PERSIST_CRASH: simulated crash after {cut} of {} bytes of {}",
                        bytes.len(),
                        tmp.display()
                    ),
                    std::io::Error::other("injected persist crash"),
                ));
            }
            file.write_all(&bytes)
                .map_err(|e| ServeError::io(format!("writing {}", tmp.display()), e))?;
            // Flush file data to stable storage *before* the rename makes it
            // visible; otherwise a power cut can leave a fully-renamed file
            // with empty or partial content.
            file.sync_all()
                .map_err(|e| ServeError::io(format!("syncing {}", tmp.display()), e))?;
        }
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServeError::io(format!("renaming into {}", path.display()), e))?;
        // And persist the rename itself: fsync the directory entry so the
        // new name survives a crash immediately after save() returns.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(path)
    }

    /// Serializes into the v3 container: `META` (JSON header with the
    /// by-reference contract), `DICT` (each distinct dictionary once),
    /// `MODL` (aligned binary model payload).
    fn to_v3_bytes(&self) -> Result<Vec<u8>> {
        let mut pool = DomainInterner::new();
        let contract_value = self.contract.serialize_by_ref(&mut pool);
        let meta = serde::Value::Obj(vec![
            (
                "format_version".into(),
                serde::Value::Num(serde::Number::UInt(u64::from(self.format_version))),
            ),
            ("name".into(), serde::Value::Str(self.name.clone())),
            (
                "version".into(),
                serde::Value::Num(serde::Number::UInt(u64::from(self.version))),
            ),
            (
                "family".into(),
                serde::Value::Str(self.model.family().to_string()),
            ),
            (
                "encoding".into(),
                serde::Value::Str(self.model.encoding().to_string()),
            ),
            (
                "feature_config".into(),
                serde::Serialize::serialize(&self.feature_config),
            ),
            (
                "schema_fingerprint".into(),
                serde::Value::Num(serde::Number::UInt(self.schema_fingerprint)),
            ),
            (
                "metadata".into(),
                serde::Serialize::serialize(&self.metadata),
            ),
            ("contract".into(), contract_value),
        ]);
        let meta_bytes = serde_json::to_string(&meta)?.into_bytes();
        let mut dict = BinWriter::new();
        pool.encode_bin(&mut dict);
        let mut modl = BinWriter::new();
        self.model.encode_bin(&mut modl);
        let dict_bytes = dict.finish();
        let modl_bytes = modl.finish();
        let mut sections: Vec<([u8; 8], &[u8])> = vec![
            (SEC_META, &meta_bytes),
            (SEC_DICT, &dict_bytes),
            (SEC_MODL, &modl_bytes),
        ];
        // Quantized payloads additionally carry a small JSON descriptor
        // section so `artifact inspect` can report tensor encodings and
        // dequantization scales without decoding the model.
        let qnts_bytes = quant_section_json(&self.model).map(String::into_bytes);
        if let Some(q) = &qnts_bytes {
            sections.push((SEC_QNTS, q));
        }
        // Cascade payloads carry a JSON tier-table descriptor so `artifact
        // inspect` can report tier structure, thresholds and calibrators
        // without decoding the model. Old readers ignore the unknown tag.
        let casc_bytes = cascade_section_json(&self.model).map(String::into_bytes);
        if let Some(c) = &casc_bytes {
            sections.push((SEC_CASC, c));
        }
        Ok(container::build_versioned(self.format_version, &sections))
    }

    /// Highest version present in `dir` for `name`, parsed from artifact
    /// *filenames* (`name@V.model.{bin,json}`) — no deserialization, so
    /// version allocation does not need to materialize every stored model.
    /// Returns 0 when none exist.
    pub fn max_version_on_disk(dir: &Path, name: &str) -> u32 {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| {
                let file = e.file_name();
                let (n, v) = split_artifact_stem(file.to_str()?)?;
                (n == name).then_some(v)
            })
            .max()
            .unwrap_or(0)
    }

    /// Loads and format-checks one artifact file into owned memory.
    pub fn load(path: &Path) -> Result<ModelArtifact> {
        Self::load_with(path, LoadMode::Heap)
    }

    /// Loads with an explicit [`LoadMode`]. Format is auto-detected:
    /// container magic → v3; otherwise JSON with a `format_version` gate
    /// (v1 payloads are upgraded in memory; anything newer than
    /// [`FORMAT_VERSION`] is a hard error).
    pub fn load_with(path: &Path, mode: LoadMode) -> Result<ModelArtifact> {
        Ok(Self::load_with_source(path, mode)?.0)
    }

    /// [`ModelArtifact::load_with`], additionally returning the memory
    /// mapping the artifact's weights borrow (mmap loads of v3 files only;
    /// `None` otherwise). The registry keeps the handle so it can issue
    /// `madvise` residency hints when a version is promoted or demoted.
    pub fn load_with_source(
        path: &Path,
        mode: LoadMode,
    ) -> Result<(ModelArtifact, Option<Arc<MmapFile>>)> {
        let ctx = |e| ServeError::io(format!("reading {}", path.display()), e);
        match mode {
            LoadMode::Mmap => {
                // Sniff the prefix before mapping: JSON artifacts fall back
                // to the heap path.
                let mut prefix = [0u8; 4];
                {
                    use std::io::Read;
                    let mut f = std::fs::File::open(path).map_err(ctx)?;
                    let n = f.read(&mut prefix).map_err(ctx)?;
                    if !container::sniff_magic(&prefix[..n]) {
                        return Self::load_with_source(path, LoadMode::Heap);
                    }
                }
                let map = MmapFile::open(path).map_err(ctx)?;
                let artifact = Self::from_v3(BytesSource::Mapped(Arc::clone(&map)))?;
                Ok((artifact, Some(map)))
            }
            LoadMode::Heap => {
                let bytes = std::fs::read(path).map_err(ctx)?;
                let artifact = if container::sniff_magic(&bytes) {
                    Self::from_v3(BytesSource::Heap(Arc::new(bytes)))?
                } else {
                    Self::from_json(&bytes, path)?
                };
                Ok((artifact, None))
            }
        }
    }

    /// Decodes a v3 container from either source. Over a mapped source,
    /// model weight arrays borrow the mapping zero-copy. Sections covered
    /// by the container's checksum table are verified first, so silent
    /// disk corruption fails the load instead of skewing predictions —
    /// with one deliberate exception: **mmap loads skip the `MODL`
    /// checksum**, because scanning it would fault in the whole weight
    /// payload and turn the page-fault-bounded load the format exists for
    /// back into an O(file) read (heap loads, the default, verify every
    /// section).
    fn from_v3(src: BytesSource) -> Result<ModelArtifact> {
        let entries = container::parse_sections(src.bytes())?;
        let skip: &[[u8; 8]] = if matches!(src, BytesSource::Mapped(_)) {
            &[SEC_MODL]
        } else {
            &[]
        };
        container::verify_checksums(src.bytes(), &entries, skip)?;
        let meta_entry = container::find(&entries, SEC_META)?;
        let meta: serde::Value = serde_json::from_slice(
            &src.bytes()[meta_entry.offset..meta_entry.offset + meta_entry.len],
        )?;
        let obj = meta
            .as_obj_view("artifact META")
            .map_err(|e| ServeError::Json(e.to_string()))?;
        let de = |what: &str, e: String| ServeError::Json(format!("META `{what}`: {e}"));
        let name = String::deserialize(obj.field("name")).map_err(|e| de("name", e.to_string()))?;
        let version =
            u32::deserialize(obj.field("version")).map_err(|e| de("version", e.to_string()))?;
        let feature_config = FeatureConfig::deserialize(obj.field("feature_config"))
            .map_err(|e| de("feature_config", e.to_string()))?;
        let schema_fingerprint = u64::deserialize(obj.field("schema_fingerprint"))
            .map_err(|e| de("schema_fingerprint", e.to_string()))?;
        let metadata = TrainingMetadata::deserialize(obj.field("metadata"))
            .map_err(|e| de("metadata", e.to_string()))?;

        let dict_entry = container::find(&entries, SEC_DICT)?;
        let mut dict_reader = container::section_reader(&src, dict_entry)?;
        let domains = DomainInterner::decode_bin(&mut dict_reader)
            .map_err(|e| ServeError::Json(e.to_string()))?;
        dict_reader
            .expect_end()
            .map_err(|e| ServeError::Json(format!("DICT section: {e}")))?;
        let contract = FeatureContract::deserialize_by_ref(obj.field("contract"), &domains)
            .map_err(|e| ServeError::Json(e.to_string()))?;

        let modl_entry = container::find(&entries, SEC_MODL)?;
        let mut modl_reader = container::section_reader(&src, modl_entry)?;
        let model = AnyClassifier::decode_bin(&mut modl_reader)
            .map_err(|e| ServeError::Json(e.to_string()))?;
        modl_reader
            .expect_end()
            .map_err(|e| ServeError::Json(format!("MODL section: {e}")))?;
        model
            .check_contract(&contract)
            .map_err(|e| ServeError::Json(format!("model/contract mismatch: {e}")))?;
        Ok(ModelArtifact {
            format_version: FORMAT_VERSION,
            name,
            version,
            model,
            feature_config,
            contract,
            schema_fingerprint,
            metadata,
        })
    }

    /// Decodes a legacy JSON (v1/v2) artifact.
    fn from_json(bytes: &[u8], path: &Path) -> Result<ModelArtifact> {
        let mut value = serde_json::from_slice::<serde_json::Value>(bytes)?;
        match json_format_version(&value, path)? {
            1 => upgrade_v1(&mut value),
            2 => normalize_version(&mut value),
            v => {
                // A *JSON* body claiming the binary format (or newer).
                return Err(ServeError::Format {
                    found: v,
                    supported: FORMAT_VERSION,
                });
            }
        }
        let artifact: ModelArtifact = serde_json::from_value(&value)?;
        Ok(artifact)
    }

    /// Reads only the artifact's identity (see [`ArtifactHead`]). For v3
    /// this touches the container header and `META` section only; the
    /// model payload stays on disk.
    pub fn load_head(path: &Path) -> Result<ArtifactHead> {
        let ctx = |e| ServeError::io(format!("reading {}", path.display()), e);
        let mut prefix = [0u8; 4];
        let is_v3 = {
            use std::io::Read;
            let mut f = std::fs::File::open(path).map_err(ctx)?;
            let n = f.read(&mut prefix).map_err(ctx)?;
            container::sniff_magic(&prefix[..n])
        };
        if is_v3 {
            let meta_bytes = container::read_one_section(path, SEC_META)?;
            let meta: serde_json::Value = serde_json::from_slice(&meta_bytes)?;
            head_from_value(&meta, Format::V3)
        } else {
            let bytes = std::fs::read(path).map_err(ctx)?;
            let mut value = serde_json::from_slice::<serde_json::Value>(&bytes)?;
            let format = match json_format_version(&value, path)? {
                1 => {
                    upgrade_v1(&mut value);
                    Format::V1
                }
                2 => Format::V2,
                v => {
                    return Err(ServeError::Format {
                        found: v,
                        supported: FORMAT_VERSION,
                    })
                }
            };
            head_from_value(&value, format)
        }
    }
}

use serde::Deserialize;

/// JSON body of the `QNTS` descriptor section for a quantized model
/// (`None` for full-precision payloads). `Subset` wrappers recurse into
/// their inner model.
fn quant_section_json(model: &AnyClassifier) -> Option<String> {
    match model {
        AnyClassifier::Quantized(q) => {
            let tensors = q
                .tensor_info()
                .iter()
                .map(|(name, len, bytes, scale)| {
                    let mut fields = vec![
                        ("name".into(), serde::Value::Str((*name).into())),
                        (
                            "len".into(),
                            serde::Value::Num(serde::Number::UInt(*len as u64)),
                        ),
                        (
                            "bytes".into(),
                            serde::Value::Num(serde::Number::UInt(*bytes as u64)),
                        ),
                    ];
                    if let Some(s) = scale {
                        fields.push(("scale".into(), serde::Value::Num(serde::Number::Float(*s))));
                    }
                    serde::Value::Obj(fields)
                })
                .collect();
            let value = serde::Value::Obj(vec![
                (
                    "encoding".into(),
                    serde::Value::Str(q.encoding.name().into()),
                ),
                ("tensors".into(), serde::Value::Arr(tensors)),
            ]);
            serde_json::to_string(&value).ok()
        }
        AnyClassifier::Subset(s) => quant_section_json(&s.inner),
        _ => None,
    }
}

/// JSON body of the `CASC` descriptor section for a cascade model (`None`
/// for everything else): the tier table with per-tier family, encoding,
/// weight bytes, threshold and calibrator parameters.
fn cascade_section_json(model: &AnyClassifier) -> Option<String> {
    let AnyClassifier::Cascade(c) = model else {
        return None;
    };
    let num = |v: f64| serde::Value::Num(serde::Number::Float(v));
    let tiers = c
        .tiers
        .iter()
        .map(|tier| {
            let calibrator = match &tier.calibrator {
                hamlet_ml::cascade::Calibrator::Platt { a, b } => serde::Value::Obj(vec![
                    ("kind".into(), serde::Value::Str("platt".into())),
                    ("a".into(), num(*a)),
                    ("b".into(), num(*b)),
                ]),
                hamlet_ml::cascade::Calibrator::Isotonic { xs, ps } => serde::Value::Obj(vec![
                    ("kind".into(), serde::Value::Str("isotonic".into())),
                    (
                        "xs".into(),
                        serde::Value::Arr(xs.iter().map(|&x| num(x)).collect()),
                    ),
                    (
                        "ps".into(),
                        serde::Value::Arr(ps.iter().map(|&p| num(p)).collect()),
                    ),
                ]),
            };
            serde::Value::Obj(vec![
                (
                    "family".into(),
                    serde::Value::Str(tier.model.family().into()),
                ),
                (
                    "encoding".into(),
                    serde::Value::Str(tier.model.encoding().into()),
                ),
                (
                    "weight_bytes".into(),
                    serde::Value::Num(serde::Number::UInt(tier.model.weight_bytes() as u64)),
                ),
                ("threshold".into(), num(tier.threshold)),
                ("calibrator".into(), calibrator),
            ])
        })
        .collect();
    let value = serde::Value::Obj(vec![("tiers".into(), serde::Value::Arr(tiers))]);
    serde_json::to_string(&value).ok()
}

/// Extracts the `format_version` gate from a JSON artifact body.
fn json_format_version(value: &serde_json::Value, path: &Path) -> Result<u32> {
    let found = match value {
        serde_json::Value::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == "format_version")
            .and_then(|(_, v)| match v {
                serde_json::Value::Num(n) => n.as_u64(),
                _ => None,
            }),
        _ => None,
    };
    match found {
        Some(v)
            if (u64::from(MIN_READ_FORMAT_VERSION)..=u64::from(FORMAT_VERSION)).contains(&v) =>
        {
            Ok(v as u32)
        }
        Some(v) => Err(ServeError::Format {
            found: v as u32,
            supported: FORMAT_VERSION,
        }),
        None => Err(ServeError::Json(format!(
            "{} has no format_version field",
            path.display()
        ))),
    }
}

/// Builds an [`ArtifactHead`] from either a v3 `META` object or a (shimmed)
/// v1/v2 full-artifact object — both carry the same identity keys, v3
/// adding an explicit `family` so the model payload need not be decoded.
fn head_from_value(value: &serde_json::Value, format: Format) -> Result<ArtifactHead> {
    let obj = value
        .as_obj_view("artifact head")
        .map_err(|e| ServeError::Json(e.to_string()))?;
    let de = |what: &str, e: String| ServeError::Json(format!("artifact `{what}`: {e}"));
    let name = String::deserialize(obj.field("name")).map_err(|e| de("name", e.to_string()))?;
    let version =
        u32::deserialize(obj.field("version")).map_err(|e| de("version", e.to_string()))?;
    let config = FeatureConfig::deserialize(obj.field("feature_config"))
        .map_err(|e| de("feature_config", e.to_string()))?
        .name();
    let schema_fingerprint = u64::deserialize(obj.field("schema_fingerprint"))
        .map_err(|e| de("schema_fingerprint", e.to_string()))?;
    let metadata = TrainingMetadata::deserialize(obj.field("metadata"))
        .map_err(|e| de("metadata", e.to_string()))?;
    let n_features = match obj.field("contract") {
        serde_json::Value::Arr(features) => features.len(),
        other => {
            return Err(ServeError::Json(format!(
                "artifact `contract`: expected array, got {}",
                other.kind()
            )))
        }
    };
    let family = match obj.field("family") {
        // v3 META carries the family tag explicitly.
        serde_json::Value::Str(s) => s.clone(),
        // v1/v2 JSON: walk the externally tagged model enum instead of
        // materializing it.
        serde_json::Value::Null => json_model_family(obj.field("model"))?,
        other => {
            return Err(ServeError::Json(format!(
                "artifact `family`: expected string, got {}",
                other.kind()
            )))
        }
    };
    let encoding = match obj.field("encoding") {
        // Current v3 META carries the encoding tag explicitly.
        serde_json::Value::Str(s) => s.clone(),
        serde_json::Value::Null => match obj.field("model") {
            // Pre-quantization v3 META: no model body either, and only
            // full-precision payloads existed.
            serde_json::Value::Null => "f32".into(),
            model => json_model_encoding(model)?,
        },
        other => {
            return Err(ServeError::Json(format!(
                "artifact `encoding`: expected string, got {}",
                other.kind()
            )))
        }
    };
    Ok(ArtifactHead {
        format,
        name,
        version,
        family,
        encoding,
        config,
        n_features,
        test_accuracy: metadata.metrics.test_accuracy,
        dataset: metadata.dataset,
        schema_fingerprint,
    })
}

/// Family tag from the externally tagged JSON form of [`AnyClassifier`],
/// without deserializing the payload. `Subset` recurses into its inner
/// model, mirroring `AnyClassifier::family`.
fn json_model_family(value: &serde_json::Value) -> Result<String> {
    let (tag, payload) = value
        .as_enum_view("AnyClassifier")
        .map_err(|e| ServeError::Json(e.to_string()))?;
    Ok(match tag {
        "Majority" => "majority".into(),
        "Tree" => "tree".into(),
        "Knn" => "knn".into(),
        "Svm" => "svm".into(),
        "Mlp" => "mlp".into(),
        "NaiveBayes" => "naive-bayes".into(),
        "LogReg" => "logreg".into(),
        "Cascade" => "cascade".into(),
        "Subset" => {
            let inner = payload
                .as_obj_view("SubsetModel")
                .map_err(|e| ServeError::Json(e.to_string()))?
                .field("inner");
            json_model_family(inner)?
        }
        "Quantized" => {
            let inner = payload
                .as_obj_view("QuantModel")
                .map_err(|e| ServeError::Json(e.to_string()))?
                .field("payload");
            let (ptag, _) = inner
                .as_enum_view("QuantPayload")
                .map_err(|e| ServeError::Json(e.to_string()))?;
            match ptag {
                "Mlp" => "mlp".into(),
                "Svm" => "svm".into(),
                "LogReg" => "logreg".into(),
                other => {
                    return Err(ServeError::Json(format!(
                        "unknown quantized payload variant `{other}`"
                    )))
                }
            }
        }
        other => {
            return Err(ServeError::Json(format!(
                "unknown model family variant `{other}`"
            )))
        }
    })
}

/// Weight-storage encoding from the externally tagged JSON form of
/// [`AnyClassifier`] (`f32` unless the model is quantized), without
/// deserializing the payload.
fn json_model_encoding(value: &serde_json::Value) -> Result<String> {
    let (tag, payload) = value
        .as_enum_view("AnyClassifier")
        .map_err(|e| ServeError::Json(e.to_string()))?;
    Ok(match tag {
        "Quantized" => {
            let enc = payload
                .as_obj_view("QuantModel")
                .map_err(|e| ServeError::Json(e.to_string()))?
                .field("encoding");
            match enc {
                serde_json::Value::Str(s) => s.to_lowercase(),
                other => {
                    return Err(ServeError::Json(format!(
                        "quantized `encoding`: expected string, got {}",
                        other.kind()
                    )))
                }
            }
        }
        "Subset" => {
            let inner = payload
                .as_obj_view("SubsetModel")
                .map_err(|e| ServeError::Json(e.to_string()))?
                .field("inner");
            json_model_encoding(inner)?
        }
        // A cascade reports its top tier's encoding (mirrors
        // `AnyClassifier::encoding`).
        "Cascade" => {
            let tiers = payload
                .as_obj_view("CascadeModel")
                .map_err(|e| ServeError::Json(e.to_string()))?
                .field("tiers");
            match tiers {
                serde_json::Value::Arr(tiers) => match tiers.last() {
                    Some(tier) => {
                        let model = tier
                            .as_obj_view("CascadeTier")
                            .map_err(|e| ServeError::Json(e.to_string()))?
                            .field("model");
                        json_model_encoding(model)?
                    }
                    None => "f32".into(),
                },
                other => {
                    return Err(ServeError::Json(format!(
                        "cascade `tiers`: expected array, got {}",
                        other.kind()
                    )))
                }
            }
        }
        _ => "f32".into(),
    })
}

/// Splits an artifact filename into `(name, version)`, accepting any suffix
/// in [`ARTIFACT_SUFFIXES`].
pub(crate) fn split_artifact_stem(file: &str) -> Option<(&str, u32)> {
    let stem = ARTIFACT_SUFFIXES
        .iter()
        .find_map(|s| file.strip_suffix(s))?;
    let (n, v) = stem.rsplit_once('@')?;
    Some((n, v.parse().ok()?))
}

/// Read-compat shim: rewrites a format-v1 payload into the v2+ JSON layout
/// in memory. v1 stored the contract's feature array under a `features` key
/// (and its entries carry no `domain`, which deserializes as `None`); v2
/// renamed the key to `contract`. The version field is normalized to
/// [`FORMAT_VERSION`] so a subsequent `save` writes a coherent artifact.
fn upgrade_v1(value: &mut serde_json::Value) {
    if let serde_json::Value::Obj(entries) = value {
        for (key, _) in entries.iter_mut() {
            if key == "features" {
                *key = "contract".to_string();
            }
        }
    }
    normalize_version(value);
}

/// Normalizes the in-memory `format_version` to [`FORMAT_VERSION`].
fn normalize_version(value: &mut serde_json::Value) {
    if let serde_json::Value::Obj(entries) = value {
        for (key, entry) in entries.iter_mut() {
            if key == "format_version" {
                *entry =
                    serde_json::Value::Num(serde_json::Number::UInt(u64::from(FORMAT_VERSION)));
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hamlet_ml::dataset::Provenance;
    use hamlet_ml::model::MajorityClass;
    use hamlet_relation::domain::CatDomain;

    /// An artifact whose contract carries dictionaries: `xs0` is a closed
    /// two-label domain, `fk` an open domain `v0..v3 + Others` (card 5).
    pub(crate) fn toy_artifact(name: &str, version: u32) -> ModelArtifact {
        ModelArtifact {
            format_version: FORMAT_VERSION,
            name: name.into(),
            version,
            model: AnyClassifier::Majority(MajorityClass { positive: true }),
            feature_config: FeatureConfig::NoJoin,
            contract: FeatureContract::new(vec![
                FeatureMeta::with_domain(
                    "xs0",
                    Provenance::Home,
                    CatDomain::synthetic("xs0", 2).into_shared(),
                ),
                FeatureMeta::with_domain(
                    "fk",
                    Provenance::ForeignKey { dim: 0 },
                    CatDomain::synthetic_with_others("fk", 4).into_shared(),
                ),
            ])
            .unwrap(),
            schema_fingerprint: 0xDEADBEEF,
            metadata: TrainingMetadata {
                dataset: "toy".into(),
                spec: ModelSpec::TreeGini,
                train_rows: 10,
                metrics: RunResult {
                    model: "DT-Gini".into(),
                    config: "NoJoin".into(),
                    train_accuracy: 1.0,
                    val_accuracy: 0.9,
                    test_accuracy: 0.8,
                    seconds: 0.1,
                    winner: "minsplit=2".into(),
                },
            },
        }
    }

    /// An artifact whose model is a two-tier majority→majority cascade —
    /// structurally trivial but exercising the full `CASC` write/read path.
    pub(crate) fn toy_cascade_artifact(name: &str, version: u32) -> ModelArtifact {
        use hamlet_ml::cascade::{Calibrator, CascadeModel, CascadeTier};
        let mut art = toy_artifact(name, version);
        art.model = AnyClassifier::Cascade(
            CascadeModel::new(vec![
                CascadeTier {
                    model: AnyClassifier::Majority(MajorityClass { positive: true }),
                    calibrator: Calibrator::Isotonic {
                        xs: vec![-1.0, 1.0],
                        ps: vec![0.25, 0.75],
                    },
                    threshold: 0.6,
                },
                CascadeTier {
                    model: AnyClassifier::Majority(MajorityClass { positive: false }),
                    calibrator: Calibrator::Platt { a: 2.0, b: 0.5 },
                    threshold: 1.0,
                },
            ])
            .unwrap(),
        );
        art
    }

    #[test]
    fn cascade_artifacts_roundtrip_with_casc_descriptor() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-casc-{}", std::process::id()));
        let art = toy_cascade_artifact("casc", 2);
        let path = art.save(&dir).unwrap();
        // The descriptor section is present and names both tiers.
        let bytes = std::fs::read(&path).unwrap();
        let entries = crate::container::parse_sections(&bytes).unwrap();
        let casc = crate::container::find(&entries, crate::container::SEC_CASC).unwrap();
        let body = std::str::from_utf8(&bytes[casc.offset..casc.offset + casc.len]).unwrap();
        assert!(body.contains("\"tiers\""), "{body}");
        assert!(body.contains("platt"), "{body}");
        assert!(body.contains("isotonic"), "{body}");
        // Heap and mmap loads agree bit-exactly with the saved model.
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let back = ModelArtifact::load_with(&path, mode).unwrap();
            assert_eq!(back.model, art.model, "{mode:?}");
            assert_eq!(back.head().family, "cascade");
        }
        // Head reads report the cascade family without decoding the model.
        let head = ModelArtifact::load_head(&path).unwrap();
        assert_eq!(head.family, "cascade");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_sections_are_ignored_by_this_reader() {
        // A future writer may append sections this build has never heard of
        // (exactly how `CASC` itself was introduced): rebuilding a valid
        // artifact with an extra unknown section must not break loads.
        let dir = std::env::temp_dir().join(format!("hamlet-art-unk-{}", std::process::id()));
        let art = toy_artifact("unk", 1);
        let path = art.save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let entries = crate::container::parse_sections(&bytes).unwrap();
        let mut sections: Vec<([u8; 8], &[u8])> = entries
            .iter()
            .filter(|e| e.tag != crate::container::SEC_CRCS)
            .map(|e| (e.tag, &bytes[e.offset..e.offset + e.len]))
            .collect();
        sections.push((*b"XTRA\0\0\0\0", b"future stuff".as_slice()));
        let rebuilt = crate::container::build_versioned(FORMAT_VERSION, &sections);
        let p = dir.join("unk2@1.model.bin");
        std::fs::write(&p, rebuilt).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let back = ModelArtifact::load_with(&p, mode).unwrap();
            assert_eq!(back.model, art.model, "{mode:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_roundtrip_v3_default() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-{}", std::process::id()));
        let art = toy_artifact("toy-model", 3);
        let path = art.save(&dir).unwrap();
        assert!(path.ends_with("toy-model@3.model.bin"), "{path:?}");
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let back = ModelArtifact::load_with(&path, mode).unwrap();
            assert_eq!(back.key(), "toy-model@3");
            assert_eq!(back.schema_fingerprint, 0xDEADBEEF);
            assert_eq!(back.features().len(), 2);
            assert_eq!(back.feature_fingerprint(), art.feature_fingerprint());
            // The dictionaries survive the roundtrip.
            assert!(back.contract.has_domains());
            assert!(back.contract.is_open(1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_format_v2_json_still_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-v2w-{}", std::process::id()));
        let art = toy_artifact("json-model", 1);
        let path = art.save_format(&dir, Format::V2).unwrap();
        assert!(path.ends_with("json-model@1.model.json"), "{path:?}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"format_version\":2"), "writes v2 on disk");
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.key(), "json-model@1");
        assert_eq!(back.format_version, FORMAT_VERSION, "normalized on load");
        assert!(back.contract.has_domains());
        // v1 is read-only.
        assert!(art.save_format(&dir, Format::V1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_version_on_disk_parses_filenames_only() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-ver-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("m", 2).save(&dir).unwrap();
        toy_artifact("m", 9).save_format(&dir, Format::V2).unwrap();
        toy_artifact("other", 40).save(&dir).unwrap();
        // Corrupt content is irrelevant: only the filename is read.
        std::fs::write(dir.join("m@11.model.bin"), "garbage").unwrap();
        std::fs::write(dir.join("nonsense.txt"), "x").unwrap();
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "m"), 11);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "other"), 40);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "ghost"), 0);
        assert_eq!(
            ModelArtifact::max_version_on_disk(std::path::Path::new("/nope"), "m"),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_gate_rejects_future_versions() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-v-{}", std::process::id()));
        let mut art = toy_artifact("future", 1);
        art.format_version = FORMAT_VERSION + 1;
        let path = art.save(&dir).unwrap();
        match ModelArtifact::load(&path) {
            Err(ServeError::Format { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected format error, got {other:?}"),
        }
        // Same gate on the JSON path.
        let path = art.save_format(&dir, Format::V2).unwrap();
        match ModelArtifact::load(&path) {
            Err(ServeError::Format { found, .. }) => assert_eq!(found, FORMAT_VERSION + 1),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_coded_enforces_contract() {
        let art = toy_artifact("v", 1);
        // Happy path: 2 rows × 2 features, codes in domain, flattened
        // row-major for the predict hot path.
        assert_eq!(
            art.validate_coded(&[vec![0, 4], vec![1, 0]]).unwrap(),
            vec![0, 4, 1, 0]
        );
        // Wrong width.
        assert!(art.validate_coded(&[vec![0, 1, 0], vec![1, 1]]).is_err());
        // Out-of-domain code.
        assert!(art.validate_coded(&[vec![0, 5]]).is_err());
        // Empty batch.
        assert!(art.validate_coded(&[]).is_err());
    }

    #[test]
    fn feature_fingerprint_tracks_contract() {
        let a = toy_artifact("a", 1);
        let mut b = toy_artifact("a", 1);
        assert_eq!(a.feature_fingerprint(), b.feature_fingerprint());
        b.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "xs0",
                Provenance::Home,
                CatDomain::synthetic("xs0", 2).into_shared(),
            ),
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic_with_others("fk", 5).into_shared(),
            ),
        ])
        .unwrap();
        assert_ne!(a.feature_fingerprint(), b.feature_fingerprint());
    }

    #[test]
    fn v1_artifacts_load_through_the_shim() {
        // A faithful pre-v2 payload: `features` key, no domains.
        let v1 = r#"{
            "format_version": 1,
            "name": "legacy",
            "version": 4,
            "model": {"Majority": {"positive": true}},
            "feature_config": "NoJoin",
            "features": [
                {"name": "xs0", "cardinality": 2, "provenance": "Home"},
                {"name": "fk", "cardinality": 5,
                 "provenance": {"ForeignKey": {"dim": 0}}}
            ],
            "schema_fingerprint": 12345,
            "metadata": {
                "dataset": "toy", "spec": "TreeGini", "train_rows": 10,
                "metrics": {"model": "DT-Gini", "config": "NoJoin",
                            "train_accuracy": 1.0, "val_accuracy": 0.9,
                            "test_accuracy": 0.8, "seconds": 0.1,
                            "winner": "minsplit=2"}
            }
        }"#;
        let dir = std::env::temp_dir().join(format!("hamlet-art-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy@4.model.json");
        std::fs::write(&path, v1).unwrap();
        let art = ModelArtifact::load(&path).unwrap();
        assert_eq!(art.key(), "legacy@4");
        assert_eq!(art.format_version, FORMAT_VERSION, "normalized on load");
        assert_eq!(art.features().len(), 2);
        assert!(!art.contract.has_domains(), "v1 carries no dictionaries");
        // Pre-encoded codes still validate; raw labels are rejected with a
        // clear contract error.
        art.validate_coded(&[vec![0, 4]]).unwrap();
        let err = art.encode_raw(&[vec!["a".into(), "b".into()]]).unwrap_err();
        assert!(err.to_string().contains("no dictionary"), "{err}");
        // Head parsing reports the same identity without the model.
        let head = ModelArtifact::load_head(&path).unwrap();
        assert_eq!(head.format, Format::V1);
        assert_eq!(head.key(), "legacy@4");
        assert_eq!(head.family, "majority");
        assert_eq!(head.n_features, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn head_matches_full_load_across_formats() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-head-{}", std::process::id()));
        let art = toy_artifact("headed", 6);
        for format in [Format::V3, Format::V2] {
            let path = art.save_format(&dir, format).unwrap();
            let head = ModelArtifact::load_head(&path).unwrap();
            assert_eq!(head.format, format);
            assert_eq!(head.key(), "headed@6");
            assert_eq!(head.family, "majority");
            assert_eq!(head.config, "NoJoin");
            assert_eq!(head.n_features, 2);
            assert_eq!(head.test_accuracy, 0.8);
            assert_eq!(head.dataset, "toy");
            assert_eq!(head.schema_fingerprint, 0xDEADBEEF);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_v3_files_fail_cleanly() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-corrupt-{}", std::process::id()));
        let art = toy_artifact("c", 1);
        let path = art.save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncations at every stratum: header, table, payload.
        for cut in [2, 10, 30, bytes.len() / 2, bytes.len() - 1] {
            let p = dir.join(format!("cut{cut}.model.bin"));
            std::fs::write(&p, &bytes[..cut]).unwrap();
            for mode in [LoadMode::Heap, LoadMode::Mmap] {
                let err = ModelArtifact::load_with(&p, mode);
                assert!(err.is_err(), "cut {cut} mode {mode:?} must fail");
            }
            if cut <= 30 {
                // Header/table damage breaks head reads too; a payload-only
                // truncation legitimately leaves the META head readable.
                assert!(ModelArtifact::load_head(&p).is_err(), "head cut {cut}");
            }
        }
        // Flipped magic falls through to the JSON parser and fails there.
        let mut flipped = bytes.clone();
        flipped[0] = b'X';
        let p = dir.join("magic.model.bin");
        std::fs::write(&p, &flipped).unwrap();
        assert!(ModelArtifact::load(&p).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_bits_fail_the_checksum_not_the_parse() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-crc-{}", std::process::id()));
        let art = toy_artifact("crc", 1);
        let path = art.save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let entries = crate::container::parse_sections(&bytes).unwrap();

        // A flipped bit in the MODL payload: the heap (default) load path
        // verifies every section and fails with a named checksum error.
        let modl = crate::container::find(&entries, crate::container::SEC_MODL).unwrap();
        let mut flipped = bytes.clone();
        flipped[modl.offset + modl.len - 1] ^= 0x01;
        let p = dir.join("crcflip@1.model.bin");
        std::fs::write(&p, &flipped).unwrap();
        let err = ModelArtifact::load_with(&p, LoadMode::Heap)
            .unwrap_err()
            .to_string();
        assert!(err.contains("checksum"), "{err}");
        assert!(err.contains("MODL"), "{err}");
        // The mmap path deliberately defers MODL verification (scanning it
        // would fault in the whole payload): the load itself succeeds.
        assert!(ModelArtifact::load_with(&p, LoadMode::Mmap).is_ok());

        // A flipped bit in a structural section (DICT) fails BOTH paths.
        let dict = crate::container::find(&entries, crate::container::SEC_DICT).unwrap();
        let mut bad_dict = bytes.clone();
        bad_dict[dict.offset] ^= 0x01;
        let p2 = dir.join("dictflip@1.model.bin");
        std::fs::write(&p2, &bad_dict).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let err = ModelArtifact::load_with(&p2, mode).unwrap_err().to_string();
            assert!(err.contains("checksum"), "{mode:?}: {err}");
            assert!(err.contains("DICT"), "{mode:?}: {err}");
        }

        // The pristine file still loads and reports its mapping source.
        let (back, map) = ModelArtifact::load_with_source(&path, LoadMode::Mmap).unwrap();
        assert_eq!(back.key(), "crc@1");
        assert!(map.is_some(), "mmap loads surface their mapping");
        let (_, none) = ModelArtifact::load_with_source(&path, LoadMode::Heap).unwrap();
        assert!(none.is_none(), "heap loads have no mapping");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_dedups_shared_dictionaries_on_disk() {
        use hamlet_ml::dataset::Provenance;
        // Two features sharing one dictionary (the FK/RID case) must store
        // its labels once; a third distinct domain stores separately.
        let shared = CatDomain::synthetic("big", 64).into_shared();
        let mut art = toy_artifact("dedup", 1);
        art.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain("fk", Provenance::ForeignKey { dim: 0 }, shared.clone()),
            FeatureMeta::with_domain("rid", Provenance::Foreign { dim: 0 }, shared),
            FeatureMeta::with_domain(
                "other",
                Provenance::Home,
                CatDomain::synthetic("other", 3).into_shared(),
            ),
        ])
        .unwrap();
        let dir = std::env::temp_dir().join(format!("hamlet-art-dedup-{}", std::process::id()));
        let deduped_len = std::fs::metadata(art.save(&dir).unwrap()).unwrap().len();

        // Same contract, domains duplicated per feature (what a v2 JSON
        // load produces): the v3 writer re-merges them by content.
        let mut dup = art.clone();
        dup.contract = FeatureContract::new(
            art.contract
                .features()
                .iter()
                .map(|f| FeatureMeta {
                    domain: f.domain.as_ref().map(|d| {
                        CatDomain::new(d.name(), d.labels().to_vec())
                            .unwrap()
                            .into_shared()
                    }),
                    ..f.clone()
                })
                .collect(),
        )
        .unwrap();
        dup.name = "dedup2".into();
        let dup_len = std::fs::metadata(dup.save(&dir).unwrap()).unwrap().len();
        assert_eq!(
            deduped_len, dup_len,
            "content-equal domains dedup to identical container sizes"
        );
        let back = ModelArtifact::load(&dir.join("dedup2@1.model.bin")).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(
                back.contract.feature(0).domain.as_ref().unwrap(),
                back.contract.feature(1).domain.as_ref().unwrap()
            ),
            "load restores sharing"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
