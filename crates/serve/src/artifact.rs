//! Versioned, validated persistence of trained models.
//!
//! A [`ModelArtifact`] is everything needed to serve a classifier trained by
//! `hamlet_core::experiment`: the model itself (as a serializable
//! [`AnyClassifier`]), the [`FeatureConfig`] it was trained under, the full
//! input [`FeatureContract`] (per feature: name, cardinality, provenance
//! and — since format v2 — the label↔code dictionary), a fingerprint of the
//! source star schema, and training metadata (metrics, spec, wall-clock).
//! Artifacts are JSON files (`<name>@<version>.model.json`) with an explicit
//! [`FORMAT_VERSION`] gate, so a future layout change fails loudly instead
//! of mis-deserializing.
//!
//! ## Format history
//!
//! - **v1** — feature metadata under a `features` key, no dictionaries.
//!   Still readable: [`ModelArtifact::load`] upgrades v1 payloads in memory
//!   (the contract simply has no domains, so such models only accept
//!   pre-encoded code rows, never raw labels).
//! - **v2** — the contract (with embedded domains) under a `contract` key.

use std::path::{Path, PathBuf};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::contract::{BatchError, FeatureContract};
use hamlet_ml::dataset::FeatureMeta;

use crate::error::{Result, ServeError};

/// Artifact layout version written by this build.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest artifact layout this build can still read (upgraded on load).
pub const MIN_READ_FORMAT_VERSION: u32 = 1;

/// Filename suffix for artifacts in an artifact directory.
pub const ARTIFACT_SUFFIX: &str = ".model.json";

/// Provenance and quality records captured at training time.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainingMetadata {
    /// Dataset identifier (emulator or scenario name).
    pub dataset: String,
    /// The model family/spec that was tuned.
    pub spec: ModelSpec,
    /// Number of training rows.
    pub train_rows: usize,
    /// Full experiment metrics (accuracies, runtime, winning cell).
    pub metrics: RunResult,
}

/// A servable trained model with its input contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    /// Artifact layout version (see [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Registry name (caller-chosen, e.g. `movies-tree`).
    pub name: String,
    /// Monotonic version under the name; the registry serves the latest by
    /// default.
    pub version: u32,
    /// The trained classifier.
    pub model: AnyClassifier,
    /// Feature configuration the model was trained under.
    pub feature_config: FeatureConfig,
    /// The input contract: expected columns in order (every prediction row
    /// supplies one code per entry, each `< cardinality`), plus — on
    /// format-v2 artifacts — the label↔code dictionary per feature, which
    /// is what lets `/v1/predict` accept raw label strings.
    pub contract: FeatureContract,
    /// Fingerprint of the star schema that produced the training data
    /// (`StarSchema::fingerprint`).
    pub schema_fingerprint: u64,
    /// Training provenance and metrics.
    pub metadata: TrainingMetadata,
}

impl ModelArtifact {
    /// Registry key `name@version`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// Expected input columns, in contract order.
    pub fn features(&self) -> &[FeatureMeta] {
        self.contract.features()
    }

    /// Fingerprint of the *feature space* this model consumes (names,
    /// cardinalities, provenance, dictionaries, in order). Computed, not
    /// stored: it can never drift from the contract.
    pub fn feature_fingerprint(&self) -> u64 {
        self.contract.fingerprint()
    }

    fn batch_error(&self, e: BatchError) -> ServeError {
        ServeError::BadRequest(format!("model `{}`: {e}", self.key()))
    }

    /// Validates a batch of pre-encoded code rows against the contract and
    /// flattens it row-major for the batched predict hot path. Every
    /// offending row is reported with its index and feature name.
    pub fn validate_coded(&self, rows: &[Vec<u32>]) -> Result<Vec<u32>> {
        if rows.is_empty() {
            return Err(ServeError::BadRequest("empty prediction batch".into()));
        }
        self.contract
            .validate_batch(rows)
            .map_err(|e| self.batch_error(e))
    }

    /// Dictionary-encodes a batch of raw label rows server-side (the NoJoin
    /// FK-as-feature rewrite at ingest). Unseen labels fall back to the
    /// `Others` slot on open domains and are 4xx-worthy per-row errors on
    /// closed ones; format-v1 artifacts (no dictionaries) reject raw rows
    /// outright.
    pub fn encode_raw(&self, rows: &[Vec<String>]) -> Result<Vec<u32>> {
        if rows.is_empty() {
            return Err(ServeError::BadRequest("empty prediction batch".into()));
        }
        self.contract
            .encode_batch(rows)
            .map_err(|e| self.batch_error(e))
    }

    /// Canonical file path inside an artifact directory.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}{ARTIFACT_SUFFIX}", self.key()))
    }

    /// Persists the artifact, creating the directory if needed. The write
    /// goes through a temp file + rename so readers never observe a torn
    /// artifact.
    pub fn save(&self, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::io(format!("creating {}", dir.display()), e))?;
        let path = self.path_in(dir);
        let tmp = dir.join(format!(".{}.tmp", self.key()));
        let json = serde_json::to_string(self)?;
        std::fs::write(&tmp, json)
            .map_err(|e| ServeError::io(format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServeError::io(format!("renaming into {}", path.display()), e))?;
        Ok(path)
    }

    /// Highest version present in `dir` for `name`, parsed from artifact
    /// *filenames* (`name@V.model.json`) — no deserialization, so version
    /// allocation does not need to materialize every stored model. Returns
    /// 0 when none exist.
    pub fn max_version_on_disk(dir: &Path, name: &str) -> u32 {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| {
                let file = e.file_name();
                let file = file.to_str()?;
                let stem = file.strip_suffix(ARTIFACT_SUFFIX)?;
                let (n, v) = stem.rsplit_once('@')?;
                (n == name).then(|| v.parse().ok()).flatten()
            })
            .max()
            .unwrap_or(0)
    }

    /// Loads and format-checks one artifact file. Format-v1 payloads are
    /// upgraded in memory (see [`upgrade_v1`]); anything newer than
    /// [`FORMAT_VERSION`] or older than [`MIN_READ_FORMAT_VERSION`] is a
    /// hard error.
    pub fn load(path: &Path) -> Result<ModelArtifact> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::io(format!("reading {}", path.display()), e))?;
        // Check the version gate before full deserialization so a layout
        // change yields a clear error.
        let mut value = serde_json::from_str::<serde_json::Value>(&text)?;
        let found = match &value {
            serde_json::Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == "format_version")
                .and_then(|(_, v)| match v {
                    serde_json::Value::Num(n) => n.as_u64(),
                    _ => None,
                }),
            _ => None,
        };
        match found {
            Some(v) if v == u64::from(FORMAT_VERSION) => {}
            Some(v)
                if (u64::from(MIN_READ_FORMAT_VERSION)..u64::from(FORMAT_VERSION)).contains(&v) =>
            {
                upgrade_v1(&mut value)
            }
            Some(v) => {
                return Err(ServeError::Format {
                    found: v as u32,
                    supported: FORMAT_VERSION,
                })
            }
            None => {
                return Err(ServeError::Json(format!(
                    "{} has no format_version field",
                    path.display()
                )))
            }
        }
        let artifact: ModelArtifact = serde_json::from_value(&value)?;
        Ok(artifact)
    }
}

/// Read-compat shim: rewrites a format-v1 payload into the v2 layout in
/// memory. v1 stored the contract's feature array under a `features` key
/// (and its entries carry no `domain`, which deserializes as `None`); v2
/// renamed the key to `contract`. The version field is normalized to
/// [`FORMAT_VERSION`] so a subsequent `save` writes a coherent v2 file.
fn upgrade_v1(value: &mut serde_json::Value) {
    if let serde_json::Value::Obj(entries) = value {
        for (key, entry) in entries.iter_mut() {
            match key.as_str() {
                "features" => *key = "contract".to_string(),
                "format_version" => {
                    *entry =
                        serde_json::Value::Num(serde_json::Number::UInt(u64::from(FORMAT_VERSION)));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hamlet_ml::dataset::Provenance;
    use hamlet_ml::model::MajorityClass;
    use hamlet_relation::domain::CatDomain;

    /// A v2 artifact whose contract carries dictionaries: `xs0` is a closed
    /// two-label domain, `fk` an open domain `v0..v3 + Others` (card 5).
    pub(crate) fn toy_artifact(name: &str, version: u32) -> ModelArtifact {
        ModelArtifact {
            format_version: FORMAT_VERSION,
            name: name.into(),
            version,
            model: AnyClassifier::Majority(MajorityClass { positive: true }),
            feature_config: FeatureConfig::NoJoin,
            contract: FeatureContract::new(vec![
                FeatureMeta::with_domain(
                    "xs0",
                    Provenance::Home,
                    CatDomain::synthetic("xs0", 2).into_shared(),
                ),
                FeatureMeta::with_domain(
                    "fk",
                    Provenance::ForeignKey { dim: 0 },
                    CatDomain::synthetic_with_others("fk", 4).into_shared(),
                ),
            ])
            .unwrap(),
            schema_fingerprint: 0xDEADBEEF,
            metadata: TrainingMetadata {
                dataset: "toy".into(),
                spec: ModelSpec::TreeGini,
                train_rows: 10,
                metrics: RunResult {
                    model: "DT-Gini".into(),
                    config: "NoJoin".into(),
                    train_accuracy: 1.0,
                    val_accuracy: 0.9,
                    test_accuracy: 0.8,
                    seconds: 0.1,
                    winner: "minsplit=2".into(),
                },
            },
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-{}", std::process::id()));
        let art = toy_artifact("toy-model", 3);
        let path = art.save(&dir).unwrap();
        assert!(path.ends_with("toy-model@3.model.json"));
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.key(), "toy-model@3");
        assert_eq!(back.schema_fingerprint, 0xDEADBEEF);
        assert_eq!(back.features().len(), 2);
        assert_eq!(back.feature_fingerprint(), art.feature_fingerprint());
        // The dictionaries survive the roundtrip.
        assert!(back.contract.has_domains());
        assert!(back.contract.is_open(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_version_on_disk_parses_filenames_only() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-ver-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("m", 2).save(&dir).unwrap();
        toy_artifact("m", 9).save(&dir).unwrap();
        toy_artifact("other", 40).save(&dir).unwrap();
        // Corrupt content is irrelevant: only the filename is read.
        std::fs::write(dir.join("m@11.model.json"), "garbage").unwrap();
        std::fs::write(dir.join("nonsense.txt"), "x").unwrap();
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "m"), 11);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "other"), 40);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "ghost"), 0);
        assert_eq!(
            ModelArtifact::max_version_on_disk(std::path::Path::new("/nope"), "m"),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_gate_rejects_future_versions() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-v-{}", std::process::id()));
        let mut art = toy_artifact("future", 1);
        art.format_version = FORMAT_VERSION + 1;
        let path = art.save(&dir).unwrap();
        match ModelArtifact::load(&path) {
            Err(ServeError::Format { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_coded_enforces_contract() {
        let art = toy_artifact("v", 1);
        // Happy path: 2 rows × 2 features, codes in domain, flattened
        // row-major for the predict hot path.
        assert_eq!(
            art.validate_coded(&[vec![0, 4], vec![1, 0]]).unwrap(),
            vec![0, 4, 1, 0]
        );
        // Wrong width.
        assert!(art.validate_coded(&[vec![0, 1, 0], vec![1, 1]]).is_err());
        // Out-of-domain code.
        assert!(art.validate_coded(&[vec![0, 5]]).is_err());
        // Empty batch.
        assert!(art.validate_coded(&[]).is_err());
    }

    #[test]
    fn feature_fingerprint_tracks_contract() {
        let a = toy_artifact("a", 1);
        let mut b = toy_artifact("a", 1);
        assert_eq!(a.feature_fingerprint(), b.feature_fingerprint());
        b.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "xs0",
                Provenance::Home,
                CatDomain::synthetic("xs0", 2).into_shared(),
            ),
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic_with_others("fk", 5).into_shared(),
            ),
        ])
        .unwrap();
        assert_ne!(a.feature_fingerprint(), b.feature_fingerprint());
    }

    #[test]
    fn v1_artifacts_load_through_the_shim() {
        // A faithful pre-v2 payload: `features` key, no domains.
        let v1 = r#"{
            "format_version": 1,
            "name": "legacy",
            "version": 4,
            "model": {"Majority": {"positive": true}},
            "feature_config": "NoJoin",
            "features": [
                {"name": "xs0", "cardinality": 2, "provenance": "Home"},
                {"name": "fk", "cardinality": 5,
                 "provenance": {"ForeignKey": {"dim": 0}}}
            ],
            "schema_fingerprint": 12345,
            "metadata": {
                "dataset": "toy", "spec": "TreeGini", "train_rows": 10,
                "metrics": {"model": "DT-Gini", "config": "NoJoin",
                            "train_accuracy": 1.0, "val_accuracy": 0.9,
                            "test_accuracy": 0.8, "seconds": 0.1,
                            "winner": "minsplit=2"}
            }
        }"#;
        let dir = std::env::temp_dir().join(format!("hamlet-art-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy@4.model.json");
        std::fs::write(&path, v1).unwrap();
        let art = ModelArtifact::load(&path).unwrap();
        assert_eq!(art.key(), "legacy@4");
        assert_eq!(art.format_version, FORMAT_VERSION, "normalized on load");
        assert_eq!(art.features().len(), 2);
        assert!(!art.contract.has_domains(), "v1 carries no dictionaries");
        // Pre-encoded codes still validate; raw labels are rejected with a
        // clear contract error.
        art.validate_coded(&[vec![0, 4]]).unwrap();
        let err = art.encode_raw(&[vec!["a".into(), "b".into()]]).unwrap_err();
        assert!(err.to_string().contains("no dictionary"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
