//! Versioned, validated persistence of trained models.
//!
//! A [`ModelArtifact`] is everything needed to serve a classifier trained by
//! `hamlet_core::experiment`: the model itself (as a serializable
//! [`AnyClassifier`]), the [`FeatureConfig`] it was trained under, the
//! expected input feature space ([`FeatureMeta`] per column: name,
//! cardinality, provenance), a fingerprint of the source star schema, and
//! training metadata (metrics, spec, wall-clock). Artifacts are JSON files
//! (`<name>@<version>.model.json`) with an explicit [`FORMAT_VERSION`] gate,
//! so a future layout change fails loudly instead of mis-deserializing.

use std::path::{Path, PathBuf};

use hamlet_core::experiment::RunResult;
use hamlet_core::feature_config::FeatureConfig;
use hamlet_core::model_zoo::ModelSpec;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::dataset::FeatureMeta;
use hamlet_relation::fingerprint::Fingerprint;

use crate::error::{Result, ServeError};

/// Artifact layout version written by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Filename suffix for artifacts in an artifact directory.
pub const ARTIFACT_SUFFIX: &str = ".model.json";

/// Provenance and quality records captured at training time.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainingMetadata {
    /// Dataset identifier (emulator or scenario name).
    pub dataset: String,
    /// The model family/spec that was tuned.
    pub spec: ModelSpec,
    /// Number of training rows.
    pub train_rows: usize,
    /// Full experiment metrics (accuracies, runtime, winning cell).
    pub metrics: RunResult,
}

/// A servable trained model with its input contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    /// Artifact layout version (see [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Registry name (caller-chosen, e.g. `movies-tree`).
    pub name: String,
    /// Monotonic version under the name; the registry serves the latest by
    /// default.
    pub version: u32,
    /// The trained classifier.
    pub model: AnyClassifier,
    /// Feature configuration the model was trained under.
    pub feature_config: FeatureConfig,
    /// Expected input columns, in order: every prediction row must supply
    /// one code per entry, each `< cardinality`.
    pub features: Vec<FeatureMeta>,
    /// Fingerprint of the star schema that produced the training data
    /// (`StarSchema::fingerprint`).
    pub schema_fingerprint: u64,
    /// Training provenance and metrics.
    pub metadata: TrainingMetadata,
}

impl ModelArtifact {
    /// Registry key `name@version`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// Fingerprint of the *feature space* this model consumes (names,
    /// cardinalities, provenance, in order). Computed, not stored: it can
    /// never drift from `features`.
    pub fn feature_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.features.len() as u64);
        for f in &self.features {
            fp.write_str(&f.name);
            fp.write_u64(u64::from(f.cardinality));
            // Provenance as (tag, dim).
            let (tag, dim) = match f.provenance {
                hamlet_ml::dataset::Provenance::Home => (0u64, 0usize),
                hamlet_ml::dataset::Provenance::ForeignKey { dim } => (1, dim),
                hamlet_ml::dataset::Provenance::Foreign { dim } => (2, dim),
            };
            fp.write_u64(tag).write_u64(dim as u64);
        }
        fp.finish()
    }

    /// Validates a batch of row-major codes against the input contract.
    pub fn validate_rows(&self, rows: &[u32], n_rows: usize) -> Result<()> {
        let d = self.features.len();
        if n_rows == 0 {
            return Err(ServeError::BadRequest("empty prediction batch".into()));
        }
        if rows.len() != n_rows * d {
            return Err(ServeError::BadRequest(format!(
                "batch has {} codes for {} rows; model `{}` expects {} features per row",
                rows.len(),
                n_rows,
                self.key(),
                d
            )));
        }
        for (i, row) in rows.chunks_exact(d).enumerate() {
            for (j, (&code, meta)) in row.iter().zip(&self.features).enumerate() {
                if code >= meta.cardinality {
                    return Err(ServeError::BadRequest(format!(
                        "row {i} feature {j} (`{}`): code {code} out of domain (cardinality {})",
                        meta.name, meta.cardinality
                    )));
                }
            }
        }
        Ok(())
    }

    /// Canonical file path inside an artifact directory.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}{ARTIFACT_SUFFIX}", self.key()))
    }

    /// Persists the artifact, creating the directory if needed. The write
    /// goes through a temp file + rename so readers never observe a torn
    /// artifact.
    pub fn save(&self, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::io(format!("creating {}", dir.display()), e))?;
        let path = self.path_in(dir);
        let tmp = dir.join(format!(".{}.tmp", self.key()));
        let json = serde_json::to_string(self)?;
        std::fs::write(&tmp, json)
            .map_err(|e| ServeError::io(format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServeError::io(format!("renaming into {}", path.display()), e))?;
        Ok(path)
    }

    /// Highest version present in `dir` for `name`, parsed from artifact
    /// *filenames* (`name@V.model.json`) — no deserialization, so version
    /// allocation does not need to materialize every stored model. Returns
    /// 0 when none exist.
    pub fn max_version_on_disk(dir: &Path, name: &str) -> u32 {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| {
                let file = e.file_name();
                let file = file.to_str()?;
                let stem = file.strip_suffix(ARTIFACT_SUFFIX)?;
                let (n, v) = stem.rsplit_once('@')?;
                (n == name).then(|| v.parse().ok()).flatten()
            })
            .max()
            .unwrap_or(0)
    }

    /// Loads and format-checks one artifact file.
    pub fn load(path: &Path) -> Result<ModelArtifact> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::io(format!("reading {}", path.display()), e))?;
        // Check the version gate before full deserialization so a layout
        // change yields a clear error.
        let value = serde_json::from_str::<serde_json::Value>(&text)?;
        let found = match &value {
            serde_json::Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == "format_version")
                .and_then(|(_, v)| match v {
                    serde_json::Value::Num(n) => n.as_u64(),
                    _ => None,
                }),
            _ => None,
        };
        match found {
            Some(v) if v == u64::from(FORMAT_VERSION) => {}
            Some(v) => {
                return Err(ServeError::Format {
                    found: v as u32,
                    supported: FORMAT_VERSION,
                })
            }
            None => {
                return Err(ServeError::Json(format!(
                    "{} has no format_version field",
                    path.display()
                )))
            }
        }
        let artifact: ModelArtifact = serde_json::from_value(&value)?;
        Ok(artifact)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hamlet_ml::dataset::Provenance;
    use hamlet_ml::model::MajorityClass;

    pub(crate) fn toy_artifact(name: &str, version: u32) -> ModelArtifact {
        ModelArtifact {
            format_version: FORMAT_VERSION,
            name: name.into(),
            version,
            model: AnyClassifier::Majority(MajorityClass { positive: true }),
            feature_config: FeatureConfig::NoJoin,
            features: vec![
                FeatureMeta {
                    name: "xs0".into(),
                    cardinality: 2,
                    provenance: Provenance::Home,
                },
                FeatureMeta {
                    name: "fk".into(),
                    cardinality: 5,
                    provenance: Provenance::ForeignKey { dim: 0 },
                },
            ],
            schema_fingerprint: 0xDEADBEEF,
            metadata: TrainingMetadata {
                dataset: "toy".into(),
                spec: ModelSpec::TreeGini,
                train_rows: 10,
                metrics: RunResult {
                    model: "DT-Gini".into(),
                    config: "NoJoin".into(),
                    train_accuracy: 1.0,
                    val_accuracy: 0.9,
                    test_accuracy: 0.8,
                    seconds: 0.1,
                    winner: "minsplit=2".into(),
                },
            },
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-{}", std::process::id()));
        let art = toy_artifact("toy-model", 3);
        let path = art.save(&dir).unwrap();
        assert!(path.ends_with("toy-model@3.model.json"));
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.key(), "toy-model@3");
        assert_eq!(back.schema_fingerprint, 0xDEADBEEF);
        assert_eq!(back.features.len(), 2);
        assert_eq!(back.feature_fingerprint(), art.feature_fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_version_on_disk_parses_filenames_only() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-ver-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("m", 2).save(&dir).unwrap();
        toy_artifact("m", 9).save(&dir).unwrap();
        toy_artifact("other", 40).save(&dir).unwrap();
        // Corrupt content is irrelevant: only the filename is read.
        std::fs::write(dir.join("m@11.model.json"), "garbage").unwrap();
        std::fs::write(dir.join("nonsense.txt"), "x").unwrap();
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "m"), 11);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "other"), 40);
        assert_eq!(ModelArtifact::max_version_on_disk(&dir, "ghost"), 0);
        assert_eq!(
            ModelArtifact::max_version_on_disk(std::path::Path::new("/nope"), "m"),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_gate_rejects_future_versions() {
        let dir = std::env::temp_dir().join(format!("hamlet-art-v-{}", std::process::id()));
        let mut art = toy_artifact("future", 1);
        art.format_version = FORMAT_VERSION + 1;
        let path = art.save(&dir).unwrap();
        match ModelArtifact::load(&path) {
            Err(ServeError::Format { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rows_enforces_contract() {
        let art = toy_artifact("v", 1);
        // Happy path: 2 rows × 2 features, codes in domain.
        art.validate_rows(&[0, 4, 1, 0], 2).unwrap();
        // Wrong width.
        assert!(art.validate_rows(&[0, 1, 0], 2).is_err());
        // Out-of-domain code.
        assert!(art.validate_rows(&[0, 5], 1).is_err());
        // Empty batch.
        assert!(art.validate_rows(&[], 0).is_err());
    }

    #[test]
    fn feature_fingerprint_tracks_contract() {
        let a = toy_artifact("a", 1);
        let mut b = toy_artifact("a", 1);
        assert_eq!(a.feature_fingerprint(), b.feature_fingerprint());
        b.features[1].cardinality = 6;
        assert_ne!(a.feature_fingerprint(), b.feature_fingerprint());
    }
}
