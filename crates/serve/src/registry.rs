//! A concurrent, versioned model registry.
//!
//! Prediction threads resolve models by `name` (latest version) or
//! `name@version` (pinned). The two paths are deliberately different:
//!
//! - **Bare names** — the many-small-requests hot path — go through a
//!   **lock-free snapshot**: an [`ArcSwapCell`] holding an immutable
//!   `name → latest artifact` map. A lookup is two atomic pins, a hash
//!   probe and an `Arc` clone; it never touches the registry's `RwLock`,
//!   so a training request holding the write lock (or a thundering herd of
//!   readers) can never stall the predict path. The snapshot is republished
//!   (an O(#names) map of `Arc` clones) under the write lock whenever a
//!   latest pointer changes — once per train, effectively never.
//! - **Pinned versions** and registry mutations use the existing
//!   `RwLock`ed index, which remains the source of truth.
//!
//! Artifacts are `Arc`-shared between the registry and in-flight requests,
//! making hot-swap (`insert` of a newer version) safe: running requests
//! keep the version they resolved.
//!
//! ## Lazy warm-load, promotion and demotion
//!
//! Only the *latest* version of each name serves bare-name traffic, so boot
//! no longer materializes every artifact version: the latest per name is
//! fully loaded (heap or mmap, see [`crate::artifact::LoadMode`]), while
//! older versions are registered as **lazy slots** holding just their
//! [`ArtifactHead`] — for v3 artifacts that is a container-header +
//! `META`-section read, a few hundred bytes regardless of model size. A
//! pinned `name@version` request against a lazy slot loads the payload on
//! first use and caches it; [`ModelRegistry::demote`] is the inverse,
//! returning a promoted non-latest version to its lazy slot so a burst of
//! pinned traffic does not keep old models resident forever.
//!
//! Mmap-loaded payloads get `madvise` residency hints at both transitions:
//! `WILLNEED` when a version is loaded to serve (warm-load latest or lazy
//! promotion), `DONTNEED` when it is demoted.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use hamlet_ml::binenc::{MapAdvice, MmapFile};

use crate::artifact::{
    split_artifact_stem, ArtifactHead, LoadMode, ModelArtifact, ARTIFACT_SUFFIX_BIN,
};
use crate::error::{Result, ServeError};
use crate::swap::ArcSwapCell;

/// One registry row, as reported by `GET /v1/models`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelSummary {
    /// Full key `name@version`.
    pub key: String,
    /// Registry name.
    pub name: String,
    /// Version under the name.
    pub version: u32,
    /// Model family tag (`tree`, `svm`, ...).
    pub family: String,
    /// Weight-tensor storage encoding (`f32`, or `i8`/`f16` when
    /// quantized).
    pub encoding: String,
    /// Feature-config name (`NoJoin`, `JoinAll`, ...).
    pub config: String,
    /// Expected input width (features per row).
    pub n_features: usize,
    /// Holdout accuracy recorded at training time.
    pub test_accuracy: f64,
    /// Source dataset recorded at training time.
    pub dataset: String,
    /// Whether the model payload is resident in memory (`false` = lazy
    /// slot, loaded on first use).
    pub resident: bool,
    /// Bytes of dense numeric payload (weights, support vectors, tables)
    /// the model keeps resident — 0 for lazy slots, whose payload is still
    /// on disk.
    pub resident_bytes: usize,
}

fn next_version_in(index: &Index, name: &str) -> u32 {
    index.latest.get(name).map_or(1, |a| a.version + 1)
}

fn summarize_head(head: &ArtifactHead, resident: bool, resident_bytes: usize) -> ModelSummary {
    ModelSummary {
        key: head.key(),
        name: head.name.clone(),
        version: head.version,
        family: head.family.clone(),
        encoding: head.encoding.clone(),
        config: head.config.clone(),
        n_features: head.n_features,
        test_accuracy: head.test_accuracy,
        dataset: head.dataset.clone(),
        resident,
        resident_bytes,
    }
}

/// A fully materialized artifact plus what the registry needs to manage
/// its residency: the backing file (for demotion back to a lazy slot) and
/// the memory mapping (for `madvise` hints), when known.
#[derive(Debug, Clone)]
struct ReadySlot {
    artifact: Arc<ModelArtifact>,
    /// Backing artifact file, when the slot came from (or was persisted
    /// to) disk. Required for demotion.
    origin: Option<PathBuf>,
    /// The mapping mmap-loaded weights borrow, kept for residency hints.
    map: Option<Arc<MmapFile>>,
}

/// A registered artifact: resident, or a head + path to load on first use.
#[derive(Debug, Clone)]
enum Slot {
    Ready(ReadySlot),
    Lazy(Arc<LazySlot>),
}

#[derive(Debug)]
struct LazySlot {
    path: PathBuf,
    head: ArtifactHead,
}

/// Index state behind the registry lock: artifacts by exact key plus a
/// latest-version pointer per name, so bare-name resolution is O(1)
/// instead of a scan over every artifact. The latest pointer is always a
/// fully loaded artifact; its lock-free mirror is the snapshot in
/// [`ModelRegistry::latest_cache`].
#[derive(Debug, Default)]
struct Index {
    by_key: HashMap<String, Slot>,
    latest: HashMap<String, Arc<ModelArtifact>>,
}

impl Index {
    /// Inserts a resident artifact. Returns whether a latest pointer
    /// changed (the caller must republish the snapshot).
    fn insert(&mut self, ready: ReadySlot) -> bool {
        let artifact = &ready.artifact;
        let replaces_latest = self
            .latest
            .get(&artifact.name)
            .is_none_or(|cur| artifact.version >= cur.version);
        if replaces_latest {
            self.latest
                .insert(artifact.name.clone(), Arc::clone(artifact));
        }
        self.by_key.insert(artifact.key(), Slot::Ready(ready));
        replaces_latest
    }

    /// Registers a non-latest version by head only; the payload loads on
    /// first `get`. Never touches the latest pointer.
    fn insert_lazy(&mut self, path: PathBuf, head: ArtifactHead) {
        self.by_key
            .insert(head.key(), Slot::Lazy(Arc::new(LazySlot { path, head })));
    }

    /// Removes one key, repairing the latest pointer for its name (rare —
    /// only the persist-failure rollback path, which always removes a
    /// resident artifact). Returns whether a latest pointer changed.
    fn remove(&mut self, key: &str) -> bool {
        let Some(removed) = self.by_key.remove(key) else {
            return false;
        };
        let (name, version) = match &removed {
            Slot::Ready(r) => (r.artifact.name.clone(), r.artifact.version),
            Slot::Lazy(l) => (l.head.name.clone(), l.head.version),
        };
        if self
            .latest
            .get(&name)
            .is_some_and(|cur| cur.version == version)
        {
            // Only resident artifacts can serve the bare name.
            match self
                .by_key
                .values()
                .filter_map(|s| match s {
                    Slot::Ready(r) if r.artifact.name == name => Some(&r.artifact),
                    _ => None,
                })
                .max_by_key(|a| a.version)
            {
                Some(next) => {
                    let next = Arc::clone(next);
                    self.latest.insert(name, next);
                }
                None => {
                    self.latest.remove(&name);
                }
            }
            return true;
        }
        false
    }
}

/// A residency transition worth auditing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryNote {
    /// A lazy slot's payload was loaded and swapped in.
    Promoted,
    /// A resident non-latest version was returned to its lazy slot.
    Demoted,
    /// A held candidate version became the latest for its name (rollout
    /// auto-promote cleared its guardrails).
    Adopted,
}

/// Callback invoked on residency transitions (the server wires this to
/// telemetry's audit log). Called *after* the registry released its locks,
/// so observers may freely call back into the registry.
pub type RegistryObserver = Arc<dyn Fn(RegistryNote, &str) + Send + Sync>;

/// Settable-once-or-more observer cell; `None` until the server installs
/// one, which keeps the registry usable standalone (tests, CLI).
#[derive(Default)]
struct ObserverCell(RwLock<Option<RegistryObserver>>);

impl ObserverCell {
    fn notify(&self, note: RegistryNote, key: &str) {
        let guard = self.0.read().expect("observer lock poisoned");
        if let Some(observer) = guard.as_ref() {
            observer(note, key);
        }
    }
}

impl std::fmt::Debug for ObserverCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.0.read() {
            Ok(guard) if guard.is_some() => "set",
            Ok(_) => "unset",
            Err(_) => "poisoned",
        };
        f.write_str(state)
    }
}

/// Thread-safe registry of loaded artifacts.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: RwLock<Index>,
    /// Lock-free mirror of `Index::latest`, republished under the write
    /// lock on every latest-pointer change. The bare-name predict hot path
    /// reads only this.
    latest_cache: ArcSwapCell<HashMap<String, Arc<ModelArtifact>>>,
    /// How lazily registered payloads are materialized on first use.
    load_mode: LoadMode,
    /// Residency-transition observer, when installed.
    observer: ObserverCell,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_load_mode(LoadMode::Heap)
    }
}

impl ModelRegistry {
    /// Empty registry (heap load mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry with an explicit load mode for lazy promotions.
    pub fn with_load_mode(load_mode: LoadMode) -> Self {
        ModelRegistry {
            inner: RwLock::new(Index::default()),
            latest_cache: ArcSwapCell::new(Some(Arc::new(HashMap::new()))),
            load_mode,
            observer: ObserverCell::default(),
        }
    }

    /// Installs the residency-transition observer (replacing any previous
    /// one). Fired outside registry locks, after the transition landed.
    pub fn set_observer(&self, observer: RegistryObserver) {
        *self.observer.0.write().expect("observer lock poisoned") = Some(observer);
    }

    /// The registry's artifact load mode.
    pub fn load_mode(&self) -> LoadMode {
        self.load_mode
    }

    /// Republishes the lock-free latest snapshot from the index. Must be
    /// called with the write lock held (so publishes are ordered).
    fn publish_latest(&self, index: &Index) {
        self.latest_cache
            .store(Some(Arc::new(index.latest.clone())));
    }

    /// Registry warm-loaded from every artifact in `dir` (heap mode; see
    /// [`ModelRegistry::warm_load_with`]).
    pub fn warm_load(dir: &Path) -> Result<(Self, usize)> {
        Self::warm_load_with(dir, LoadMode::Heap)
    }

    /// Registry warm-loaded from every `*.model.{bin,json}` in `dir`
    /// (missing directory = empty registry, so first boot needs no setup).
    /// Returns the registry and the number of artifacts registered.
    ///
    /// Only the **latest version per name is fully loaded** (with `mode`);
    /// older versions register lazily by header. When the same
    /// `name@version` exists in both formats, the binary file wins. An
    /// unreadable or wrong-format artifact is *skipped with a stderr
    /// warning* rather than failing the boot — one bad file (e.g. written
    /// by a newer build before a rollback) must not take every valid model
    /// offline; if the newest version of a name is the bad one, the next
    /// loadable version serves the bare name.
    pub fn warm_load_with(dir: &Path, mode: LoadMode) -> Result<(Self, usize)> {
        let registry = Self::with_load_mode(mode);
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((registry, 0)),
            Err(e) => return Err(ServeError::io(format!("listing {}", dir.display()), e)),
        };
        // Collect candidate files keyed by (name, version), binary first.
        let mut candidates: HashMap<(String, u32), PathBuf> = HashMap::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| ServeError::io(format!("listing {}", dir.display()), e))?;
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            let Some((name, version)) = split_artifact_stem(file) else {
                continue;
            };
            let path = entry.path();
            candidates
                .entry((name.to_string(), version))
                .and_modify(|existing| {
                    if file.ends_with(ARTIFACT_SUFFIX_BIN) {
                        *existing = path.clone();
                    }
                })
                .or_insert(path);
        }
        // Group versions per name, newest first.
        let mut by_name: HashMap<String, Vec<(u32, PathBuf)>> = HashMap::new();
        for ((name, version), path) in candidates {
            by_name.entry(name).or_default().push((version, path));
        }
        let mut loaded = 0;
        let mut index = registry.inner.write().expect("registry lock poisoned");
        for (_, mut versions) in by_name {
            versions.sort_by_key(|(version, _)| std::cmp::Reverse(*version));
            let mut have_latest = false;
            for (_, path) in versions {
                if !have_latest {
                    // Newest loadable version: materialize fully.
                    match ModelArtifact::load_with_source(&path, mode) {
                        Ok((artifact, map)) => {
                            if let Some(map) = &map {
                                map.advise(MapAdvice::WillNeed);
                            }
                            index.insert(ReadySlot {
                                artifact: Arc::new(artifact),
                                origin: Some(path),
                                map,
                            });
                            loaded += 1;
                            have_latest = true;
                        }
                        Err(e) => {
                            eprintln!("warm-load: skipping {}: {e}", path.display());
                        }
                    }
                } else {
                    // Older version: header only, payload on first use.
                    match ModelArtifact::load_head(&path) {
                        Ok(head) => {
                            index.insert_lazy(path, head);
                            loaded += 1;
                        }
                        Err(e) => {
                            eprintln!("warm-load: skipping {}: {e}", path.display());
                        }
                    }
                }
            }
        }
        registry.publish_latest(&index);
        drop(index);
        Ok((registry, loaded))
    }

    /// Registers an artifact under its `name@version` key, replacing any
    /// previous artifact at the same key. Returns the key.
    pub fn insert(&self, artifact: ModelArtifact) -> String {
        let key = artifact.key();
        let mut index = self.inner.write().expect("registry lock poisoned");
        let latest_changed = index.insert(ReadySlot {
            artifact: Arc::new(artifact),
            origin: None,
            map: None,
        });
        if latest_changed {
            self.publish_latest(&index);
        }
        key
    }

    /// Records the on-disk file backing an already registered key, making
    /// the slot demotable. Called after a successful persist.
    pub fn record_origin(&self, key: &str, path: &Path) {
        let mut index = self.inner.write().expect("registry lock poisoned");
        if let Some(Slot::Ready(ready)) = index.by_key.get_mut(key) {
            ready.origin = Some(path.to_path_buf());
        }
    }

    /// Resolves `name@version` exactly, or a bare `name` to its latest
    /// version — the latter entirely lock-free (see module docs). A lazy
    /// slot is loaded (with the registry's [`LoadMode`]) and cached on
    /// first resolution.
    pub fn get(&self, key_or_name: &str) -> Result<Arc<ModelArtifact>> {
        // Bare names never contain '@' (keys are always `name@version`), so
        // this is the hot path taken by every unpinned predict.
        if !key_or_name.contains('@') {
            return self
                .latest_cache
                .load()
                .expect("latest snapshot always published")
                .get(key_or_name)
                .map(Arc::clone)
                .ok_or_else(|| ServeError::ModelNotFound(key_or_name.to_string()));
        }
        let lazy = {
            let index = self.inner.read().expect("registry lock poisoned");
            match index.by_key.get(key_or_name) {
                Some(Slot::Ready(r)) => return Ok(Arc::clone(&r.artifact)),
                Some(Slot::Lazy(slot)) => Arc::clone(slot),
                None => {
                    // Not a pinned key: a *name* that itself contains '@'
                    // (never produced by the train path, but `insert`
                    // accepts anything) still resolves to its latest.
                    return index
                        .latest
                        .get(key_or_name)
                        .map(Arc::clone)
                        .ok_or_else(|| ServeError::ModelNotFound(key_or_name.to_string()));
                }
            }
        };
        self.promote(key_or_name, &lazy)
    }

    /// Loads a lazy slot's payload and swaps it in. Runs outside the lock;
    /// a concurrent promotion of the same key is harmless (one result
    /// wins the map, both are valid). The freshly promoted mapping gets a
    /// `WILLNEED` hint: a pinned request is about to touch its weights.
    fn promote(&self, key: &str, slot: &LazySlot) -> Result<Arc<ModelArtifact>> {
        let (artifact, map) = ModelArtifact::load_with_source(&slot.path, self.load_mode)?;
        if let Some(map) = &map {
            map.advise(MapAdvice::WillNeed);
        }
        let artifact = Arc::new(artifact);
        let fresh = {
            let mut index = self.inner.write().expect("registry lock poisoned");
            match index.by_key.get(key) {
                // Raced with another promotion: keep the incumbent.
                Some(Slot::Ready(r)) => return Ok(Arc::clone(&r.artifact)),
                _ => {
                    index.by_key.insert(
                        key.to_string(),
                        Slot::Ready(ReadySlot {
                            artifact: Arc::clone(&artifact),
                            origin: Some(slot.path.clone()),
                            map,
                        }),
                    );
                    artifact
                }
            }
        };
        // Only the promotion that actually landed is audited, and only
        // after the write lock dropped (the observer may re-enter).
        self.observer.notify(RegistryNote::Promoted, key);
        Ok(fresh)
    }

    /// Returns a promoted (resident) **non-latest** version to its lazy
    /// header-only slot, releasing the model payload. The inverse of the
    /// on-demand promotion in [`ModelRegistry::get`]: a burst of pinned
    /// traffic against an old version must not keep it resident forever.
    ///
    /// The latest version of a name cannot be demoted (it serves bare-name
    /// traffic), and a slot that was never persisted has nothing to reload
    /// from. Demoting an already lazy slot is a no-op. In-flight requests
    /// holding the artifact's `Arc` are unaffected; the payload memory is
    /// freed when the last of them finishes, and mmap-backed pages get a
    /// `DONTNEED` hint immediately.
    pub fn demote(&self, key: &str) -> Result<ModelSummary> {
        let summary = {
            let mut index = self.inner.write().expect("registry lock poisoned");
            let slot = index
                .by_key
                .get(key)
                .ok_or_else(|| ServeError::ModelNotFound(key.to_string()))?;
            let ready = match slot {
                // Already lazy: idempotent no-op, nothing to audit.
                Slot::Lazy(l) => return Ok(summarize_head(&l.head, false, 0)),
                Slot::Ready(r) => r.clone(),
            };
            if index
                .latest
                .get(&ready.artifact.name)
                .is_some_and(|latest| latest.version == ready.artifact.version)
            {
                return Err(ServeError::BadRequest(format!(
                    "cannot demote `{key}`: it is the latest version of `{}` and serves \
                     bare-name traffic",
                    ready.artifact.name
                )));
            }
            let Some(path) = ready.origin else {
                return Err(ServeError::BadRequest(format!(
                    "cannot demote `{key}`: no backing artifact file recorded for it"
                )));
            };
            if let Some(map) = &ready.map {
                map.advise(MapAdvice::DontNeed);
            }
            let head = ready.artifact.head();
            let summary = summarize_head(&head, false, 0);
            index.by_key.insert(
                key.to_string(),
                Slot::Lazy(Arc::new(LazySlot { path, head })),
            );
            summary
        };
        // Real Ready → Lazy transition: audit it with the lock released.
        self.observer.notify(RegistryNote::Demoted, key);
        Ok(summary)
    }

    /// Next free version for a name (1 when unused). Advisory only: for a
    /// race-free allocate-persist-register sequence use
    /// [`ModelRegistry::register_next_version`].
    pub fn next_version(&self, name: &str) -> u32 {
        let index = self.inner.read().expect("registry lock poisoned");
        next_version_in(&index, name)
    }

    /// Atomically assigns the next version under `artifact.name` and
    /// registers it, then runs `persist` on the finalized artifact
    /// *outside* the lock — concurrent trains for the same name can
    /// neither collide on a version nor overwrite each other's files, and
    /// predict traffic never blocks on artifact serialization or disk I/O.
    /// If `persist` fails the registration is rolled back and the registry
    /// is left unchanged (a concurrent reader may have briefly resolved
    /// the in-memory model, which is harmless: it was fully trained).
    /// `min_version` is a floor on the assigned version (pass
    /// `ModelArtifact::max_version_on_disk(dir, name) + 1` to respect
    /// artifacts on disk that were never warm-loaded into this registry).
    pub fn register_next_version<T>(
        &self,
        mut artifact: ModelArtifact,
        min_version: u32,
        persist: impl FnOnce(&ModelArtifact) -> Result<T>,
    ) -> Result<(String, T)> {
        let key = {
            let mut index = self.inner.write().expect("registry lock poisoned");
            artifact.version = next_version_in(&index, &artifact.name).max(min_version.max(1));
            let key = artifact.key();
            let latest_changed = index.insert(ReadySlot {
                artifact: Arc::new(artifact),
                origin: None,
                map: None,
            });
            if latest_changed {
                self.publish_latest(&index);
            }
            key
        };
        let registered = self.get(&key).expect("just inserted");
        match persist(&registered) {
            Ok(persisted) => Ok((key, persisted)),
            Err(e) => {
                let mut index = self.inner.write().expect("registry lock poisoned");
                if index.remove(&key) {
                    self.publish_latest(&index);
                }
                Err(e)
            }
        }
    }

    /// Atomically assigns the next free version under `artifact.name` and
    /// registers it as a **held candidate**: resolvable by its pinned
    /// `name@version` key (the rollout plane's shadow and canary lanes pin
    /// it) but invisible to bare-name traffic — the latest pointer and its
    /// lock-free snapshot are not touched. [`ModelRegistry::adopt`] cuts
    /// the name over once live guardrails clear. `persist` runs outside
    /// the lock exactly as in [`ModelRegistry::register_next_version`],
    /// with the same rollback when it fails.
    pub fn register_candidate<T>(
        &self,
        mut artifact: ModelArtifact,
        min_version: u32,
        persist: impl FnOnce(&ModelArtifact) -> Result<T>,
    ) -> Result<(String, T)> {
        let key = {
            let mut index = self.inner.write().expect("registry lock poisoned");
            let mut version = next_version_in(&index, &artifact.name).max(min_version.max(1));
            // Held candidates are invisible to the latest pointer that
            // `next_version_in` consults, so probe `by_key` until the slot
            // is genuinely free (two candidates must not collide).
            while index
                .by_key
                .contains_key(&format!("{}@{}", artifact.name, version))
            {
                version += 1;
            }
            artifact.version = version;
            let key = artifact.key();
            index.by_key.insert(
                key.clone(),
                Slot::Ready(ReadySlot {
                    artifact: Arc::new(artifact),
                    origin: None,
                    map: None,
                }),
            );
            key
        };
        let registered = self.get(&key).expect("just inserted");
        match persist(&registered) {
            Ok(persisted) => Ok((key, persisted)),
            Err(e) => {
                let mut index = self.inner.write().expect("registry lock poisoned");
                if index.remove(&key) {
                    self.publish_latest(&index);
                }
                Err(e)
            }
        }
    }

    /// Makes a held candidate (see [`ModelRegistry::register_candidate`])
    /// the latest version for its name, cutting bare-name traffic over to
    /// it. The candidate must be resident. Fires [`RegistryNote::Adopted`]
    /// after the locks drop.
    pub fn adopt(&self, key: &str) -> Result<ModelSummary> {
        let summary = {
            let mut index = self.inner.write().expect("registry lock poisoned");
            let artifact = match index.by_key.get(key) {
                Some(Slot::Ready(r)) => Arc::clone(&r.artifact),
                Some(Slot::Lazy(_)) => {
                    return Err(ServeError::BadRequest(format!(
                        "cannot adopt `{key}`: candidate is not resident"
                    )))
                }
                None => return Err(ServeError::ModelNotFound(key.to_string())),
            };
            let summary = summarize_head(&artifact.head(), true, artifact.model.weight_bytes());
            index.latest.insert(artifact.name.clone(), artifact);
            self.publish_latest(&index);
            summary
        };
        self.observer.notify(RegistryNote::Adopted, key);
        Ok(summary)
    }

    /// The inverse repair: if `key` is currently the latest for its name —
    /// e.g. a candidate artifact that warm-load materialized as newest
    /// after a restart mid-rollout — repoint the bare name at the highest
    /// *other* registered version, materializing it first when it is a
    /// lazy slot. Afterwards `key` serves only pinned traffic again. A key
    /// that is not latest is left untouched.
    pub fn hold(&self, key: &str) -> Result<()> {
        let (name, version, fallback) = {
            let index = self.inner.read().expect("registry lock poisoned");
            let (name, version) = match index.by_key.get(key) {
                Some(Slot::Ready(r)) => (r.artifact.name.clone(), r.artifact.version),
                Some(Slot::Lazy(l)) => (l.head.name.clone(), l.head.version),
                None => return Err(ServeError::ModelNotFound(key.to_string())),
            };
            if index
                .latest
                .get(&name)
                .is_none_or(|cur| cur.version != version)
            {
                return Ok(()); // already held
            }
            let fallback = index
                .by_key
                .values()
                .filter_map(|s| match s {
                    Slot::Ready(r) if r.artifact.name == name => Some(r.artifact.version),
                    Slot::Lazy(l) if l.head.name == name => Some(l.head.version),
                    _ => None,
                })
                .filter(|v| *v != version)
                .max();
            (name, version, fallback)
        };
        // Materialize the replacement outside the lock (it may be lazy and
        // need a disk load).
        let replacement = match fallback {
            Some(v) => Some(self.get(&format!("{name}@{v}"))?),
            None => None,
        };
        let mut index = self.inner.write().expect("registry lock poisoned");
        // Re-check under the write lock: a concurrent registration may
        // have moved the latest pointer while the replacement loaded.
        if index
            .latest
            .get(&name)
            .is_none_or(|cur| cur.version != version)
        {
            return Ok(());
        }
        match replacement {
            Some(artifact) => {
                index.latest.insert(name, artifact);
            }
            None => {
                index.latest.remove(&name);
            }
        }
        self.publish_latest(&index);
        Ok(())
    }

    /// All registered models, sorted by key for stable output. Lazy slots
    /// report from their header without loading payloads.
    pub fn list(&self) -> Vec<ModelSummary> {
        let index = self.inner.read().expect("registry lock poisoned");
        let mut out: Vec<ModelSummary> = index
            .by_key
            .values()
            .map(|slot| match slot {
                Slot::Ready(r) => {
                    summarize_head(&r.artifact.head(), true, r.artifact.model.weight_bytes())
                }
                Slot::Lazy(l) => summarize_head(&l.head, false, 0),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Number of registered artifacts (resident + lazy).
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .by_key
            .len()
    }

    /// Number of artifacts whose payload is resident in memory.
    pub fn resident_count(&self) -> usize {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .by_key
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests::toy_artifact;
    use crate::artifact::Format;

    #[test]
    fn name_resolves_to_latest_version() {
        let reg = ModelRegistry::new();
        reg.insert(toy_artifact("m", 1));
        reg.insert(toy_artifact("m", 3));
        reg.insert(toy_artifact("m", 2));
        reg.insert(toy_artifact("other", 9));
        assert_eq!(reg.get("m").unwrap().version, 3);
        assert_eq!(reg.get("m@2").unwrap().version, 2);
        assert!(reg.get("m@4").is_err());
        assert!(reg.get("ghost").is_err());
        assert_eq!(reg.next_version("m"), 4);
        assert_eq!(reg.next_version("fresh"), 1);
    }

    /// The tentpole property: a bare-name lookup never touches the
    /// registry lock. Holding the *write* lock (which would block any
    /// locked read path forever) must not stop `get("name")`.
    #[test]
    fn bare_name_lookup_succeeds_while_write_lock_is_held() {
        let reg = Arc::new(ModelRegistry::new());
        reg.insert(toy_artifact("hot", 2));
        let guard = reg.inner.write().expect("write lock");
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let got = reg.get("hot").map(|a| a.version);
                let missing = reg.get("ghost").is_err();
                tx.send((got, missing)).unwrap();
            })
        };
        let (got, missing) = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("bare-name get must not block on the registry lock");
        assert_eq!(got.unwrap(), 2);
        assert!(missing, "unknown names resolve lock-free too");
        drop(guard);
        reader.join().unwrap();
    }

    /// Readers hammer the lock-free path while versions are hot-swapped:
    /// every resolved version is valid and per-thread monotone (the
    /// snapshot never goes backwards).
    #[test]
    fn contended_bare_name_reads_are_monotone_under_hot_swap() {
        let reg = Arc::new(ModelRegistry::new());
        reg.insert(toy_artifact("hot", 1));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2000 {
                        let v = reg.get("hot").unwrap().version;
                        assert!(v >= last, "latest went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                for v in 2..60 {
                    reg.insert(toy_artifact("hot", v));
                }
            });
        });
        assert_eq!(reg.get("hot").unwrap().version, 59);
    }

    #[test]
    fn list_is_sorted_and_summarized() {
        let reg = ModelRegistry::new();
        reg.insert(toy_artifact("b", 1));
        reg.insert(toy_artifact("a", 1));
        let rows = reg.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "a@1");
        assert_eq!(rows[0].family, "majority");
        assert_eq!(rows[0].encoding, "f32");
        assert_eq!(rows[0].config, "NoJoin");
        assert_eq!(rows[0].n_features, 2);
        assert!(rows[0].resident);
        assert_eq!(rows[0].resident_bytes, 0, "majority has no weight arrays");
    }

    #[test]
    fn warm_load_roundtrips_a_directory() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("w", 1).save(&dir).unwrap();
        toy_artifact("w", 2).save(&dir).unwrap();
        // Non-artifact files are ignored.
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("w").unwrap().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_load_lazily_registers_non_latest_versions() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-lazy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("l", 1).save(&dir).unwrap();
        toy_artifact("l", 2).save_format(&dir, Format::V2).unwrap();
        toy_artifact("l", 3).save(&dir).unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 3);
        assert_eq!(
            reg.resident_count(),
            1,
            "only the latest version is resident after boot"
        );
        // The listing still reports every version, marking residency.
        let rows = reg.list();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().filter(|r| r.resident).count(), 1, "{rows:?}");
        // Bare name → resident latest; pinned old version loads on demand
        // (across formats: l@2 is a JSON artifact).
        assert_eq!(reg.get("l").unwrap().version, 3);
        assert_eq!(reg.get("l@2").unwrap().version, 2);
        assert_eq!(reg.get("l@1").unwrap().version, 1);
        assert_eq!(reg.resident_count(), 3, "promotions cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The demotion round-trip: promote a lazy old version by pinned get,
    /// demote it back, promote again — identical artifacts at every stage,
    /// and residency counts track the transitions.
    #[test]
    fn demote_returns_promoted_versions_to_lazy_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-dem-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("d", 1).save(&dir).unwrap();
        toy_artifact("d", 2).save(&dir).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let (reg, _) = ModelRegistry::warm_load_with(&dir, mode).unwrap();
            assert_eq!(reg.resident_count(), 1);
            // Promote d@1 via pinned get.
            let first = reg.get("d@1").unwrap();
            assert_eq!(reg.resident_count(), 2, "{mode:?}");
            // Demote it back to lazy.
            let summary = reg.demote("d@1").unwrap();
            assert!(!summary.resident);
            assert_eq!(summary.key, "d@1");
            assert_eq!(reg.resident_count(), 1, "{mode:?}: payload released");
            assert!(
                !reg.list().iter().find(|m| m.key == "d@1").unwrap().resident,
                "{mode:?}"
            );
            // The Arc held by an in-flight request is unaffected.
            assert_eq!(first.version, 1);
            // Demoting again is an idempotent no-op.
            assert!(!reg.demote("d@1").unwrap().resident);
            // And a pinned get promotes it right back, bit-identical.
            let again = reg.get("d@1").unwrap();
            assert_eq!(again.model, first.model);
            assert_eq!(reg.resident_count(), 2, "{mode:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demote_refuses_latest_unknown_and_unpersisted() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-demref-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("d", 1).save(&dir).unwrap();
        toy_artifact("d", 2).save(&dir).unwrap();
        let (reg, _) = ModelRegistry::warm_load(&dir).unwrap();
        // The latest serves bare names and cannot be demoted.
        let err = reg.demote("d@2").unwrap_err().to_string();
        assert!(err.contains("latest"), "{err}");
        assert!(reg.demote("ghost@1").is_err());
        // An insert that never touched disk has nothing to reload from.
        reg.insert(toy_artifact("mem", 1));
        reg.insert(toy_artifact("mem", 2));
        let err = reg.demote("mem@1").unwrap_err().to_string();
        assert!(err.contains("no backing artifact file"), "{err}");
        // Unless an origin is recorded (what train_and_register does).
        let path = toy_artifact("mem", 1).save(&dir).unwrap();
        reg.record_origin("mem@1", &path);
        assert!(!reg.demote("mem@1").unwrap().resident);
        assert_eq!(reg.get("mem@1").unwrap().version, 1, "promotes back");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_load_prefers_binary_over_json_for_same_version() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-pref-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let art = toy_artifact("p", 1);
        art.save(&dir).unwrap();
        art.save_format(&dir, Format::V2).unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 1, "one artifact, two encodings");
        assert_eq!(reg.get("p").unwrap().version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_load_skips_bad_artifacts_instead_of_failing_boot() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-bad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("good", 1).save(&dir).unwrap();
        // A corrupt artifact and a future-format artifact sit alongside it.
        std::fs::write(dir.join("corrupt@1.model.json"), "{not json").unwrap();
        let mut future = toy_artifact("future", 1);
        future.format_version = crate::artifact::FORMAT_VERSION + 1;
        future.save(&dir).unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 1, "only the valid artifact loads");
        assert!(reg.get("good").is_ok());
        assert!(reg.get("future").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash mid-save leaves at most a partial `.tmp` (never a torn
    /// final file — data is fsynced before the rename). Boot must ignore
    /// the leftover temp, and even a truncated *final* file (pre-fsync
    /// artifact, or bit rot) only costs that one version.
    #[test]
    fn warm_load_survives_truncated_partial_writes() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-torn-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("torn", 1).save(&dir).unwrap();
        let v2_path = toy_artifact("torn", 2).save(&dir).unwrap();
        let bytes = std::fs::read(&v2_path).unwrap();
        std::fs::write(&v2_path, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(dir.join(".torn@3.model.bin.tmp"), &bytes[..bytes.len() / 3]).unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 1, "the truncated v2 is skipped, not fatal");
        assert_eq!(
            reg.get("torn").unwrap().version,
            1,
            "bare name falls back to the intact prior version"
        );
        assert!(reg.get("torn@3").is_err(), "temp files never register");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_load_falls_back_when_newest_version_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-fb-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("f", 1).save(&dir).unwrap();
        std::fs::write(dir.join("f@2.model.bin"), "HMLAgarbage").unwrap();
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(
            reg.get("f").unwrap().version,
            1,
            "bare name served by the next loadable version"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn register_next_version_respects_disk_floor() {
        let reg = ModelRegistry::new();
        let (key, ()) = reg
            .register_next_version(toy_artifact("floored", 0), 7, |_| Ok(()))
            .unwrap();
        assert_eq!(key, "floored@7", "cold registry honours the on-disk floor");
        let (key, ()) = reg
            .register_next_version(toy_artifact("floored", 0), 3, |_| Ok(()))
            .unwrap();
        assert_eq!(key, "floored@8", "in-memory max wins when higher");
    }

    #[test]
    fn warm_load_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("hamlet-reg-definitely-missing");
        let (reg, loaded) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(loaded, 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn register_next_version_is_race_free() {
        let dir = std::env::temp_dir().join(format!("hamlet-regver-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = Arc::new(ModelRegistry::new());
        let keys: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let dir = dir.clone();
                    scope.spawn(move || {
                        let (key, _path) = reg
                            .register_next_version(toy_artifact("raced", 0), 0, |a| a.save(&dir))
                            .unwrap();
                        key
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All eight trains got distinct versions and none was lost.
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicate versions handed out: {keys:?}");
        assert_eq!(reg.len(), 8);
        assert_eq!(reg.get("raced").unwrap().version, 8);
        let (reloaded, n) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(n, 8, "an artifact file was overwritten");
        assert_eq!(reloaded.get("raced").unwrap().version, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn register_next_version_persist_failure_leaves_registry_unchanged() {
        let reg = ModelRegistry::new();
        let err = reg.register_next_version(toy_artifact("failing", 0), 0, |_| {
            Err::<(), _>(crate::error::ServeError::Json("disk exploded".into()))
        });
        assert!(err.is_err());
        assert!(reg.is_empty());
        assert!(reg.get("failing").is_err(), "snapshot rolled back too");
    }

    #[test]
    fn rollback_repairs_the_latest_pointer() {
        let reg = ModelRegistry::new();
        reg.register_next_version(toy_artifact("m", 0), 0, |_| Ok(()))
            .unwrap();
        assert_eq!(reg.get("m").unwrap().version, 1);
        // A failed v2 must not leave the bare name dangling or stale.
        let _ = reg.register_next_version(toy_artifact("m", 0), 0, |_| {
            Err::<(), _>(crate::error::ServeError::Json("boom".into()))
        });
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("m").unwrap().version, 1, "latest repaired to v1");
        // And the next successful train still gets v2.
        let (key, ()) = reg
            .register_next_version(toy_artifact("m", 0), 0, |_| Ok(()))
            .unwrap();
        assert_eq!(key, "m@2");
        assert_eq!(reg.get("m").unwrap().version, 2);
    }

    #[test]
    fn concurrent_reads_and_hot_swap() {
        let reg = Arc::new(ModelRegistry::new());
        reg.insert(toy_artifact("hot", 1));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let a = reg.get("hot").unwrap();
                        assert!(a.version >= 1);
                    }
                })
            })
            .collect();
        for v in 2..10 {
            reg.insert(toy_artifact("hot", v));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(reg.get("hot").unwrap().version, 9);
    }

    #[test]
    fn concurrent_lazy_promotions_converge() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-promo-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("pr", 1).save(&dir).unwrap();
        toy_artifact("pr", 2).save(&dir).unwrap();
        let (reg, _) = ModelRegistry::warm_load(&dir).unwrap();
        let reg = Arc::new(reg);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(reg.get("pr@1").unwrap().version, 1);
                    }
                });
            }
        });
        assert_eq!(reg.resident_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn candidates_are_invisible_until_adopted() {
        let reg = ModelRegistry::new();
        reg.insert(toy_artifact("c", 1));
        let (key, ()) = reg
            .register_candidate(toy_artifact("c", 0), 0, |_| Ok(()))
            .unwrap();
        assert_eq!(key, "c@2", "candidate gets the next free version");
        assert_eq!(reg.get("c").unwrap().version, 1, "bare name stays on v1");
        assert_eq!(reg.get("c@2").unwrap().version, 2, "pinned key resolves");
        // A second candidate does not collide with the held one.
        let (key2, ()) = reg
            .register_candidate(toy_artifact("c", 0), 0, |_| Ok(()))
            .unwrap();
        assert_eq!(key2, "c@3");
        // Adoption cuts the bare name over.
        let summary = reg.adopt(&key).unwrap();
        assert_eq!(summary.key, "c@2");
        assert_eq!(reg.get("c").unwrap().version, 2);
        assert!(reg.adopt("ghost@9").is_err());
    }

    #[test]
    fn candidate_persist_failure_rolls_back() {
        let reg = ModelRegistry::new();
        reg.insert(toy_artifact("c", 1));
        let err = reg.register_candidate(toy_artifact("c", 0), 0, |_| {
            Err::<(), _>(crate::error::ServeError::Json("disk exploded".into()))
        });
        assert!(err.is_err());
        assert_eq!(reg.len(), 1);
        assert!(reg.get("c@2").is_err(), "failed candidate removed");
        assert_eq!(reg.get("c").unwrap().version, 1);
    }

    #[test]
    fn hold_repoints_bare_name_at_prior_version() {
        let dir = std::env::temp_dir().join(format!("hamlet-reg-hold-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        toy_artifact("h", 1).save(&dir).unwrap();
        toy_artifact("h", 2).save(&dir).unwrap();
        // Warm load makes h@2 the resident latest and h@1 lazy — the state
        // a restart mid-rollout leaves when the candidate file is newest.
        let (reg, _) = ModelRegistry::warm_load(&dir).unwrap();
        assert_eq!(reg.get("h").unwrap().version, 2);
        reg.hold("h@2").unwrap();
        assert_eq!(
            reg.get("h").unwrap().version,
            1,
            "bare name restored to the incumbent (lazy slot materialized)"
        );
        assert_eq!(reg.get("h@2").unwrap().version, 2, "candidate still pinned");
        // Holding a non-latest key is a no-op.
        reg.hold("h@2").unwrap();
        assert_eq!(reg.get("h").unwrap().version, 1);
        // Holding the only version removes the bare name entirely.
        let solo = ModelRegistry::new();
        solo.insert(toy_artifact("only", 1));
        solo.hold("only@1").unwrap();
        assert!(solo.get("only").is_err());
        assert_eq!(solo.get("only@1").unwrap().version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
