//! Embedded telemetry and ops plane.
//!
//! Three pillars, one handle:
//!
//! - [`stats`] — the cloneable [`Telemetry`] handle threaded through
//!   `AppState`: per-endpoint and per-model request/error/row counters and
//!   log-scale latency histograms ([`hist`]), recorded at the dispatch
//!   boundary so solo and coalesced predicts are both attributed to their
//!   model. Lock-free on the hot path.
//! - [`eventlog`] — a segmented append-only binary audit log of
//!   train/promote/demote/startup events with CRC-framed records, segment
//!   rotation, and crash-tolerant torn-tail recovery. `/v1/stats` serves
//!   the in-memory tail; the segments under `<artifact-dir>/events/` are
//!   the durable history.
//! - [`export`] — rendering: hand-rolled Prometheus text exposition for
//!   `GET /metrics` and the JSON body for `GET /v1/stats`.
//!
//! The ops loop closes in `server::demote_idle`, which the reactor's timer
//! wheel drives to demote promoted non-latest versions whose telemetry
//! last-hit timestamp has gone stale (`--demote-idle-secs`).

pub mod eventlog;
pub mod export;
pub mod hist;
pub mod stats;

pub use eventlog::{Event, EventKind, EventLog};
pub use export::{prometheus, stats_response, OpsGauges};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use stats::{Endpoint, EndpointStats, ModelStats, Telemetry};
