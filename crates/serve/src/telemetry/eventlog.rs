//! Segmented append-only binary event log with crash-tolerant recovery.
//!
//! Operational events (train/promote/demote/drift/startup) are framed as
//! `[u32 payload_len][u32 crc32(payload)][payload]` with the payload
//! encoded through the same `binenc` writer the artifact format uses.
//! Records append to numbered segment files (`NNNNNNNN.elog`) that rotate
//! once they exceed a size threshold; segments are never rewritten.
//!
//! Recovery is the point of the framing: on open, every segment is scanned
//! front to back and the file is truncated at the first frame whose header
//! is short, whose length is implausible, or whose CRC does not match —
//! so a torn write (crash mid-append) costs exactly the torn record and
//! nothing before it. An in-memory index of `(timestamp, segment, offset)`
//! built during that scan serves time-range queries without touching disk
//! until the matching payloads are read back.
//!
//! One process owns the log directory at a time (the server); `append` is
//! internally synchronized so any thread may log, but two *processes*
//! appending to the same directory is unsupported, as is conventional for
//! write-ahead logs.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use hamlet_ml::binenc::{BinReader, BinWriter};

use crate::container::crc32;
use crate::error::{Result, ServeError};

/// Default segment-rotation threshold (1 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;
/// Frame header: little-endian `u32` payload length + `u32` CRC-32.
const FRAME_HEADER_BYTES: usize = 8;
/// Recovery-scan sanity bound: no event payload is remotely this large, so
/// a bigger length field means the header bytes are garbage.
const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

/// What happened, for the audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// Server booted and warm-loaded the artifact directory.
    Startup,
    /// A model version was trained and registered.
    Train,
    /// A lazy registry slot was promoted to resident.
    Promote,
    /// A resident version was demoted back to its lazy slot.
    Demote,
    /// Observed-traffic drift against the training contract: the advisor
    /// re-ran the avoid-join decision rule over live rows and the no-join
    /// artifact left its safety envelope (or a degraded candidate was
    /// rolled back on live evidence).
    Drift,
    /// A rollout state-machine transition (shadow/canary/promote/rollback);
    /// the detail field carries the JSON action record that the rollout
    /// journal replays on restart.
    Rollout,
}

impl EventKind {
    /// Stable on-disk code. Append-only: never renumber.
    fn code(self) -> u8 {
        match self {
            EventKind::Startup => 0,
            EventKind::Train => 1,
            EventKind::Promote => 2,
            EventKind::Demote => 3,
            EventKind::Drift => 4,
            EventKind::Rollout => 5,
        }
    }

    fn from_code(code: u8) -> Result<EventKind> {
        Ok(match code {
            0 => EventKind::Startup,
            1 => EventKind::Train,
            2 => EventKind::Promote,
            3 => EventKind::Demote,
            4 => EventKind::Drift,
            5 => EventKind::Rollout,
            other => return Err(ServeError::Json(format!("unknown event kind code {other}"))),
        })
    }
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    pub kind: EventKind,
    /// Model key the event concerns (empty for process-level events).
    pub model: String,
    /// Free-form human-readable context.
    pub detail: String,
}

impl Event {
    /// Stamps an event with the current wall clock.
    pub fn now(kind: EventKind, model: impl Into<String>, detail: impl Into<String>) -> Event {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Event {
            unix_ms,
            kind,
            model: model.into(),
            detail: detail.into(),
        }
    }
}

fn encode_payload(event: &Event) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.put_u64(event.unix_ms);
    w.put_u8(event.kind.code());
    w.put_str(&event.model);
    w.put_str(&event.detail);
    w.finish()
}

fn decode_payload(payload: Vec<u8>) -> Result<Event> {
    let mut r = BinReader::over_heap(payload);
    let event = Event {
        unix_ms: r.read_u64().map_err(bad_payload)?,
        kind: EventKind::from_code(r.read_u8().map_err(bad_payload)?)?,
        model: r.read_str().map_err(bad_payload)?,
        detail: r.read_str().map_err(bad_payload)?,
    };
    r.expect_end().map_err(bad_payload)?;
    Ok(event)
}

fn bad_payload(e: hamlet_ml::error::MlError) -> ServeError {
    ServeError::Json(format!("event payload: {e}"))
}

/// Appends `payload` to `buf` framed as `[u32 len][u32 crc32][payload]` —
/// the exact wire format the event segments use. Public so other
/// crash-safe buffers (the rollout plane's observe store) reuse this
/// framing and its recovery semantics instead of inventing a second one.
pub fn write_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Walks CRC frames from the front of `bytes`, calling `visit` on each
/// intact payload until it returns `false` (decode failure — treated like
/// corruption). Returns the byte length of the valid prefix: a torn or
/// corrupt frame and everything after it are excluded, mirroring the
/// event log's own recovery scan.
pub fn scan_frames(bytes: &[u8], mut visit: impl FnMut(&[u8]) -> bool) -> usize {
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES {
            break;
        }
        let start = pos + FRAME_HEADER_BYTES;
        let Some(end) = start.checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break; // torn tail: header landed, payload did not
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc || !visit(payload) {
            break;
        }
        pos = end;
    }
    pos
}

/// Where one intact record lives: enough to serve range scans without
/// re-reading segments until the payload itself is wanted.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    unix_ms: u64,
    seq: u64,
    /// Byte offset of the frame header within its segment.
    offset: u64,
    /// Payload length (the frame occupies `FRAME_HEADER_BYTES + len`).
    len: u32,
}

#[derive(Debug)]
struct LogInner {
    /// Sequence number of the segment currently appended to.
    seq: u64,
    /// Append handle on that segment.
    file: File,
    /// Valid bytes in that segment (recovery may have truncated).
    written: u64,
    /// All intact records across all segments, in append order.
    index: Vec<IndexEntry>,
}

/// The segmented append-only event log.
#[derive(Debug)]
pub struct EventLog {
    dir: PathBuf,
    max_segment_bytes: u64,
    inner: Mutex<LogInner>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:08}.elog"))
}

/// Scans one segment, indexing intact records; returns the byte length of
/// the valid prefix (everything after it is torn or corrupt).
fn scan_segment(path: &Path, seq: u64, index: &mut Vec<IndexEntry>) -> Result<u64> {
    let bytes = std::fs::read(path).map_err(|e| ServeError::io("read event segment", e))?;
    let mut offset = 0u64;
    let valid = scan_frames(&bytes, |payload| {
        let Ok(event) = decode_payload(payload.to_vec()) else {
            return false;
        };
        index.push(IndexEntry {
            unix_ms: event.unix_ms,
            seq,
            offset,
            len: payload.len() as u32,
        });
        offset += (FRAME_HEADER_BYTES + payload.len()) as u64;
        true
    });
    Ok(valid as u64)
}

impl EventLog {
    /// Opens (or creates) the log under `dir` with the default segment
    /// size, recovering from any torn tail.
    pub fn open(dir: &Path) -> Result<EventLog> {
        Self::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// As [`open`](Self::open) with an explicit rotation threshold (tests
    /// use tiny segments to exercise rotation cheaply).
    pub fn open_with(dir: &Path, max_segment_bytes: u64) -> Result<EventLog> {
        std::fs::create_dir_all(dir).map_err(|e| ServeError::io("create event log dir", e))?;
        let mut seqs: Vec<u64> = std::fs::read_dir(dir)
            .map_err(|e| ServeError::io("list event log dir", e))?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                let name = name.to_str()?;
                name.strip_suffix(".elog")?.parse::<u64>().ok()
            })
            .collect();
        seqs.sort_unstable();

        let mut index = Vec::new();
        let mut tail = (1u64, 0u64); // (seq, valid bytes) of the last segment
        for &seq in &seqs {
            let path = segment_path(dir, seq);
            let valid = scan_segment(&path, seq, &mut index)?;
            let on_disk = std::fs::metadata(&path)
                .map_err(|e| ServeError::io("stat event segment", e))?
                .len();
            if valid < on_disk {
                eprintln!(
                    "event log: segment {} has a torn tail; truncating {} -> {} bytes",
                    path.display(),
                    on_disk,
                    valid
                );
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(valid))
                    .map_err(|e| ServeError::io("truncate torn event segment", e))?;
            }
            tail = (seq, valid);
        }
        let (seq, written) = tail;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, seq))
            .map_err(|e| ServeError::io("open event segment", e))?;
        Ok(EventLog {
            dir: dir.to_path_buf(),
            max_segment_bytes,
            inner: Mutex::new(LogInner {
                seq,
                file,
                written,
                index,
            }),
        })
    }

    /// Appends one record, rotating to a fresh segment first when the
    /// current one is at its size threshold.
    pub fn append(&self, event: &Event) -> Result<()> {
        let payload = encode_payload(event);
        let frame_len = (FRAME_HEADER_BYTES + payload.len()) as u64;
        let mut inner = self.inner.lock().expect("event log lock poisoned");
        if inner.written > 0 && inner.written + frame_len > self.max_segment_bytes {
            let seq = inner.seq + 1;
            inner.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, seq))
                .map_err(|e| ServeError::io("rotate event segment", e))?;
            inner.seq = seq;
            inner.written = 0;
        }
        let mut frame = Vec::with_capacity(frame_len as usize);
        write_frame(&mut frame, &payload);
        inner
            .file
            .write_all(&frame)
            .map_err(|e| ServeError::io("append event", e))?;
        // Index after the write: a failed append must not leave a phantom
        // entry pointing at bytes that never landed.
        let entry = IndexEntry {
            unix_ms: event.unix_ms,
            seq: inner.seq,
            offset: inner.written,
            len: payload.len() as u32,
        };
        inner.index.push(entry);
        inner.written += frame_len;
        Ok(())
    }

    /// Intact records on the log.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("event log lock poisoned")
            .index
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct segments holding live records (plus the open one).
    pub fn segment_count(&self) -> usize {
        let inner = self.inner.lock().expect("event log lock poisoned");
        let mut seqs: std::collections::BTreeSet<u64> = inner.index.iter().map(|e| e.seq).collect();
        seqs.insert(inner.seq);
        seqs.len()
    }

    /// Records whose timestamp lies in `[from_ms, to_ms]`, in append order.
    pub fn scan_range(&self, from_ms: u64, to_ms: u64) -> Result<Vec<Event>> {
        let entries: Vec<IndexEntry> = {
            let inner = self.inner.lock().expect("event log lock poisoned");
            inner
                .index
                .iter()
                .filter(|e| e.unix_ms >= from_ms && e.unix_ms <= to_ms)
                .copied()
                .collect()
        };
        self.read_entries(&entries)
    }

    /// The last `n` records, in append order.
    pub fn tail(&self, n: usize) -> Result<Vec<Event>> {
        let entries: Vec<IndexEntry> = {
            let inner = self.inner.lock().expect("event log lock poisoned");
            let skip = inner.index.len().saturating_sub(n);
            inner.index[skip..].to_vec()
        };
        self.read_entries(&entries)
    }

    /// Reads payloads back from disk. The lock is *not* held: segments are
    /// append-only and indexed bytes are already durable, so concurrent
    /// appends cannot invalidate these offsets.
    fn read_entries(&self, entries: &[IndexEntry]) -> Result<Vec<Event>> {
        let mut out = Vec::with_capacity(entries.len());
        let mut open: Option<(u64, File)> = None;
        for e in entries {
            if open.as_ref().map(|(seq, _)| *seq) != Some(e.seq) {
                let file = File::open(segment_path(&self.dir, e.seq))
                    .map_err(|err| ServeError::io("open event segment", err))?;
                open = Some((e.seq, file));
            }
            let (_, file) = open.as_mut().expect("segment handle just set");
            file.seek(SeekFrom::Start(e.offset + FRAME_HEADER_BYTES as u64))
                .map_err(|err| ServeError::io("seek event segment", err))?;
            let mut payload = vec![0u8; e.len as usize];
            file.read_exact(&mut payload)
                .map_err(|err| ServeError::io("read event payload", err))?;
            out.push(decode_payload(payload)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hamlet-elog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn event(i: usize) -> Event {
        Event {
            unix_ms: 1_000 + i as u64,
            kind: EventKind::Train,
            model: format!("m@{i}"),
            detail: format!("record {i}"),
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let log = EventLog::open(&dir).unwrap();
        for i in 0..10 {
            log.append(&event(i)).unwrap();
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.tail(3).unwrap(), vec![event(7), event(8), event(9)]);
        assert_eq!(
            log.scan_range(1_002, 1_004).unwrap(),
            vec![event(2), event(3), event(4)]
        );
        drop(log);
        let log = EventLog::open(&dir).unwrap();
        assert_eq!(log.len(), 10);
        assert_eq!(log.scan_range(0, u64::MAX).unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = temp_dir("torn");
        let log = EventLog::open(&dir).unwrap();
        for i in 0..5 {
            log.append(&event(i)).unwrap();
        }
        drop(log);
        // Simulate a crash mid-append: chop a few bytes off the last record.
        let path = segment_path(&dir, 1);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let log = EventLog::open(&dir).unwrap();
        assert_eq!(log.len(), 4, "torn record dropped, intact prefix kept");
        assert_eq!(
            log.scan_range(0, u64::MAX).unwrap(),
            (0..4).map(event).collect::<Vec<_>>()
        );
        // The truncated log accepts appends and they survive reopen.
        log.append(&event(99)).unwrap();
        drop(log);
        let log = EventLog::open(&dir).unwrap();
        assert_eq!(log.len(), 5);
        assert_eq!(log.tail(1).unwrap(), vec![event(99)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_file_byte_drops_the_suffix() {
        let dir = temp_dir("corrupt");
        let log = EventLog::open(&dir).unwrap();
        for i in 0..6 {
            log.append(&event(i)).unwrap();
        }
        drop(log);
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte roughly in the middle of the file: CRC on
        // that record fails, so recovery keeps only the records before it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let log = EventLog::open(&dir).unwrap();
        let survivors = log.scan_range(0, u64::MAX).unwrap();
        assert!(survivors.len() < 6, "corruption must drop records");
        assert_eq!(
            survivors,
            (0..survivors.len()).map(event).collect::<Vec<_>>(),
            "surviving prefix is intact and in order"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotates_segments_and_replays_all_of_them() {
        let dir = temp_dir("rotate");
        // Tiny threshold: every record larger than the threshold still
        // lands (rotation only triggers when the segment is non-empty).
        let log = EventLog::open_with(&dir, 96).unwrap();
        for i in 0..20 {
            log.append(&event(i)).unwrap();
        }
        assert!(log.segment_count() > 3, "{} segments", log.segment_count());
        drop(log);
        let log = EventLog::open_with(&dir, 96).unwrap();
        assert_eq!(log.len(), 20);
        assert_eq!(
            log.scan_range(0, u64::MAX).unwrap(),
            (0..20).map(event).collect::<Vec<_>>()
        );
        // Appends continue on the newest segment after reopen.
        log.append(&event(20)).unwrap();
        assert_eq!(log.tail(1).unwrap(), vec![event(20)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_and_scans_agree() {
        let dir = temp_dir("concurrent");
        let log = std::sync::Arc::new(EventLog::open_with(&dir, 256).unwrap());
        let threads = 4;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let e = Event {
                            unix_ms: 5_000 + i as u64,
                            kind: EventKind::Promote,
                            model: format!("t{t}"),
                            detail: format!("append {i}"),
                        };
                        log.append(&e).unwrap();
                    }
                });
            }
            // Readers race the writers: every scan must decode cleanly.
            for _ in 0..threads {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let seen = log.tail(16).unwrap();
                        assert!(seen.len() <= 16);
                        log.scan_range(5_000, 6_000).unwrap();
                    }
                });
            }
        });
        assert_eq!(log.len(), threads * per_thread);
        let all = log.scan_range(0, u64::MAX).unwrap();
        assert_eq!(all.len(), threads * per_thread);
        // Per-thread record order is preserved even under interleaving.
        for t in 0..threads {
            let details: Vec<&str> = all
                .iter()
                .filter(|e| e.model == format!("t{t}"))
                .map(|e| e.detail.as_str())
                .collect();
            let expect: Vec<String> = (0..per_thread).map(|i| format!("append {i}")).collect();
            assert_eq!(
                details,
                expect.iter().map(|s| s.as_str()).collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
