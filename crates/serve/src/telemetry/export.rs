//! Rendering telemetry for the ops surface: hand-rolled Prometheus text
//! exposition for `GET /metrics` and the JSON body for `GET /v1/stats`.
//!
//! The Prometheus writer emits each metric family as a `# TYPE` line
//! followed immediately by all of its samples — the ordering scrapers
//! require — and escapes label values per the exposition format. No
//! client library, no deps: the format is a dozen lines of `write!`.

use std::fmt::Write;

use crate::api::{EndpointStatsRow, ModelStatsRow, StatsResponse};
use crate::registry::ModelSummary;
use crate::rollout::RolloutSnapshot;

use super::stats::Telemetry;

/// Point-in-time registry gauges the exporter cannot read from telemetry
/// itself (they belong to the registry, not the request path).
#[derive(Debug, Clone, Copy)]
pub struct OpsGauges {
    /// Registered model versions (resident or lazy).
    pub models_registered: usize,
    /// Versions currently resident in memory.
    pub models_resident: usize,
    /// SIMD kernel backend chosen at startup (`avx2`/`sse2`/`scalar`).
    pub kernel_backend: &'static str,
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders the full `/metrics` payload. `registry_rows` is the registry
/// listing (one row per version) behind the per-artifact info gauges;
/// `net` carries the network-plane gauges (per-reactor connections and
/// per-model fair-queue depths), omitted entirely when `None`.
pub fn prometheus(
    t: &Telemetry,
    gauges: OpsGauges,
    registry_rows: &[ModelSummary],
    net: Option<&crate::http::NetStats>,
    rollout: &RolloutSnapshot,
) -> String {
    let mut out = String::with_capacity(4096);
    let endpoints = t.endpoints_snapshot();
    let models = t.models_snapshot();
    let coalesce = t.coalesce_stats().snapshot();

    out.push_str("# HELP hamlet_uptime_seconds Seconds since the server booted.\n");
    out.push_str("# TYPE hamlet_uptime_seconds gauge\n");
    let _ = writeln!(out, "hamlet_uptime_seconds {}", t.uptime().as_secs_f64());

    out.push_str("# TYPE hamlet_models_registered gauge\n");
    let _ = writeln!(out, "hamlet_models_registered {}", gauges.models_registered);
    out.push_str("# TYPE hamlet_models_resident gauge\n");
    let _ = writeln!(out, "hamlet_models_resident {}", gauges.models_resident);

    out.push_str(
        "# HELP hamlet_kernel_backend_info SIMD dispatch tier chosen at startup (constant 1).\n",
    );
    out.push_str("# TYPE hamlet_kernel_backend_info gauge\n");
    let _ = writeln!(
        out,
        "hamlet_kernel_backend_info{{backend=\"{}\"}} 1",
        escape_label(gauges.kernel_backend)
    );

    out.push_str(
        "# HELP hamlet_model_info Registered artifact metadata (family, weight encoding).\n",
    );
    out.push_str("# TYPE hamlet_model_info gauge\n");
    for row in registry_rows {
        let _ = writeln!(
            out,
            "hamlet_model_info{{model=\"{}\",family=\"{}\",encoding=\"{}\"}} 1",
            escape_label(&row.key),
            escape_label(&row.family),
            escape_label(&row.encoding)
        );
    }
    out.push_str(
        "# HELP hamlet_model_resident_bytes Dense weight bytes resident in memory (0 = lazy).\n",
    );
    out.push_str("# TYPE hamlet_model_resident_bytes gauge\n");
    for row in registry_rows {
        let _ = writeln!(
            out,
            "hamlet_model_resident_bytes{{model=\"{}\"}} {}",
            escape_label(&row.key),
            row.resident_bytes
        );
    }

    out.push_str("# HELP hamlet_requests_total Requests answered, by endpoint.\n");
    out.push_str("# TYPE hamlet_requests_total counter\n");
    for (e, snap) in &endpoints {
        let _ = writeln!(
            out,
            "hamlet_requests_total{{endpoint=\"{}\"}} {}",
            e.name(),
            snap.requests
        );
    }
    out.push_str("# TYPE hamlet_request_errors_total counter\n");
    for (e, snap) in &endpoints {
        let _ = writeln!(
            out,
            "hamlet_request_errors_total{{endpoint=\"{}\"}} {}",
            e.name(),
            snap.errors
        );
    }
    out.push_str(
        "# HELP hamlet_request_panics_total Of the errors, handler panics isolated to a 500.\n",
    );
    out.push_str("# TYPE hamlet_request_panics_total counter\n");
    for (e, snap) in &endpoints {
        let _ = writeln!(
            out,
            "hamlet_request_panics_total{{endpoint=\"{}\"}} {}",
            e.name(),
            snap.panics
        );
    }

    if let Some(net) = net {
        let reactors = net.reactor_snapshots();
        out.push_str("# HELP hamlet_reactor_connections Open connections, by reactor.\n");
        out.push_str("# TYPE hamlet_reactor_connections gauge\n");
        for r in &reactors {
            let _ = writeln!(
                out,
                "hamlet_reactor_connections{{reactor=\"{}\"}} {}",
                r.index, r.connections
            );
        }
        out.push_str("# HELP hamlet_reactor_accepted_total Connections adopted, by reactor.\n");
        out.push_str("# TYPE hamlet_reactor_accepted_total counter\n");
        for r in &reactors {
            let _ = writeln!(
                out,
                "hamlet_reactor_accepted_total{{reactor=\"{}\"}} {}",
                r.index, r.accepted_total
            );
        }
        out.push_str(
            "# HELP hamlet_fair_queue_depth Jobs queued for the executor pool, by fair-dispatch key.\n",
        );
        out.push_str("# TYPE hamlet_fair_queue_depth gauge\n");
        for (key, depth) in net.queue_depths() {
            let _ = writeln!(
                out,
                "hamlet_fair_queue_depth{{model=\"{}\"}} {depth}",
                escape_label(&key)
            );
        }
    }

    out.push_str("# HELP hamlet_coalesce_total Predict coalescer counters.\n");
    out.push_str("# TYPE hamlet_coalesce_total counter\n");
    for (kind, value) in [
        ("batches", coalesce.batches),
        ("merged_requests", coalesce.merged_requests),
        ("solo_requests", coalesce.solo_requests),
        ("flush_full", coalesce.flush_full),
        ("flush_timeout", coalesce.flush_timeout),
        ("flush_drained", coalesce.flush_drained),
    ] {
        let _ = writeln!(out, "hamlet_coalesce_total{{kind=\"{kind}\"}} {value}");
    }

    out.push_str("# HELP hamlet_model_requests_total Predict requests answered, by model.\n");
    out.push_str("# TYPE hamlet_model_requests_total counter\n");
    for (key, snap) in &models {
        let _ = writeln!(
            out,
            "hamlet_model_requests_total{{model=\"{}\"}} {}",
            escape_label(key),
            snap.requests
        );
    }
    out.push_str("# TYPE hamlet_model_merged_requests_total counter\n");
    for (key, snap) in &models {
        let _ = writeln!(
            out,
            "hamlet_model_merged_requests_total{{model=\"{}\"}} {}",
            escape_label(key),
            snap.merged_requests
        );
    }
    out.push_str("# TYPE hamlet_model_rows_total counter\n");
    for (key, snap) in &models {
        let _ = writeln!(
            out,
            "hamlet_model_rows_total{{model=\"{}\"}} {}",
            escape_label(key),
            snap.rows
        );
    }

    // Shadow-scoring accounting: only candidates that have received
    // mirrored traffic emit samples, mirroring the cascade convention.
    let shadows: Vec<_> = models
        .iter()
        .filter(|(_, snap)| snap.shadow_rows > 0 || snap.shadow_skipped_rows > 0)
        .collect();
    if !shadows.is_empty() {
        out.push_str(
            "# HELP hamlet_shadow_rows_total Mirrored rows scored against the incumbent, by model.\n",
        );
        out.push_str("# TYPE hamlet_shadow_rows_total counter\n");
        for (key, snap) in &shadows {
            let _ = writeln!(
                out,
                "hamlet_shadow_rows_total{{model=\"{}\"}} {}",
                escape_label(key),
                snap.shadow_rows
            );
        }
        out.push_str(
            "# HELP hamlet_shadow_skipped_rows_total Mirrored rows dropped by a contained panic, by model.\n",
        );
        out.push_str("# TYPE hamlet_shadow_skipped_rows_total counter\n");
        for (key, snap) in &shadows {
            let _ = writeln!(
                out,
                "hamlet_shadow_skipped_rows_total{{model=\"{}\"}} {}",
                escape_label(key),
                snap.shadow_skipped_rows
            );
        }
        out.push_str(
            "# HELP hamlet_shadow_agreement Fraction of shadow rows agreeing with the incumbent.\n",
        );
        out.push_str("# TYPE hamlet_shadow_agreement gauge\n");
        for (key, snap) in &shadows {
            if let Some(agreement) = snap.shadow_agreement() {
                let _ = writeln!(
                    out,
                    "hamlet_shadow_agreement{{model=\"{}\"}} {agreement}",
                    escape_label(key)
                );
            }
        }
    }

    // Rollout plane: the state gauge is always present (model="none" when
    // idle) so dashboards and the CI smoke can assert on it without
    // first forcing a rollout.
    out.push_str(
        "# HELP hamlet_rollout_state Rollout phase: 0 idle, 1 shadow, 2 canary, by bare name.\n",
    );
    out.push_str("# TYPE hamlet_rollout_state gauge\n");
    let phase_value = match rollout.phase.as_deref() {
        Some("shadow") => 1,
        Some("canary") => 2,
        _ => 0,
    };
    let _ = writeln!(
        out,
        "hamlet_rollout_state{{model=\"{}\"}} {phase_value}",
        escape_label(rollout.model.as_deref().unwrap_or("none"))
    );
    out.push_str(
        "# HELP hamlet_rollout_frozen Auto-promotion frozen by the drift advisor (0/1).\n",
    );
    out.push_str("# TYPE hamlet_rollout_frozen gauge\n");
    let _ = writeln!(out, "hamlet_rollout_frozen {}", rollout.frozen as u8);
    out.push_str("# TYPE hamlet_canary_requests gauge\n");
    let _ = writeln!(out, "hamlet_canary_requests {}", rollout.canary_requests);
    out.push_str("# TYPE hamlet_canary_errors gauge\n");
    let _ = writeln!(out, "hamlet_canary_errors {}", rollout.canary_errors);
    out.push_str("# HELP hamlet_rollout_total Rollout lifecycle counters since boot.\n");
    out.push_str("# TYPE hamlet_rollout_total counter\n");
    for (kind, value) in [
        ("promotions", rollout.promotions),
        ("rollbacks", rollout.rollbacks),
    ] {
        let _ = writeln!(out, "hamlet_rollout_total{{kind=\"{kind}\"}} {value}");
    }
    out.push_str(
        "# HELP hamlet_drift_checks_total Drift-advisor passes over the observe buffer.\n",
    );
    out.push_str("# TYPE hamlet_drift_checks_total counter\n");
    let _ = writeln!(out, "hamlet_drift_checks_total {}", rollout.drift_checks);
    out.push_str(
        "# HELP hamlet_drift_events_total Drift verdicts (live data left the avoid-join safety envelope).\n",
    );
    out.push_str("# TYPE hamlet_drift_events_total counter\n");
    let _ = writeln!(out, "hamlet_drift_events_total {}", rollout.drift_events);
    out.push_str("# HELP hamlet_observe_rows_total Labeled rows accepted by /v1/observe.\n");
    out.push_str("# TYPE hamlet_observe_rows_total counter\n");
    let _ = writeln!(out, "hamlet_observe_rows_total {}", rollout.observe_rows);

    // Cascade tier accounting: only models whose traffic ran through a
    // tiered artifact have nonzero slots; everything else stays silent so
    // the exposition does not grow a zero sample per model per tier.
    let cascades: Vec<_> = models
        .iter()
        .filter(|(_, snap)| snap.tier_rows.iter().any(|&n| n > 0))
        .collect();
    if !cascades.is_empty() {
        out.push_str(
            "# HELP hamlet_cascade_tier_rows_total Rows answered per cascade tier, by model.\n",
        );
        out.push_str("# TYPE hamlet_cascade_tier_rows_total counter\n");
        for (key, snap) in &cascades {
            let deepest = snap.tier_rows.iter().rposition(|&n| n > 0).unwrap_or(0);
            for (tier, &n) in snap.tier_rows[..=deepest].iter().enumerate() {
                let _ = writeln!(
                    out,
                    "hamlet_cascade_tier_rows_total{{model=\"{}\",tier=\"{tier}\"}} {n}",
                    escape_label(key)
                );
            }
        }
        out.push_str(
            "# HELP hamlet_cascade_escalation_ratio Fraction of cascade-served rows that \
             escalated past tier 0.\n",
        );
        out.push_str("# TYPE hamlet_cascade_escalation_ratio gauge\n");
        for (key, snap) in &cascades {
            let total: u64 = snap.tier_rows.iter().sum();
            let escalated: u64 = snap.tier_rows[1..].iter().sum();
            let _ = writeln!(
                out,
                "hamlet_cascade_escalation_ratio{{model=\"{}\"}} {}",
                escape_label(key),
                escalated as f64 / total as f64
            );
        }
    }

    out.push_str("# HELP hamlet_request_latency_seconds Request latency, by endpoint.\n");
    out.push_str("# TYPE hamlet_request_latency_seconds summary\n");
    for (e, snap) in &endpoints {
        write_summary(
            &mut out,
            "hamlet_request_latency_seconds",
            &format!("endpoint=\"{}\"", e.name()),
            &snap.hist,
        );
    }
    out.push_str("# HELP hamlet_model_latency_seconds Predict latency, by model.\n");
    out.push_str("# TYPE hamlet_model_latency_seconds summary\n");
    for (key, snap) in &models {
        write_summary(
            &mut out,
            "hamlet_model_latency_seconds",
            &format!("model=\"{}\"", escape_label(key)),
            &snap.hist,
        );
    }
    out
}

/// One summary family member: quantile samples plus `_sum`/`_count`.
/// Dimensions with no observations emit only the (zero) `_sum`/`_count`
/// pair, since their quantiles are undefined.
fn write_summary(
    out: &mut String,
    family: &str,
    label: &str,
    hist: &super::hist::HistogramSnapshot,
) {
    for (q, label_q) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
        if let Some(ns) = hist.percentile_ns(q) {
            let _ = writeln!(
                out,
                "{family}{{{label},quantile=\"{label_q}\"}} {}",
                ns / 1e9
            );
        }
    }
    let _ = writeln!(out, "{family}_sum{{{label}}} {}", hist.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "{family}_count{{{label}}} {}", hist.count());
}

/// Assembles the `GET /v1/stats` JSON body. `registry_rows` supplies the
/// per-model weight encoding for versions that have seen traffic.
pub fn stats_response(
    t: &Telemetry,
    gauges: OpsGauges,
    registry_rows: &[ModelSummary],
    rollout: RolloutSnapshot,
) -> StatsResponse {
    let now_ms = t.now_ms();
    let endpoints = t
        .endpoints_snapshot()
        .into_iter()
        .map(|(e, snap)| EndpointStatsRow {
            endpoint: e.name().to_string(),
            requests: snap.requests,
            errors: snap.errors,
            panics: snap.panics,
            p50_ms: snap.hist.percentile_ms(0.5),
            p99_ms: snap.hist.percentile_ms(0.99),
            p999_ms: snap.hist.percentile_ms(0.999),
        })
        .collect();
    let models = t
        .models_snapshot()
        .into_iter()
        .map(|(key, snap)| {
            let deepest = snap.tier_rows.iter().rposition(|&n| n > 0);
            let tier_total: u64 = snap.tier_rows.iter().sum();
            let shadowed = snap.shadow_rows > 0 || snap.shadow_skipped_rows > 0;
            ModelStatsRow {
                shadow_rows: shadowed.then_some(snap.shadow_rows),
                shadow_agreement: snap.shadow_agreement(),
                shadow_skipped_rows: shadowed.then_some(snap.shadow_skipped_rows),
                encoding: registry_rows
                    .iter()
                    .find(|r| r.key == key)
                    .map(|r| r.encoding.clone()),
                model: key,
                requests: snap.requests,
                merged_requests: snap.merged_requests,
                rows: snap.rows,
                mean_ms: snap.hist.mean_ns().map(|ns| ns / 1e6),
                p50_ms: snap.hist.percentile_ms(0.5),
                p99_ms: snap.hist.percentile_ms(0.99),
                p999_ms: snap.hist.percentile_ms(0.999),
                idle_secs: snap
                    .last_hit_ms
                    .map(|last| now_ms.saturating_sub(last) as f64 / 1e3),
                cascade_tier_rows: deepest.map(|d| snap.tier_rows[..=d].to_vec()),
                cascade_escalation_ratio: (tier_total > 0)
                    .then(|| snap.tier_rows[1..].iter().sum::<u64>() as f64 / tier_total as f64),
            }
        })
        .collect();
    StatsResponse {
        uptime_secs: t.uptime().as_secs_f64(),
        models_registered: gauges.models_registered,
        models_resident: gauges.models_resident,
        kernel_backend: gauges.kernel_backend.to_string(),
        endpoints,
        models,
        coalesce: t.coalesce_stats().snapshot(),
        events: t.recent_events(),
        rollout,
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Duration;

    use super::super::eventlog::EventKind;
    use super::super::stats::Endpoint;
    use super::*;

    fn seeded_gauges() -> OpsGauges {
        OpsGauges {
            models_registered: 3,
            models_resident: 2,
            kernel_backend: "avx2",
        }
    }

    fn seeded_rows() -> Vec<ModelSummary> {
        vec![ModelSummary {
            key: "alpha@1".into(),
            name: "alpha".into(),
            version: 1,
            family: "mlp".into(),
            encoding: "i8".into(),
            config: "NoJoin".into(),
            n_features: 4,
            test_accuracy: 0.9,
            dataset: "movies".into(),
            resident: true,
            resident_bytes: 1024,
        }]
    }

    fn seeded_telemetry() -> Telemetry {
        let t = Telemetry::in_memory();
        for i in 1..=40u64 {
            t.endpoint(Endpoint::Predict)
                .observe(Duration::from_micros(100 * i), false);
            t.model("alpha@1")
                .record(Duration::from_micros(90 * i), 2, i % 2 == 0, t.now_ms());
        }
        t.endpoint(Endpoint::Other)
            .observe(Duration::from_micros(10), true);
        t.record_event(EventKind::Startup, "", "2 artifact(s) warm-loaded");
        t
    }

    /// Mirrors the CI exposition check: every sample's family (modulo the
    /// `_sum`/`_count` suffixes) must have been declared by a preceding
    /// `# TYPE` line.
    #[test]
    fn every_sample_follows_its_type_line() {
        let t = seeded_telemetry();
        let net = crate::http::NetStats::new();
        let text = prometheus(
            &t,
            seeded_gauges(),
            &seeded_rows(),
            Some(&net),
            &RolloutSnapshot::default(),
        );
        let mut declared: HashSet<&str> = HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                declared.insert(rest.split_whitespace().next().unwrap());
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let metric = line.split(['{', ' ']).next().expect("metric name");
            let base = metric
                .strip_suffix("_sum")
                .or_else(|| metric.strip_suffix("_count"))
                .unwrap_or(metric);
            assert!(
                declared.contains(metric) || declared.contains(base),
                "sample `{metric}` has no preceding # TYPE line"
            );
        }
        assert!(text.contains("hamlet_model_requests_total{model=\"alpha@1\"} 40"));
        assert!(text.contains("hamlet_requests_total{endpoint=\"predict\"} 40"));
        assert!(text.contains("hamlet_request_errors_total{endpoint=\"other\"} 1"));
        assert!(text.contains("quantile=\"0.999\""));
        assert!(text.contains("hamlet_kernel_backend_info{backend=\"avx2\"} 1"));
        assert!(
            text.contains("hamlet_model_info{model=\"alpha@1\",family=\"mlp\",encoding=\"i8\"} 1")
        );
        assert!(text.contains("hamlet_model_resident_bytes{model=\"alpha@1\"} 1024"));
        assert!(text.contains("hamlet_rollout_state{model=\"none\"} 0"));
        assert!(text.contains("hamlet_drift_checks_total 0"));
        assert!(text.contains("hamlet_request_panics_total{endpoint=\"predict\"} 0"));
    }

    #[test]
    fn stats_response_reports_percentiles_and_events() {
        let t = seeded_telemetry();
        let resp = stats_response(
            &t,
            seeded_gauges(),
            &seeded_rows(),
            RolloutSnapshot::default(),
        );
        assert_eq!(resp.models_registered, 3);
        assert_eq!(resp.kernel_backend, "avx2");
        let predict = resp
            .endpoints
            .iter()
            .find(|r| r.endpoint == "predict")
            .unwrap();
        assert_eq!(predict.requests, 40);
        assert!(predict.p50_ms.unwrap() > 0.0);
        assert!(predict.p99_ms.unwrap() >= predict.p50_ms.unwrap());
        let alpha = resp.models.iter().find(|r| r.model == "alpha@1").unwrap();
        assert_eq!(alpha.encoding.as_deref(), Some("i8"));
        assert_eq!(alpha.rows, 80);
        assert_eq!(alpha.merged_requests, 20);
        assert!(alpha.p999_ms.is_some());
        assert!(alpha.idle_secs.is_some());
        assert_eq!(resp.events.len(), 1);
        // The JSON wire shape carries the event kind as a string.
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"kind\":\"Startup\""), "{json}");
        assert!(json.contains("\"p99_ms\":"), "{json}");
    }

    #[test]
    fn label_escaping_covers_the_specials() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }
}
