//! Fixed-bucket log-linear latency histograms with atomic buckets.
//!
//! The hot path pays two relaxed `fetch_add`s per observation — one bucket
//! increment and one running-sum update — with zero allocation and no
//! locks. Bucket boundaries are log-linear: each power-of-two octave is
//! split into [`SUBS`] equal sub-buckets, so relative error is bounded by
//! `1/SUBS` (25%) everywhere above the floor, which is plenty for p50/p99/
//! p999 over request latencies spanning microseconds to minutes.
//!
//! Layout: bucket 0 holds everything below `2^FLOOR_LOG2` ns (512 ns —
//! below the resolution anyone tunes against), then [`OCTAVES`] octaves ×
//! [`SUBS`] sub-buckets, then one overflow bucket. `2^(9+32)` ns ≈ 36.6
//! minutes, so the overflow bucket only catches pathologies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the smallest resolvable value; bucket 0 is `[0, 2^FLOOR_LOG2)`.
const FLOOR_LOG2: u32 = 9;
/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per power-of-two octave.
const SUBS: usize = 1 << SUB_BITS;
/// Octaves covered above the floor before overflow.
const OCTAVES: usize = 32;
/// Total bucket count: floor + octaves × subs + overflow.
pub const NBUCKETS: usize = 2 + OCTAVES * SUBS;

/// Maps a nanosecond value to its bucket index.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < (1u64 << FLOOR_LOG2) {
        return 0;
    }
    let lz = 63 - ns.leading_zeros();
    let octave = (lz - FLOOR_LOG2) as usize;
    let sub = ((ns >> (lz - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (1 + octave * SUBS + sub).min(NBUCKETS - 1)
}

/// Inclusive lower bound of a bucket, in nanoseconds.
pub fn bucket_floor(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let i = idx - 1;
    let base = 1u64 << (FLOOR_LOG2 as usize + i / SUBS);
    base + (i % SUBS) as u64 * (base >> SUB_BITS)
}

/// Exclusive upper bound of a bucket, in nanoseconds (overflow is
/// unbounded).
pub fn bucket_ceil(idx: usize) -> u64 {
    if idx >= NBUCKETS - 1 {
        return u64::MAX;
    }
    bucket_floor(idx + 1)
}

/// A latency histogram over nanoseconds with atomic fixed buckets.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NBUCKETS],
    sum_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("sum_ns", &snap.sum_ns)
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation. Two relaxed `fetch_add`s; no allocation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Copies the counters out for percentile math off the hot path.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub counts: Vec<u64>,
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation in nanoseconds, if any were recorded.
    pub fn mean_ns(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_ns as f64 / n as f64)
    }

    /// Index of the bucket containing the `q`-quantile observation
    /// (nearest-rank), or `None` when empty.
    pub fn percentile_bucket(&self, q: f64) -> Option<usize> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(self.counts.len() - 1)
    }

    /// `q`-quantile estimate in nanoseconds: the midpoint of the bucket the
    /// nearest-rank observation landed in (its floor for the overflow
    /// bucket). Error is bounded by the bucket width, i.e. 25% relative.
    pub fn percentile_ns(&self, q: f64) -> Option<f64> {
        let idx = self.percentile_bucket(q)?;
        let lo = bucket_floor(idx);
        if idx >= NBUCKETS - 1 {
            return Some(lo as f64);
        }
        Some((lo + bucket_ceil(idx)) as f64 / 2.0)
    }

    /// `q`-quantile estimate in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> Option<f64> {
        self.percentile_ns(q).map(|ns| ns / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        let mut prev = 0u64;
        for idx in 0..NBUCKETS {
            let lo = bucket_floor(idx);
            let hi = bucket_ceil(idx);
            assert!(lo < hi, "bucket {idx}: [{lo}, {hi})");
            if idx > 0 {
                assert_eq!(lo, prev, "bucket {idx} floor == bucket {} ceil", idx - 1);
            }
            prev = hi;
        }
        // Every bucket's own floor maps back to itself, and the value just
        // below the ceiling does too.
        for idx in 0..NBUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(idx)), idx, "floor of {idx}");
            assert_eq!(bucket_of(bucket_ceil(idx) - 1), idx, "ceil-1 of {idx}");
        }
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn percentiles_land_in_the_exact_references_bucket() {
        // Log-uniform sample spanning sub-microsecond to tens of seconds.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                let exp: f64 = rng.gen_range(2.0..10.5);
                10f64.powf(exp) as u64
            })
            .collect();
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            // Exact nearest-rank reference over the sorted sample.
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let idx = snap.percentile_bucket(q).unwrap();
            assert!(
                (bucket_floor(idx)..bucket_ceil(idx)).contains(&exact),
                "p{q}: exact {exact} outside bucket {idx} [{}, {})",
                bucket_floor(idx),
                bucket_ceil(idx),
            );
        }
    }

    #[test]
    fn empty_histogram_reports_none() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert!(snap.mean_ns().is_none());
        assert!(snap.percentile_ns(0.99).is_none());
    }

    #[test]
    fn mean_tracks_the_sum() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(30));
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.mean_ns(), Some(20_000.0));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Recording is monotone: adding observations never decreases
            /// any bucket count or the sum, and the counts always total n.
            /// (Values span the histogram's covered range — up to ~37
            /// minutes — so the running sum cannot wrap u64.)
            #[test]
            fn recording_is_monotone(values in proptest::collection::vec(0u64..1u64 << 41, 1..200)) {
                let h = LatencyHistogram::new();
                let mut prev = h.snapshot();
                for (n, &v) in values.iter().enumerate() {
                    h.record_ns(v);
                    let next = h.snapshot();
                    prop_assert!(next.sum_ns >= prev.sum_ns);
                    for (a, b) in prev.counts.iter().zip(&next.counts) {
                        prop_assert!(b >= a, "bucket count decreased");
                    }
                    prop_assert_eq!(next.count(), n as u64 + 1);
                    prev = next;
                }
            }

            /// Every value maps into a bucket whose bounds contain it.
            #[test]
            fn bucket_of_respects_bounds(ns in 0u64..u64::MAX) {
                let idx = bucket_of(ns);
                prop_assert!(idx < NBUCKETS);
                prop_assert!(ns >= bucket_floor(idx));
                if idx < NBUCKETS - 1 {
                    prop_assert!(ns < bucket_ceil(idx));
                }
            }
        }
    }
}
