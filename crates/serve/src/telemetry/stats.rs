//! The `Telemetry` handle: per-endpoint and per-model counters and latency
//! histograms, the recent-event ring, and the optional durable event log.
//!
//! Cloning `Telemetry` is an `Arc` bump; every recording path is lock-free
//! or read-lock-only in steady state. Per-model cells follow the same
//! pattern as `LatencyTracker`: a `RwLock<HashMap>` taken for read on
//! every hit, with an occasional write-locked insert for first contact and
//! a garbage-collection sweep once the map grows past a threshold.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use hamlet_ml::cascade::MAX_TIERS;

use crate::coalesce::CoalesceStats;
use crate::error::Result;

use super::eventlog::{Event, EventKind, EventLog};
use super::hist::{HistogramSnapshot, LatencyHistogram};

/// Recent events kept in memory for `/v1/stats` regardless of whether a
/// durable log is attached.
const EVENT_RING: usize = 64;
/// Per-model cell map GC threshold (mirrors `LATENCY_CELLS_GC_THRESHOLD`).
const MODEL_CELLS_GC_THRESHOLD: usize = 256;
/// `last_hit_ms` sentinel: never hit since boot.
const NEVER: u64 = u64::MAX;

/// The served API surface, as fixed telemetry dimensions: one histogram
/// and counter pair per endpoint, no allocation to attribute a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Predict,
    Explain,
    Advise,
    Train,
    Models,
    Demote,
    /// Streaming labeled-row ingest (`/v1/observe`).
    Observe,
    /// Rollout control surface (`/v1/rollout/*`).
    Rollout,
    Healthz,
    Stats,
    Metrics,
    /// Anything unrouted (404s, typos, probes).
    Other,
}

impl Endpoint {
    pub const COUNT: usize = 12;
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Predict,
        Endpoint::Explain,
        Endpoint::Advise,
        Endpoint::Train,
        Endpoint::Models,
        Endpoint::Demote,
        Endpoint::Observe,
        Endpoint::Rollout,
        Endpoint::Healthz,
        Endpoint::Stats,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    /// Classifies a request path (method-agnostic: a GET to `/v1/predict`
    /// still counts against the predict dimension, as a 405).
    pub fn of(path: &str) -> Endpoint {
        match path {
            "/v1/predict" => Endpoint::Predict,
            "/v1/explain" => Endpoint::Explain,
            "/v1/advise" => Endpoint::Advise,
            "/v1/train" => Endpoint::Train,
            "/v1/models" => Endpoint::Models,
            "/v1/models/demote" => Endpoint::Demote,
            "/v1/observe" => Endpoint::Observe,
            "/healthz" => Endpoint::Healthz,
            "/v1/stats" => Endpoint::Stats,
            "/metrics" => Endpoint::Metrics,
            p if p.starts_with("/v1/rollout") => Endpoint::Rollout,
            _ => Endpoint::Other,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Explain => "explain",
            Endpoint::Advise => "advise",
            Endpoint::Train => "train",
            Endpoint::Models => "models",
            Endpoint::Demote => "demote",
            Endpoint::Observe => "observe",
            Endpoint::Rollout => "rollout",
            Endpoint::Healthz => "healthz",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Counters and latency for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    hist: LatencyHistogram,
    requests: AtomicU64,
    errors: AtomicU64,
    /// 500s caused by a handler panic (the dropped-`Responder` path), kept
    /// distinct from ordinary errors: the rollout scorer must not count a
    /// crashed execution as a disagreement — or an agreement.
    panics: AtomicU64,
}

impl EndpointStats {
    /// Records one completed request.
    #[inline]
    pub fn observe(&self, spent: Duration, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.hist.record(spent);
    }

    /// Records one request whose handler panicked (delivered as a 500 by
    /// the dropped `Responder`). Counts as a request *and* an error, plus
    /// the distinct panic tag.
    #[inline]
    pub fn observe_panic(&self, spent: Duration) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.observe(spent, true);
    }

    pub fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            hist: self.hist.snapshot(),
        }
    }
}

/// Point-in-time copy of one endpoint's stats.
#[derive(Debug, Clone)]
pub struct EndpointSnapshot {
    pub requests: u64,
    pub errors: u64,
    /// Of `errors`, how many were handler panics.
    pub panics: u64,
    pub hist: HistogramSnapshot,
}

/// Counters and latency for one model key, including the last-hit
/// timestamp the auto-demoter reads.
#[derive(Debug)]
pub struct ModelStats {
    hist: LatencyHistogram,
    requests: AtomicU64,
    merged_requests: AtomicU64,
    rows: AtomicU64,
    /// Milliseconds since the telemetry epoch at the last hit; [`NEVER`]
    /// until the first one.
    last_hit_ms: AtomicU64,
    /// Rows answered per cascade tier (fixed slots so recording is a few
    /// unconditional atomics, no allocation). All zero for single-model
    /// artifacts.
    tier_rows: [AtomicU64; MAX_TIERS],
    /// Rows this version scored in shadow (mirrored traffic, responses
    /// discarded).
    shadow_rows: AtomicU64,
    /// Of `shadow_rows`, how many agreed with the incumbent's label.
    shadow_agree_rows: AtomicU64,
    /// Shadow rows skipped because the mirrored execution panicked — kept
    /// out of both `shadow_rows` and the agreement tally.
    shadow_skipped_rows: AtomicU64,
}

impl Default for ModelStats {
    fn default() -> Self {
        ModelStats {
            hist: LatencyHistogram::new(),
            requests: AtomicU64::new(0),
            merged_requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            last_hit_ms: AtomicU64::new(NEVER),
            tier_rows: std::array::from_fn(|_| AtomicU64::new(0)),
            shadow_rows: AtomicU64::new(0),
            shadow_agree_rows: AtomicU64::new(0),
            shadow_skipped_rows: AtomicU64::new(0),
        }
    }
}

impl ModelStats {
    /// Records one answered predict request against this model.
    #[inline]
    pub fn record(&self, spent: Duration, rows: u64, merged: bool, now_ms: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if merged {
            self.merged_requests.fetch_add(1, Ordering::Relaxed);
        }
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.last_hit_ms.store(now_ms, Ordering::Relaxed);
        self.hist.record(spent);
    }

    /// Folds one tiered (cascade) execution's per-tier row histogram in.
    #[inline]
    pub fn record_tiers(&self, hist: &[u64; MAX_TIERS]) {
        for (cell, &n) in self.tier_rows.iter().zip(hist) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Folds one shadow-scored batch in: `rows` mirrored rows of which
    /// `agree` matched the incumbent's labels.
    #[inline]
    pub fn record_shadow(&self, rows: u64, agree: u64) {
        self.shadow_rows.fetch_add(rows, Ordering::Relaxed);
        self.shadow_agree_rows.fetch_add(agree, Ordering::Relaxed);
    }

    /// Records `rows` mirrored rows dropped from shadow scoring because
    /// their execution panicked.
    #[inline]
    pub fn record_shadow_skipped(&self, rows: u64) {
        self.shadow_skipped_rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ModelSnapshot {
        let last = self.last_hit_ms.load(Ordering::Relaxed);
        ModelSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            merged_requests: self.merged_requests.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            last_hit_ms: (last != NEVER).then_some(last),
            tier_rows: std::array::from_fn(|i| self.tier_rows[i].load(Ordering::Relaxed)),
            shadow_rows: self.shadow_rows.load(Ordering::Relaxed),
            shadow_agree_rows: self.shadow_agree_rows.load(Ordering::Relaxed),
            shadow_skipped_rows: self.shadow_skipped_rows.load(Ordering::Relaxed),
            hist: self.hist.snapshot(),
        }
    }
}

/// Point-in-time copy of one model's stats.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    pub requests: u64,
    pub merged_requests: u64,
    pub rows: u64,
    pub last_hit_ms: Option<u64>,
    /// Rows answered per cascade tier; all zero for single-model artifacts.
    pub tier_rows: [u64; MAX_TIERS],
    /// Rows scored in shadow, and how many of them agreed with the
    /// incumbent. Zero outside a rollout.
    pub shadow_rows: u64,
    pub shadow_agree_rows: u64,
    /// Shadow rows dropped because the mirrored execution panicked.
    pub shadow_skipped_rows: u64,
    pub hist: HistogramSnapshot,
}

impl ModelSnapshot {
    /// Live shadow agreement ratio, when any shadow rows were scored.
    pub fn shadow_agreement(&self) -> Option<f64> {
        (self.shadow_rows > 0).then(|| self.shadow_agree_rows as f64 / self.shadow_rows as f64)
    }
}

#[derive(Debug)]
struct TelemetryInner {
    epoch: Instant,
    coalesce: Arc<CoalesceStats>,
    endpoints: [EndpointStats; Endpoint::COUNT],
    models: RwLock<HashMap<String, Arc<ModelStats>>>,
    recent: Mutex<VecDeque<Event>>,
    log: Option<EventLog>,
}

/// The process-wide telemetry handle. Clone freely; all clones share one
/// set of counters.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    fn build(log: Option<EventLog>) -> Telemetry {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                epoch: Instant::now(),
                coalesce: Arc::new(CoalesceStats::default()),
                endpoints: std::array::from_fn(|_| EndpointStats::default()),
                models: RwLock::new(HashMap::new()),
                recent: Mutex::new(VecDeque::with_capacity(EVENT_RING)),
                log,
            }),
        }
    }

    /// Metrics only — events stay in the in-memory ring. What tests and
    /// embedded uses want.
    pub fn in_memory() -> Telemetry {
        Telemetry::build(None)
    }

    /// Metrics plus a durable event log under `dir` (created on demand,
    /// torn tail recovered).
    pub fn with_event_log(dir: &std::path::Path) -> Result<Telemetry> {
        Ok(Telemetry::build(Some(EventLog::open(dir)?)))
    }

    /// The coalescer counter block this telemetry owns. Hand the same
    /// `Arc` to [`Coalescer::with_stats`](crate::coalesce::Coalescer::with_stats)
    /// so `/healthz`, `/v1/stats` and `/metrics` all read one source of
    /// truth.
    pub fn coalesce_stats(&self) -> Arc<CoalesceStats> {
        Arc::clone(&self.inner.coalesce)
    }

    /// The stats cell for one endpoint dimension.
    #[inline]
    pub fn endpoint(&self, e: Endpoint) -> &EndpointStats {
        &self.inner.endpoints[e.index()]
    }

    /// The stats cell for a model key, created on first contact. Callers
    /// on the hot path resolve this once per request (or batch) and reuse
    /// the `Arc`.
    pub fn model(&self, key: &str) -> Arc<ModelStats> {
        if let Some(cell) = self.inner.models.read().expect("model stats lock").get(key) {
            return Arc::clone(cell);
        }
        let mut map = self.inner.models.write().expect("model stats lock");
        if map.len() >= MODEL_CELLS_GC_THRESHOLD {
            // Drop cells nobody else holds *and* that recorded nothing:
            // stats for keys that were only probed. Cells with traffic are
            // kept so restarting clients cannot wipe history mid-scrape.
            map.retain(|_, cell| {
                Arc::strong_count(cell) > 1 || cell.requests.load(Ordering::Relaxed) > 0
            });
        }
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    /// Milliseconds since this telemetry was created (the monotonic clock
    /// behind `last_hit_ms`).
    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.inner.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    pub fn uptime(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// How long since `key` last served a predict — time since boot when it
    /// never has. This is what the auto-demoter compares against its idle
    /// threshold.
    pub fn idle_for(&self, key: &str) -> Duration {
        let now = self.now_ms();
        let last = self
            .inner
            .models
            .read()
            .expect("model stats lock")
            .get(key)
            .map(|cell| cell.last_hit_ms.load(Ordering::Relaxed));
        match last {
            Some(ms) if ms != NEVER => Duration::from_millis(now.saturating_sub(ms)),
            _ => Duration::from_millis(now),
        }
    }

    /// Appends an audit event: always into the in-memory ring, and onto
    /// the durable log when one is attached. Disk trouble is reported on
    /// stderr rather than propagated — telemetry must never fail the
    /// operation it is describing.
    pub fn record_event(&self, kind: EventKind, model: &str, detail: &str) {
        let event = Event::now(kind, model, detail);
        if let Some(log) = &self.inner.log {
            if let Err(e) = log.append(&event) {
                eprintln!("event log append failed: {e}");
            }
        }
        let mut ring = self.inner.recent.lock().expect("event ring lock");
        if ring.len() >= EVENT_RING {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The in-memory event tail, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner
            .recent
            .lock()
            .expect("event ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// The durable log, when attached.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.inner.log.as_ref()
    }

    /// Snapshots every endpoint dimension, in [`Endpoint::ALL`] order.
    pub fn endpoints_snapshot(&self) -> Vec<(Endpoint, EndpointSnapshot)> {
        Endpoint::ALL
            .iter()
            .map(|&e| (e, self.endpoint(e).snapshot()))
            .collect()
    }

    /// Snapshots every model cell, sorted by key for stable output.
    pub fn models_snapshot(&self) -> Vec<(String, ModelSnapshot)> {
        let mut rows: Vec<(String, ModelSnapshot)> = self
            .inner
            .models
            .read()
            .expect("model stats lock")
            .iter()
            .map(|(k, cell)| (k.clone(), cell.snapshot()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification_covers_the_api() {
        assert_eq!(Endpoint::of("/v1/predict"), Endpoint::Predict);
        assert_eq!(Endpoint::of("/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
        for (i, e) in Endpoint::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn model_cells_accumulate_and_survive_gc() {
        let t = Telemetry::in_memory();
        let cell = t.model("m@1");
        cell.record(Duration::from_millis(2), 3, true, t.now_ms());
        cell.record(Duration::from_millis(4), 1, false, t.now_ms());
        drop(cell);
        // Flood with probed-but-idle keys to trigger the GC sweep.
        for i in 0..(MODEL_CELLS_GC_THRESHOLD + 8) {
            t.model(&format!("ghost-{i}"));
        }
        let rows = t.models_snapshot();
        let (_, snap) = rows.iter().find(|(k, _)| k == "m@1").expect("traffic kept");
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.merged_requests, 1);
        assert_eq!(snap.rows, 4);
        assert!(snap.last_hit_ms.is_some());
    }

    #[test]
    fn idle_for_tracks_last_hit() {
        let t = Telemetry::in_memory();
        // Untouched key: idle since boot.
        let idle_unknown = t.idle_for("never@1");
        assert!(idle_unknown <= t.uptime() + Duration::from_millis(1));
        t.model("hot@1")
            .record(Duration::from_micros(50), 1, false, t.now_ms());
        assert!(t.idle_for("hot@1") < Duration::from_secs(1));
    }

    #[test]
    fn event_ring_is_bounded() {
        let t = Telemetry::in_memory();
        for i in 0..(EVENT_RING + 10) {
            t.record_event(EventKind::Drift, "m@1", &format!("e{i}"));
        }
        let tail = t.recent_events();
        assert_eq!(tail.len(), EVENT_RING);
        assert_eq!(tail.last().unwrap().detail, format!("e{}", EVENT_RING + 9));
        assert_eq!(tail.first().unwrap().detail, "e10");
    }
}
