//! Contract diffing between two artifact versions.
//!
//! The operational question behind `hamlet-serve artifact diff`: *can
//! clients of version A send the same requests to version B?* The answer
//! is in the contracts — features added or removed change the row width,
//! cardinality changes shift the valid code range, and label-set deltas
//! change what raw strings encode to (a label moving in or out of a
//! dictionary silently reroutes through the `Others` slot, or starts
//! 4xx-ing on closed domains). Works across formats: both sides may be
//! v1/v2 JSON or v3 binary.

use hamlet_ml::dataset::FeatureMeta;

use crate::artifact::ModelArtifact;

/// Cap on labels listed verbatim per delta; totals are always exact.
pub const MAX_LISTED_LABELS: usize = 16;

/// A before/after pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Change<T> {
    /// Value in artifact `a`.
    pub from: T,
    /// Value in artifact `b`.
    pub to: T,
}

// Manual serde impls: the vendored derive does not support generic types.
impl<T: serde::Serialize> serde::Serialize for Change<T> {
    fn serialize(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("from".to_string(), self.from.serialize()),
            ("to".to_string(), self.to.serialize()),
        ])
    }
}

impl<T: serde::Deserialize> serde::Deserialize for Change<T> {
    fn deserialize(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let obj = v.as_obj_view("Change")?;
        Ok(Change {
            from: T::deserialize(obj.field("from")).map_err(|e| e.at("from"))?,
            to: T::deserialize(obj.field("to")).map_err(|e| e.at("to"))?,
        })
    }
}

/// Cardinality change of one shared feature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CardinalityChange {
    /// Feature name.
    pub feature: String,
    /// Cardinality in `a`.
    pub from: u32,
    /// Cardinality in `b`.
    pub to: u32,
}

/// Dictionary (label-set) delta of one shared feature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LabelDelta {
    /// Feature name.
    pub feature: String,
    /// Labels in `b` but not `a` (first [`MAX_LISTED_LABELS`]).
    pub added: Vec<String>,
    /// Exact count of added labels.
    pub added_total: usize,
    /// Labels in `a` but not `b` (first [`MAX_LISTED_LABELS`]).
    pub removed: Vec<String>,
    /// Exact count of removed labels.
    pub removed_total: usize,
    /// Whether the `Others` slot appeared/disappeared (open ↔ closed).
    pub openness_changed: bool,
}

/// Structured difference between two artifacts' serving surfaces.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArtifactDiff {
    /// Key of the first artifact (`name@version`).
    pub a: String,
    /// Key of the second artifact.
    pub b: String,
    /// Whether both were trained from the same star schema.
    pub same_schema: bool,
    /// Model family change, when any (e.g. `tree` → `mlp`).
    pub family: Option<Change<String>>,
    /// Feature-config change, when any (e.g. `NoJoin` → `JoinAll`).
    pub config: Option<Change<String>>,
    /// Row width change, when any.
    pub width: Option<Change<usize>>,
    /// Features present only in `b`, in `b`'s order.
    pub added_features: Vec<String>,
    /// Features present only in `a`, in `a`'s order.
    pub removed_features: Vec<String>,
    /// Whether shared features appear in a different order (order is part
    /// of the contract: rows are positional).
    pub order_changed: bool,
    /// Cardinality changes of shared features.
    pub cardinality_changes: Vec<CardinalityChange>,
    /// Dictionary deltas of shared features.
    pub label_deltas: Vec<LabelDelta>,
    /// Holdout accuracy of `a` and `b`.
    pub test_accuracy: Change<f64>,
}

impl ArtifactDiff {
    /// Whether the two artifacts accept identical request batches (same
    /// features, order, cardinalities and dictionaries).
    pub fn contract_compatible(&self) -> bool {
        self.width.is_none()
            && self.added_features.is_empty()
            && self.removed_features.is_empty()
            && !self.order_changed
            && self.cardinality_changes.is_empty()
            && self.label_deltas.is_empty()
    }
}

fn change<T: PartialEq + Clone>(from: &T, to: &T) -> Option<Change<T>> {
    (from != to).then(|| Change {
        from: from.clone(),
        to: to.clone(),
    })
}

fn label_delta(feature: &str, a: &FeatureMeta, b: &FeatureMeta) -> Option<LabelDelta> {
    let (da, db) = (a.domain.as_deref(), b.domain.as_deref());
    let (labels_a, labels_b): (&[String], &[String]) = (
        da.map(|d| d.labels()).unwrap_or_default(),
        db.map(|d| d.labels()).unwrap_or_default(),
    );
    let set_a: std::collections::HashSet<&String> = labels_a.iter().collect();
    let set_b: std::collections::HashSet<&String> = labels_b.iter().collect();
    let added: Vec<&String> = labels_b.iter().filter(|l| !set_a.contains(l)).collect();
    let removed: Vec<&String> = labels_a.iter().filter(|l| !set_b.contains(l)).collect();
    let openness_changed =
        da.and_then(|d| d.others_code()).is_some() != db.and_then(|d| d.others_code()).is_some();
    if added.is_empty() && removed.is_empty() && !openness_changed {
        return None;
    }
    Some(LabelDelta {
        feature: feature.to_string(),
        added_total: added.len(),
        added: added.into_iter().take(MAX_LISTED_LABELS).cloned().collect(),
        removed_total: removed.len(),
        removed: removed
            .into_iter()
            .take(MAX_LISTED_LABELS)
            .cloned()
            .collect(),
        openness_changed,
    })
}

/// Computes the serving-surface difference from artifact `a` to `b`.
pub fn diff_artifacts(a: &ModelArtifact, b: &ModelArtifact) -> ArtifactDiff {
    let features_a = a.contract.features();
    let features_b = b.contract.features();
    let names_a: Vec<&str> = features_a.iter().map(|f| f.name.as_str()).collect();
    let names_b: Vec<&str> = features_b.iter().map(|f| f.name.as_str()).collect();
    let set_a: std::collections::HashSet<&str> = names_a.iter().copied().collect();
    let set_b: std::collections::HashSet<&str> = names_b.iter().copied().collect();

    let added_features: Vec<String> = names_b
        .iter()
        .filter(|n| !set_a.contains(**n))
        .map(|n| n.to_string())
        .collect();
    let removed_features: Vec<String> = names_a
        .iter()
        .filter(|n| !set_b.contains(**n))
        .map(|n| n.to_string())
        .collect();

    // Shared features, compared pairwise by name.
    let shared_in_a: Vec<&str> = names_a
        .iter()
        .copied()
        .filter(|n| set_b.contains(n))
        .collect();
    let shared_in_b: Vec<&str> = names_b
        .iter()
        .copied()
        .filter(|n| set_a.contains(n))
        .collect();
    let order_changed = shared_in_a != shared_in_b;

    let find = |features: &[FeatureMeta], name: &str| -> usize {
        features
            .iter()
            .position(|f| f.name == name)
            .expect("shared name present")
    };
    let mut cardinality_changes = Vec::new();
    let mut label_deltas = Vec::new();
    for name in &shared_in_a {
        let fa = &features_a[find(features_a, name)];
        let fb = &features_b[find(features_b, name)];
        if fa.cardinality != fb.cardinality {
            cardinality_changes.push(CardinalityChange {
                feature: name.to_string(),
                from: fa.cardinality,
                to: fb.cardinality,
            });
        }
        if let Some(delta) = label_delta(name, fa, fb) {
            label_deltas.push(delta);
        }
    }

    ArtifactDiff {
        a: a.key(),
        b: b.key(),
        same_schema: a.schema_fingerprint == b.schema_fingerprint,
        family: change(&a.model.family().to_string(), &b.model.family().to_string()),
        config: change(&a.feature_config.name(), &b.feature_config.name()),
        width: change(&a.contract.width(), &b.contract.width()),
        added_features,
        removed_features,
        order_changed,
        cardinality_changes,
        label_deltas,
        test_accuracy: Change {
            from: a.metadata.metrics.test_accuracy,
            to: b.metadata.metrics.test_accuracy,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests::toy_artifact;
    use hamlet_ml::contract::FeatureContract;
    use hamlet_ml::dataset::Provenance;
    use hamlet_relation::domain::CatDomain;

    #[test]
    fn identical_artifacts_are_compatible() {
        let a = toy_artifact("m", 1);
        let b = toy_artifact("m", 2);
        let d = diff_artifacts(&a, &b);
        assert!(d.contract_compatible(), "{d:?}");
        assert!(d.same_schema);
        assert!(d.family.is_none());
        assert_eq!(d.a, "m@1");
        assert_eq!(d.b, "m@2");
    }

    #[test]
    fn reports_added_removed_cardinality_and_labels() {
        let a = toy_artifact("m", 1);
        let mut b = toy_artifact("m", 2);
        // v2 drops `xs0`, widens `fk` (v0..v5 + Others = card 7, so +2
        // labels), and adds a brand-new feature.
        b.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic_with_others("fk", 6).into_shared(),
            ),
            FeatureMeta::with_domain(
                "brand_new",
                Provenance::Home,
                CatDomain::synthetic("brand_new", 3).into_shared(),
            ),
        ])
        .unwrap();
        b.schema_fingerprint = 0x5EED;
        let d = diff_artifacts(&a, &b);
        assert!(!d.contract_compatible());
        assert!(!d.same_schema);
        assert_eq!(d.added_features, vec!["brand_new"]);
        assert_eq!(d.removed_features, vec!["xs0"]);
        assert_eq!(d.cardinality_changes.len(), 1);
        assert_eq!(d.cardinality_changes[0].feature, "fk");
        assert_eq!(d.cardinality_changes[0].from, 5);
        assert_eq!(d.cardinality_changes[0].to, 7);
        assert_eq!(d.label_deltas.len(), 1);
        assert_eq!(d.label_deltas[0].added_total, 2);
        assert_eq!(d.label_deltas[0].added, vec!["v4", "v5"]);
        assert_eq!(d.label_deltas[0].removed_total, 0);
        assert!(!d.label_deltas[0].openness_changed);
        assert!(d.width.is_none(), "both contracts are 2 wide");
    }

    #[test]
    fn detects_order_and_openness_changes() {
        let a = toy_artifact("m", 1);
        let mut b = toy_artifact("m", 2);
        // Same features, swapped order; fk also loses its Others slot.
        b.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic("fk", 5).into_shared(),
            ),
            FeatureMeta::with_domain(
                "xs0",
                Provenance::Home,
                CatDomain::synthetic("xs0", 2).into_shared(),
            ),
        ])
        .unwrap();
        let d = diff_artifacts(&a, &b);
        assert!(d.order_changed);
        assert!(!d.contract_compatible());
        let fk = d.label_deltas.iter().find(|l| l.feature == "fk").unwrap();
        assert!(fk.openness_changed, "{fk:?}");
        // "Others" left, "v4" arrived.
        assert_eq!(fk.removed, vec!["Others"]);
        assert_eq!(fk.added, vec!["v4"]);
    }

    #[test]
    fn label_listing_is_capped_but_totals_exact() {
        let a = toy_artifact("m", 1);
        let mut big_a = a.clone();
        let mut big_b = a.clone();
        big_a.contract = FeatureContract::new(vec![FeatureMeta::with_domain(
            "fk",
            Provenance::ForeignKey { dim: 0 },
            CatDomain::synthetic("fk", 10).into_shared(),
        )])
        .unwrap();
        big_b.contract = FeatureContract::new(vec![FeatureMeta::with_domain(
            "fk",
            Provenance::ForeignKey { dim: 0 },
            CatDomain::new("fk", (0..40).map(|i| format!("w{i}")).collect::<Vec<_>>())
                .unwrap()
                .into_shared(),
        )])
        .unwrap();
        let d = diff_artifacts(&big_a, &big_b);
        let delta = &d.label_deltas[0];
        assert_eq!(delta.added_total, 40);
        assert_eq!(delta.added.len(), MAX_LISTED_LABELS);
        assert_eq!(delta.removed_total, 10);
        assert_eq!(delta.removed.len(), 10);
    }

    #[test]
    fn diff_works_across_v2_and_v3_files() {
        use crate::artifact::{Format, ModelArtifact};
        let dir = std::env::temp_dir().join(format!("hamlet-diff-{}", std::process::id()));
        let a = toy_artifact("x", 1);
        let mut b = toy_artifact("x", 2);
        b.contract = FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "xs0",
                Provenance::Home,
                CatDomain::synthetic("xs0", 2).into_shared(),
            ),
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic_with_others("fk", 5).into_shared(),
            ),
        ])
        .unwrap();
        let pa = a.save_format(&dir, Format::V2).unwrap();
        let pb = b.save(&dir).unwrap();
        let d = diff_artifacts(
            &ModelArtifact::load(&pa).unwrap(),
            &ModelArtifact::load(&pb).unwrap(),
        );
        assert_eq!(d.cardinality_changes[0].from, 5);
        assert_eq!(d.cardinality_changes[0].to, 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
