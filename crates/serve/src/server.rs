//! Endpoint handlers: the bridge from HTTP to registry/advisor/trainer.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use hamlet_core::advisor::advise_dims;

use crate::api::{
    AdviseRequest, ApiError, DemoteRequest, ExplainRequest, ExplainResponse, Health,
    ModelsResponse, ObserveRequest, ObserveResponse, PredictRequest, PredictResponse,
    RolloutStartRequest, TrainRequest, TrainResponse,
};
use crate::artifact::{LoadMode, ModelArtifact};
use crate::coalesce::{Batch, CoalesceConfig, Coalescer, PendingPredict, Submitted};
use crate::error::ServeError;
use crate::http::{Handler, Request, Responder, Response, Server, ServerOptions};
use crate::registry::{ModelRegistry, RegistryNote};
use crate::rollout::{
    ActiveRollout, Faults, GuardrailConfig, ObservedRow, RolloutPlane, ShadowCtx,
};
use crate::telemetry::{Endpoint, EventKind, OpsGauges, Telemetry};
use crate::train::{train_and_register, train_incremental};

/// Shared state behind every worker thread.
pub struct AppState {
    /// The live model registry.
    pub registry: ModelRegistry,
    /// Directory artifacts are persisted into (and warm-loaded from).
    pub artifact_dir: PathBuf,
    /// Shard cap for batch-parallel prediction (defaults to the machine's
    /// available parallelism). One request never fans out wider than this.
    pub predict_threads: usize,
    /// Observed per-row predict latency per model (EWMA), feeding adaptive
    /// shard sizing: each shard of a batch is cut to cost roughly
    /// [`TARGET_SHARD_NANOS`] wall-clock instead of a fixed row count.
    pub latency: LatencyTracker,
    /// Cross-request predict coalescer: concurrent small `/v1/predict`
    /// requests against the same resident model merge into one sharded
    /// fan-out at the executor boundary (see [`crate::coalesce`]).
    pub coalescer: Coalescer,
    /// The ops plane: per-model/per-endpoint latency histograms and
    /// counters, the audit-event trail, and the last-hit timestamps the
    /// idle auto-demoter reads. The coalescer's counter block is shared
    /// with this handle, so every surface reports one accounting.
    pub telemetry: Telemetry,
    /// Network-plane gauges (per-reactor connections, per-model fair queue
    /// depths). [`serve_with`] installs it into the server's options so
    /// `/metrics` can read the live reactors; outside a running server it
    /// just reports empty.
    pub net: Arc<crate::http::NetStats>,
    /// The safe rollout plane: shadow/canary state machine, observe buffer
    /// and drift advisor (see [`crate::rollout`]).
    pub rollout: Arc<RolloutPlane>,
    /// Fault-injection knobs, seeded from the environment once at warm
    /// boot so parallel tests never race on `set_var`.
    pub faults: Faults,
    /// Machine-wide fan-out budget shared by every in-flight predict: the
    /// sum of extra scoped threads across concurrent requests never exceeds
    /// `predict_threads`, so N simultaneous large batches share the cores
    /// instead of each spawning a full-width set on top of the worker pool.
    shard_budget: ShardBudget,
    /// Admission gate for `/v1/train`: training runs for seconds to minutes
    /// on a worker thread, so at most one runs at a time — otherwise a
    /// handful of train requests would occupy every worker and starve the
    /// predict/health hot path. An atomic flag (not a `Mutex`) so a panic
    /// inside a training run can never poison the gate shut: the RAII
    /// release in [`TrainPermit`] runs during unwinding.
    train_gate: std::sync::atomic::AtomicBool,
}

/// Wall-clock budget per predict shard (250 µs). The adaptive shard size
/// for a model is `TARGET_SHARD_NANOS / observed-ns-per-row`: cheap models
/// (a tree at tens of ns/row) get huge shards so spawn overhead stays
/// negligible, expensive ones (an RBF-SVM at tens of µs/row) get small
/// shards so even mid-size batches use every core.
pub const TARGET_SHARD_NANOS: f64 = 250_000.0;

/// Clamp range for adaptive shard sizes: never shard finer than this many
/// rows (spawn overhead dominates below it)...
pub const MIN_ADAPTIVE_SHARD_ROWS: usize = 32;

/// ...and never coarser than this (one shard must not starve the pool).
pub const MAX_ADAPTIVE_SHARD_ROWS: usize = 65_536;

/// EWMA smoothing factor for per-row latency observations.
const LATENCY_EWMA_ALPHA: f64 = 0.2;

/// When a new-key insert finds this many latency cells, cells no request
/// currently holds are pruned (superseded model versions otherwise
/// accumulate one cell each for the process lifetime).
const LATENCY_CELLS_GC_THRESHOLD: usize = 256;

/// Per-model EWMA of observed per-row predict latency.
///
/// Observations are recorded lock-free per model (an `AtomicU64` holding
/// f64 bits, CAS-updated); the outer map takes a write lock only the first
/// time a model is seen. The recorded value approximates *sequential*
/// per-row cost: wall-clock × shards-used ÷ rows, so the estimate stays
/// comparable whether a batch ran on one thread or sixteen.
#[derive(Debug, Default)]
pub struct LatencyTracker {
    cells: std::sync::RwLock<std::collections::HashMap<String, Arc<std::sync::atomic::AtomicU64>>>,
}

/// One model's latency cell, resolved once per request: reading the shard
/// size and folding the observation back in are plain atomic ops on it —
/// no further map lookups or lock acquisitions on the predict hot path.
#[derive(Debug, Clone)]
pub struct LatencyCell(Arc<std::sync::atomic::AtomicU64>);

impl LatencyCell {
    /// Current EWMA (estimated sequential ns/row), if any observation was
    /// recorded.
    pub fn ns_per_row(&self) -> Option<f64> {
        let bits = self.0.load(std::sync::atomic::Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    /// Folds one observation (estimated sequential ns/row) into the EWMA.
    pub fn observe(&self, ns_per_row: f64) {
        use std::sync::atomic::Ordering;
        if !ns_per_row.is_finite() || ns_per_row <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let next = if old == 0.0 {
                ns_per_row
            } else {
                LATENCY_EWMA_ALPHA * ns_per_row + (1.0 - LATENCY_EWMA_ALPHA) * old
            };
            match self.0.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Shard size (rows per extra thread) for this model: sized so one
    /// shard costs ~[`TARGET_SHARD_NANOS`], clamped to
    /// [[`MIN_ADAPTIVE_SHARD_ROWS`], [`MAX_ADAPTIVE_SHARD_ROWS`]]. Models
    /// never observed yet use the library's fixed
    /// [`hamlet_ml::any::MIN_ROWS_PER_SHARD`] floor.
    pub fn shard_rows(&self) -> usize {
        match self.ns_per_row() {
            None => hamlet_ml::any::MIN_ROWS_PER_SHARD,
            Some(ns) => ((TARGET_SHARD_NANOS / ns) as usize)
                .clamp(MIN_ADAPTIVE_SHARD_ROWS, MAX_ADAPTIVE_SHARD_ROWS),
        }
    }
}

impl LatencyTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cell for a model key (read-lock lookup in steady state; a write
    /// lock only the first time a model is seen).
    pub fn cell(&self, key: &str) -> LatencyCell {
        if let Some(cell) = self.cells.read().expect("latency lock poisoned").get(key) {
            return LatencyCell(Arc::clone(cell));
        }
        let mut cells = self.cells.write().expect("latency lock poisoned");
        if cells.len() >= LATENCY_CELLS_GC_THRESHOLD && !cells.contains_key(key) {
            // Keys are `name@version`, so periodic retraining would grow
            // the map by one superseded version forever. Cells held by an
            // in-flight request (strong count > 1) survive; a pruned
            // model's EWMA simply re-learns within a few requests.
            cells.retain(|_, c| Arc::strong_count(c) > 1);
        }
        LatencyCell(Arc::clone(cells.entry(key.to_string()).or_default()))
    }

    /// Current EWMA for a model, if any observation was recorded.
    pub fn ns_per_row(&self, key: &str) -> Option<f64> {
        let cells = self.cells.read().expect("latency lock poisoned");
        let bits = cells.get(key)?.load(std::sync::atomic::Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    /// Convenience: [`LatencyCell::observe`] by key.
    pub fn observe(&self, key: &str, ns_per_row: f64) {
        self.cell(key).observe(ns_per_row);
    }

    /// Convenience: [`LatencyCell::shard_rows`] by key.
    pub fn shard_rows(&self, key: &str) -> usize {
        self.cell(key).shard_rows()
    }
}

/// A machine-wide pool of predict fan-out slots. Requests reserve up to
/// their per-request cap, run their shards, and return the slots on drop
/// (including panics). When the pool is drained a request simply runs
/// sequentially on its worker thread — prediction never blocks waiting for
/// slots.
struct ShardBudget {
    available: std::sync::atomic::AtomicUsize,
}

impl ShardBudget {
    fn new(total: usize) -> Self {
        ShardBudget {
            available: std::sync::atomic::AtomicUsize::new(total),
        }
    }

    /// Reserves up to `want` slots (possibly zero when the pool is dry).
    fn reserve(&self, want: usize) -> ShardPermit<'_> {
        use std::sync::atomic::Ordering;
        let mut cur = self.available.load(Ordering::Acquire);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return ShardPermit {
                    budget: self,
                    reserved: 0,
                };
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return ShardPermit {
                        budget: self,
                        reserved: take,
                    }
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// Reserved fan-out slots; returned to the pool on drop.
struct ShardPermit<'a> {
    budget: &'a ShardBudget,
    reserved: usize,
}

impl ShardPermit<'_> {
    /// Threads this request may use: its reserved slots, or one (the worker
    /// thread itself, which is never part of the budget's accounting).
    fn threads(&self) -> usize {
        self.reserved.max(1)
    }
}

impl Drop for ShardPermit<'_> {
    fn drop(&mut self) {
        if self.reserved > 0 {
            self.budget
                .available
                .fetch_add(self.reserved, std::sync::atomic::Ordering::AcqRel);
        }
    }
}

/// RAII permit for the training gate; releases on drop (including panics).
struct TrainPermit<'a>(&'a std::sync::atomic::AtomicBool);

impl<'a> TrainPermit<'a> {
    fn acquire(gate: &'a std::sync::atomic::AtomicBool) -> Option<Self> {
        use std::sync::atomic::Ordering;
        gate.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            .then_some(TrainPermit(gate))
    }
}

impl Drop for TrainPermit<'_> {
    fn drop(&mut self) {
        self.0.store(false, std::sync::atomic::Ordering::Release);
    }
}

/// Everything [`AppState::warm_full`] needs to build a serving state.
#[derive(Debug, Clone, Copy)]
pub struct WarmOptions {
    /// Executor threads the attached server will run (0 = no server:
    /// library/test use, budget every core for predict fan-out).
    pub executors: usize,
    /// Artifact load mode (heap vs zero-copy mmap).
    pub load_mode: LoadMode,
    /// Cross-request predict coalescing tuning.
    pub coalesce: CoalesceConfig,
    /// Rollout guardrails and drift-advisor knobs.
    pub guardrails: GuardrailConfig,
}

impl Default for WarmOptions {
    fn default() -> Self {
        WarmOptions {
            executors: 0,
            load_mode: LoadMode::Heap,
            coalesce: CoalesceConfig::default(),
            guardrails: GuardrailConfig::default(),
        }
    }
}

impl AppState {
    /// State with a warm-loaded registry.
    pub fn warm(artifact_dir: PathBuf) -> crate::error::Result<(Arc<AppState>, usize)> {
        AppState::warm_sized(artifact_dir, 0)
    }

    /// State with a warm-loaded registry, sized against an executor pool of
    /// `executors` threads: the machine-wide predict fan-out budget is what
    /// is left of the cores after the executors themselves (they each run a
    /// request and count as one thread of predict work already), floored at
    /// one extra slot so a lone large batch can always shard. Pass 0 when
    /// no server is attached (library/test use) to budget every core.
    pub fn warm_sized(
        artifact_dir: PathBuf,
        executors: usize,
    ) -> crate::error::Result<(Arc<AppState>, usize)> {
        AppState::warm_full(
            artifact_dir,
            WarmOptions {
                executors,
                ..WarmOptions::default()
            },
        )
    }

    /// [`AppState::warm_sized`] with an explicit artifact [`LoadMode`]
    /// (`Mmap` = zero-copy weight borrows from format-v3 files, both at
    /// warm-load and for lazy version promotions).
    pub fn warm_opts(
        artifact_dir: PathBuf,
        executors: usize,
        load_mode: LoadMode,
    ) -> crate::error::Result<(Arc<AppState>, usize)> {
        AppState::warm_full(
            artifact_dir,
            WarmOptions {
                executors,
                load_mode,
                ..WarmOptions::default()
            },
        )
    }

    /// Fully configurable warm boot: registry load mode, executor sizing
    /// and coalescer tuning in one place.
    pub fn warm_full(
        artifact_dir: PathBuf,
        opts: WarmOptions,
    ) -> crate::error::Result<(Arc<AppState>, usize)> {
        let (registry, loaded) = ModelRegistry::warm_load_with(&artifact_dir, opts.load_mode)?;
        let telemetry = Telemetry::with_event_log(&artifact_dir.join("events"))?;
        // Residency transitions are audited wherever they originate — the
        // HTTP demote endpoint, a pinned predict promoting a lazy slot, or
        // the idle auto-demoter — by observing the registry itself.
        registry.set_observer({
            let telemetry = telemetry.clone();
            Arc::new(move |note, key| {
                let (kind, detail) = match note {
                    RegistryNote::Promoted => {
                        (EventKind::Promote, "lazy slot promoted to resident")
                    }
                    RegistryNote::Demoted => {
                        (EventKind::Demote, "resident payload released to lazy slot")
                    }
                    RegistryNote::Adopted => {
                        (EventKind::Promote, "held candidate adopted as latest")
                    }
                };
                telemetry.record_event(kind, key, detail);
            })
        });
        telemetry.record_event(
            EventKind::Startup,
            "",
            &format!(
                "{loaded} artifact(s) warm-loaded, {} kernels",
                hamlet_ml::kernels::backend().name()
            ),
        );
        let cores = default_predict_threads();
        let budget = if opts.executors == 0 {
            cores
        } else {
            cores.saturating_sub(opts.executors).max(1)
        };
        // The rollout journal replays before any traffic: a process that
        // died mid-rollout puts its candidate back on hold (warm-load just
        // made the highest on-disk version latest, which mid-canary is
        // exactly wrong) and resumes the phase it was in.
        let rollout = Arc::new(RolloutPlane::open(&artifact_dir, opts.guardrails)?);
        rollout.resume(&registry, &telemetry);
        Ok((
            Arc::new(AppState {
                registry,
                artifact_dir,
                predict_threads: cores,
                latency: LatencyTracker::new(),
                coalescer: Coalescer::with_stats(opts.coalesce, telemetry.coalesce_stats()),
                telemetry,
                net: Arc::new(crate::http::NetStats::new()),
                rollout,
                faults: Faults::from_env(),
                shard_budget: ShardBudget::new(budget),
                train_gate: std::sync::atomic::AtomicBool::new(false),
            }),
            loaded,
        ))
    }
}

/// Default shard cap for batch-parallel prediction.
pub fn default_predict_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn error_response(e: &ServeError) -> Response {
    let status = match e {
        ServeError::BadRequest(_) | ServeError::Json(_) => 400,
        ServeError::ModelNotFound(_) => 404,
        ServeError::Format { .. } => 422,
        ServeError::Io { .. } | ServeError::Train(_) => 500,
    };
    let body = serde_json::to_string(&ApiError {
        error: e.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".into());
    Response::json(status, body)
}

fn ok_json<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => error_response(&ServeError::Json(e.to_string())),
    }
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, ServeError> {
    serde_json::from_slice(&req.body).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Resolves and validates one predict request down to a flattened
/// row-major code buffer. Runs *before* any coalescing, so a bad row can
/// only ever fail its own request.
fn parse_predict(
    state: &AppState,
    req: &Request,
) -> Result<(Arc<ModelArtifact>, Vec<u32>, usize, bool), ServeError> {
    let body: PredictRequest = parse_body(req)?;
    // Bare-name requests are eligible for canary routing; a client that
    // pinned an exact `name@version` asked for that artifact and gets it.
    let pinned = body.model.contains('@');
    let artifact = state.registry.get(&body.model)?;
    let d = artifact.contract.width();
    let rows = match (&body.rows, &body.rows_raw) {
        (Some(_), Some(_)) => {
            return Err(ServeError::BadRequest(
                "provide exactly one of `rows` and `rows_raw`, not both".into(),
            ))
        }
        (None, None) => {
            return Err(ServeError::BadRequest(
                "provide `rows` (codes) or `rows_raw` (label strings)".into(),
            ))
        }
        (Some(coded), None) => artifact.validate_coded(coded)?,
        (None, Some(raw)) => artifact.encode_raw(raw)?,
    };
    Ok((artifact, rows, d, pinned))
}

/// Executes one request's rows with adaptive shard sizing and the
/// machine-wide fan-out budget, folding the latency observation back into
/// the model's EWMA. The uncoalesced (solo) hot path; public so the bench
/// suite can weigh it directly against [`execute_batch`].
pub fn execute_predict(
    state: &AppState,
    artifact: &ModelArtifact,
    rows: &[u32],
    d: usize,
) -> Vec<bool> {
    let cell = state.latency.cell(&artifact.key());
    execute_predict_cell(state, &cell, artifact, rows, d)
}

/// Per-segment results of one executed batch. Single-model artifacts fill
/// only `labels`; cascade artifacts also report which tier answered each
/// row, the answering tier's calibrated confidence, and the batch-wide
/// per-tier row histogram telemetry folds in.
struct ExecOutcome {
    /// One label vector per input segment, in segment order.
    labels: Vec<Vec<bool>>,
    /// Per segment: the tier (0 = cheapest) that answered each row.
    tiers: Option<Vec<Vec<u8>>>,
    /// Per segment: calibrated confidence of the answering tier.
    confidence: Option<Vec<Vec<f64>>>,
    /// Rows answered per tier across the whole batch.
    tier_hist: Option<[u64; hamlet_ml::cascade::MAX_TIERS]>,
}

/// The shared execution core: adaptive shard sizing, the machine-wide
/// fan-out budget, and the EWMA fold-back, for any number of request
/// segments against one artifact. Cascade artifacts route through the
/// tiered executor — tier 0 scores the whole (possibly coalesced) batch
/// through the same sharded kernels, then only low-confidence rows are
/// re-packed contiguously for the next tier — and per-segment results are
/// bit-identical to solo per-row execution either way.
fn execute_segments_cell(
    state: &AppState,
    cell: &LatencyCell,
    artifact: &ModelArtifact,
    segments: &[&[u32]],
    d: usize,
) -> ExecOutcome {
    // Shard size comes from this model's observed per-row latency (EWMA),
    // so a shard costs ~TARGET_SHARD_NANOS wall-clock: the fixed 256-row
    // floor over-sharded cheap trees and under-sharded expensive SVMs.
    // Reading and updating the resolved cell are plain atomics.
    let shard_rows = cell.shard_rows();
    let n: usize = segments.iter().map(|s| s.len() / d).sum();
    if n == 0 {
        return ExecOutcome {
            labels: segments.iter().map(|_| Vec::new()).collect(),
            tiers: None,
            confidence: None,
            tier_hist: None,
        };
    }
    // Reserve fan-out slots from the machine-wide budget: under concurrent
    // load each request gets a fair share of the cores (or runs
    // sequentially on its own worker when the pool is dry) instead of
    // every request spawning a full-width set of threads. Only as many
    // slots as this batch can actually shard into are requested — a small
    // batch runs sequentially anyway and must not starve a concurrent
    // large one.
    let usable = n / shard_rows.max(1);
    let permit = state
        .shard_budget
        .reserve(usable.min(state.predict_threads));
    let predict_start = Instant::now();
    let outcome = match &artifact.model {
        hamlet_ml::any::AnyClassifier::Cascade(c) => {
            let pred = c.predict_segments_tiered(segments, d, permit.threads(), shard_rows);
            let hist = pred.tier_histogram();
            // The tiered result is flat in global row order; cut it back
            // at the segment boundaries.
            let mut labels = Vec::with_capacity(segments.len());
            let mut tiers = Vec::with_capacity(segments.len());
            let mut confidence = Vec::with_capacity(segments.len());
            let mut off = 0;
            for seg in segments {
                let len = seg.len() / d;
                labels.push(pred.labels[off..off + len].to_vec());
                tiers.push(pred.tiers[off..off + len].to_vec());
                confidence.push(pred.confidence[off..off + len].to_vec());
                off += len;
            }
            ExecOutcome {
                labels,
                tiers: Some(tiers),
                confidence: Some(confidence),
                tier_hist: Some(hist),
            }
        }
        model => ExecOutcome {
            labels: model.predict_segments_sharded(segments, d, permit.threads(), shard_rows),
            tiers: None,
            confidence: None,
            tier_hist: None,
        },
    };
    // Fold the observation back in as an estimated *sequential* per-row
    // cost (wall-clock × shards actually used ÷ rows), so the EWMA is
    // comparable across fan-out widths.
    let shards_used = (n / shard_rows.max(1)).clamp(1, permit.threads());
    drop(permit);
    cell.observe(predict_start.elapsed().as_nanos() as f64 * shards_used as f64 / n as f64);
    outcome
}

/// [`execute_predict`] with the model's [`LatencyCell`] already resolved —
/// the handler resolves key and cell exactly once per request and passes
/// them down, so the hot path pays the map probe a single time.
fn execute_predict_cell(
    state: &AppState,
    cell: &LatencyCell,
    artifact: &ModelArtifact,
    rows: &[u32],
    d: usize,
) -> Vec<bool> {
    execute_segments_cell(state, cell, artifact, &[rows], d)
        .labels
        .pop()
        .unwrap_or_default()
}

/// Executes a merged batch — many requests' row buffers against one model
/// — as a single sharded fan-out, paying the latency cell, fan-out budget
/// and EWMA bookkeeping **once for the whole batch** instead of once per
/// request. Per-segment results are bit-identical to solo execution.
pub fn execute_batch(
    state: &AppState,
    artifact: &ModelArtifact,
    segments: &[&[u32]],
    d: usize,
) -> Vec<Vec<bool>> {
    let cell = state.latency.cell(&artifact.key());
    execute_batch_cell(state, &cell, artifact, segments, d)
}

/// [`execute_batch`] with the model's [`LatencyCell`] already resolved.
fn execute_batch_cell(
    state: &AppState,
    cell: &LatencyCell,
    artifact: &ModelArtifact,
    segments: &[&[u32]],
    d: usize,
) -> Vec<Vec<bool>> {
    execute_segments_cell(state, cell, artifact, segments, d).labels
}

/// Runs a flushed coalescer batch and answers every participant — the one
/// spot every predict execution flows through (coalesced flushes, solo
/// requests, and the rollout plane's mirrored shadow parts alike), so
/// panic containment, latency accounting and shadow scoring each live
/// here exactly once.
///
/// A panic inside the model (or the injected `HAMLET_FAULT_PREDICT_PANIC`)
/// is **contained**: real participants get an explicit 500 tagged as a
/// panic in [`crate::telemetry::EndpointStats`] (distinguishable from bad
/// requests), shadow participants are skipped without polluting the
/// candidate's agreement stats, and canary-served requests count toward
/// the canary error-ratio guardrail.
fn run_batch(
    state: &AppState,
    key: String,
    cell: &LatencyCell,
    tstats: &Arc<crate::telemetry::ModelStats>,
    batch: Batch,
    d: usize,
) {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        state.faults.maybe_panic(&key);
        let segments: Vec<&[u32]> = batch.parts.iter().map(|p| p.rows.as_slice()).collect();
        execute_segments_cell(state, cell, &batch.artifact, &segments, d)
    }));
    let mut out = match out {
        Ok(out) => out,
        Err(_) => {
            let active = state.rollout.active();
            let canary_candidate = active
                .as_ref()
                .is_some_and(|a| a.candidate == key && a.phase() == crate::rollout::Phase::Canary);
            for part in batch.parts {
                let n_rows = (part.rows.len() / d.max(1)) as u64;
                if let Some(shadow) = part.shadow {
                    // A panicking candidate must not count mirrored rows
                    // as disagreement — skipped is its own signal.
                    shadow.stats.record_shadow_skipped(n_rows);
                    continue;
                }
                let spent = part.start.elapsed();
                state
                    .telemetry
                    .endpoint(Endpoint::Predict)
                    .observe_panic(spent);
                if canary_candidate {
                    if let Some(a) = &active {
                        a.count_canary_error();
                    }
                }
                part.responder.send(Response::json(
                    500,
                    "{\"error\":\"internal error: prediction panicked; the request was isolated\"}",
                ));
            }
            return;
        }
    };
    // Injected label flipping (a deliberately degraded candidate for
    // rollback tests) applies post-execution, pre-scoring.
    if state.faults.flip_labels.is_some() {
        for labels in &mut out.labels {
            state.faults.maybe_flip(&key, labels);
        }
    }
    if let Some(hist) = &out.tier_hist {
        tstats.record_tiers(hist);
    }
    // Per-segment provenance travels with each participant's response;
    // `None` (single-model artifact) fans out as `None` per part.
    let n_parts = batch.parts.len();
    let per_part_tiers = unzip_parts(out.tiers, n_parts);
    let per_part_conf = unzip_parts(out.confidence, n_parts);
    // A single-participant batch (window expired partnerless) did not
    // actually merge; per-model accounting mirrors the coalescer's
    // merged/solo distinction.
    let merged = n_parts > 1;
    let now_ms = state.telemetry.now_ms();
    // When this batch was served by the incumbent of an active rollout,
    // mirror each real participant's rows (and the labels just computed)
    // into the candidate's coalescer lane after responding. The clone is
    // paid only while a rollout is active.
    let mirror = state.rollout.mirror_target(&batch.artifact);
    let mut mirrored: Vec<(Vec<u32>, Vec<bool>)> = Vec::new();
    for ((mut part, labels), (tiers, confidence)) in batch
        .parts
        .into_iter()
        .zip(out.labels)
        .zip(per_part_tiers.into_iter().zip(per_part_conf))
    {
        let spent = part.start.elapsed();
        if let Some(shadow) = part.shadow.take() {
            // Mirrored part: score agreement against the incumbent's
            // labels and fold candidate latency into its own histogram
            // (the p99 guardrail reads it); no response goes anywhere.
            let agree = labels
                .iter()
                .zip(shadow.expected.iter())
                .filter(|(a, b)| a == b)
                .count() as u64;
            shadow.stats.record_shadow(labels.len() as u64, agree);
            tstats.record(spent, (part.rows.len() / d.max(1)) as u64, merged, now_ms);
            continue;
        }
        if mirror.is_some() {
            mirrored.push((part.rows.clone(), labels.clone()));
        }
        tstats.record(spent, (part.rows.len() / d.max(1)) as u64, merged, now_ms);
        state
            .telemetry
            .endpoint(Endpoint::Predict)
            .observe(spent, false);
        let response = ok_json(&PredictResponse {
            model: key.clone(),
            labels,
            tiers,
            tier_confidence: if part.explain_tiers { confidence } else { None },
            latency_ms: spent.as_secs_f64() * 1e3,
        });
        part.responder.send(response);
    }
    if let Some(active) = mirror {
        if !mirrored.is_empty() {
            mirror_into_shadow(state, &active, mirrored, d);
        }
    }
}

/// Submits mirrored incumbent traffic into the candidate's coalescer lane:
/// one detached (receiver-dropped) [`PendingPredict`] per real
/// participant, carrying the incumbent's labels as the expected answers.
/// Executed inline on this worker *after* the real responses went out, so
/// shadow scoring adds no client-visible latency. Mirrored parts carry
/// `shadow: Some(..)`, which both short-circuits the response path and
/// (because the candidate is never a mirror target itself) terminates any
/// possible mirror recursion.
fn mirror_into_shadow(
    state: &AppState,
    active: &ActiveRollout,
    mirrored: Vec<(Vec<u32>, Vec<bool>)>,
    d: usize,
) {
    let Ok(candidate) = state.registry.get(&active.candidate) else {
        return; // candidate vanished; the next tick rolls the rollout back
    };
    if candidate.contract.width() != d {
        return;
    }
    let cand_key = candidate.key();
    let cell = state.latency.cell(&cand_key);
    let tstats = state.telemetry.model(&cand_key);
    for (rows, expected) in mirrored {
        let (responder, rx) = Responder::direct();
        drop(rx); // discard the mirrored response entirely
        let part = PendingPredict {
            rows,
            start: Instant::now(),
            explain_tiers: false,
            responder,
            shadow: Some(ShadowCtx {
                expected,
                stats: Arc::clone(&tstats),
            }),
        };
        match state
            .coalescer
            .submit(&cand_key, &candidate, d, part, cell.ns_per_row())
        {
            Submitted::Joined => {}
            Submitted::Solo(part) => run_batch(
                state,
                cand_key.clone(),
                &cell,
                &tstats,
                Batch::solo(Arc::clone(&candidate), part),
                d,
            ),
            Submitted::Flush(batch) => run_batch(state, cand_key.clone(), &cell, &tstats, batch, d),
        }
    }
}

/// Spreads an optional per-segment result across `n` per-part options.
fn unzip_parts<T>(parts: Option<Vec<Vec<T>>>, n: usize) -> Vec<Option<Vec<T>>> {
    match parts {
        Some(vs) => vs.into_iter().map(Some).collect(),
        None => (0..n).map(|_| None).collect(),
    }
}

/// `POST /v1/predict`: resolve → validate/encode → coalesce → batch-
/// parallel enum-dispatch predict.
///
/// Two input shapes: `rows` (pre-encoded codes, validated per row with the
/// offending row index and feature name on failure) and `rows_raw` (raw
/// label strings, dictionary-encoded server-side against the artifact's
/// contract — the NoJoin FK-as-feature rewrite at ingest). Validation and
/// encoding both flatten into one row-major buffer; each row's width is
/// checked before flattening, since compensating-length rows (e.g.
/// [[0,1,0],[1]] against d=2) would otherwise splice across row boundaries
/// and pass a total-length check with misaligned codes.
///
/// Execution is then routed through the [`Coalescer`]: small requests
/// merge with concurrent requests for the same model into one sharded
/// fan-out (responses bit-identical to solo execution); large or lone
/// requests run solo, sharded across scoped threads
/// (`AnyClassifier::predict_batch_sharded`) so a 10k-row batch uses every
/// core instead of one worker thread.
fn predict(state: &AppState, req: &Request, responder: Responder) {
    let start = Instant::now();
    let (mut artifact, rows, d, pinned) = match parse_predict(state, req) {
        Ok(parsed) => parsed,
        Err(e) => {
            state
                .telemetry
                .endpoint(Endpoint::Predict)
                .observe(start.elapsed(), true);
            return responder.send(error_response(&e));
        }
    };
    // Canary routing: when this bare name is mid-canary, a deterministic
    // hash of the request routes the configured slice to the candidate,
    // which serves it for real (and its panics count toward the canary
    // error-ratio guardrail). Pinned requests are never re-routed.
    if !pinned {
        if let Some((active, candidate)) =
            state
                .rollout
                .canary_route(&state.registry, &artifact, &rows)
        {
            active.count_canary_request();
            artifact = candidate;
        }
    }
    // Resolve the model's identity, latency cell and telemetry cell
    // exactly once; every downstream step (coalescer lane, shard sizing,
    // EWMA fold-back, response body, per-model accounting) reuses them.
    let key = artifact.key();
    let cell = state.latency.cell(&key);
    let tstats = state.telemetry.model(&key);
    let part = PendingPredict {
        rows,
        start,
        explain_tiers: req.flag("explain_tiers"),
        responder,
        shadow: None,
    };
    match state
        .coalescer
        .submit(&key, &artifact, d, part, cell.ns_per_row())
    {
        // Merged into an open batch: its leader answers; this executor is
        // already free for the next request.
        Submitted::Joined => {}
        // Solo and flushed batches share one execution path (`run_batch`):
        // panic containment, accounting and shadow mirroring live there.
        Submitted::Solo(part) => {
            run_batch(state, key, &cell, &tstats, Batch::solo(artifact, part), d)
        }
        // Leading a batch means every participant resolved this same
        // artifact, so the key and cell resolved above serve the batch.
        Submitted::Flush(batch) => run_batch(state, key, &cell, &tstats, batch, d),
    }
}

/// `POST /v1/explain`: decode coded rows back to their raw label strings
/// via the artifact's contract — the inverse of the `rows_raw` ingest path,
/// useful for auditing what a stored code vector actually *means* against
/// the dictionaries the model was trained with. Requires a format-v2
/// artifact (dictionaries embedded); v1 artifacts get a 400 naming the
/// feature that has no dictionary.
fn explain(state: &AppState, req: &Request) -> Result<ExplainResponse, ServeError> {
    let body: ExplainRequest = parse_body(req)?;
    let artifact = state.registry.get(&body.model)?;
    if body.rows.is_empty() {
        return Err(ServeError::BadRequest("empty explain batch".into()));
    }
    let mut rows_raw = Vec::with_capacity(body.rows.len());
    for (i, row) in body.rows.iter().enumerate() {
        rows_raw.push(artifact.contract.decode_row(row).map_err(|e| {
            ServeError::BadRequest(format!("model `{}`: row {i}: {e}", artifact.key()))
        })?);
    }
    Ok(ExplainResponse {
        model: artifact.key(),
        rows_raw,
    })
}

/// `POST /v1/advise`: star-schema stats → per-dimension verdicts.
fn advise(req: &Request) -> Result<crate::api::AdviseResponse, ServeError> {
    let body: AdviseRequest = parse_body(req)?;
    if body.dims.is_empty() {
        return Err(ServeError::BadRequest("dims must be non-empty".into()));
    }
    // Zero-row dimensions would produce an infinite tuple ratio, which JSON
    // cannot carry; a real dimension table always has at least one row.
    if let Some(bad) = body.dims.iter().find(|d| d.n_rows == 0) {
        return Err(ServeError::BadRequest(format!(
            "dimension `{}` has n_rows = 0; dimension tables are non-empty",
            bad.name
        )));
    }
    Ok(advise_dims(&body.dims, body.n_train, body.family))
}

/// `POST /v1/models/demote`: return a promoted non-latest version to its
/// lazy header-only slot, releasing its payload memory (admin surface for
/// the registry's residency management).
fn demote(state: &AppState, req: &Request) -> Result<crate::registry::ModelSummary, ServeError> {
    let body: DemoteRequest = parse_body(req)?;
    state.registry.demote(&body.key)
}

/// `POST /v1/train`: run the experiment pipeline, persist, register. At
/// most one training runs at a time (see `AppState::train_gate`); a second
/// concurrent request gets a 429 instead of tying up another worker.
fn train(state: &AppState, req: &Request) -> Result<Response, ServeError> {
    let Some(_running) = TrainPermit::acquire(&state.train_gate) else {
        return Ok(Response::json(
            429,
            "{\"error\":\"a training run is already in progress; retry later\"}",
        ));
    };
    let body: TrainRequest = parse_body(req)?;
    let resp: TrainResponse = train_and_register(&state.registry, &state.artifact_dir, &body)?;
    state.telemetry.record_event(
        EventKind::Train,
        &resp.key,
        &format!(
            "dataset={} spec={} test_accuracy={:.3}",
            body.dataset,
            body.spec.name(),
            resp.metrics.test_accuracy
        ),
    );
    Ok(ok_json(&resp))
}

/// `POST /v1/observe`: stream labeled rows into the bounded observe
/// buffer. Rows are validated against the model's contract exactly like
/// `/v1/predict` coded rows, then appended to the per-name ring (memory)
/// and CRC-framed on-disk buffer (crash-safe). The buffer feeds two
/// consumers: warm-start incremental refresh (`/v1/rollout/start` with
/// `refresh`) and the periodic drift check.
fn observe(state: &AppState, req: &Request) -> Result<ObserveResponse, ServeError> {
    let body: ObserveRequest = parse_body(req)?;
    let artifact = state.registry.get(&body.model)?;
    if body.rows.is_empty() {
        return Err(ServeError::BadRequest("empty observe batch".into()));
    }
    if body.rows.len() != body.labels.len() {
        return Err(ServeError::BadRequest(format!(
            "rows/labels length mismatch: {} rows vs {} labels",
            body.rows.len(),
            body.labels.len()
        )));
    }
    let d = artifact.contract.width();
    let flat = artifact.validate_coded(&body.rows)?;
    let observed: Vec<ObservedRow> = flat
        .chunks(d)
        .zip(body.labels.iter())
        .map(|(codes, &label)| ObservedRow {
            codes: codes.to_vec(),
            label,
        })
        .collect();
    let accepted = observed.len();
    let buffered = state.rollout.observe.append(&artifact.name, &observed)?;
    Ok(ObserveResponse {
        model: artifact.name.clone(),
        accepted,
        buffered,
    })
}

/// `POST /v1/rollout/start`: begin a shadow rollout. Exactly one of
/// `candidate` (an already-registered key, e.g. from `/v1/train`) or
/// `refresh` (a bare model name — warm-start refit on the observe buffer,
/// registering the result as a held candidate) must be given.
fn rollout_start(
    state: &AppState,
    req: &Request,
) -> Result<crate::rollout::RolloutSnapshot, ServeError> {
    let body: RolloutStartRequest = parse_body(req)?;
    let key = match (&body.candidate, &body.refresh) {
        (Some(key), None) => key.clone(),
        (None, Some(name)) => {
            let rows = state.rollout.observe.snapshot(name);
            let resp = train_incremental(&state.registry, &state.artifact_dir, name, &rows)?;
            state.telemetry.record_event(
                EventKind::Train,
                &resp.key,
                &format!("warm-start refresh on {} observed rows", rows.len()),
            );
            resp.key
        }
        _ => {
            return Err(ServeError::BadRequest(
                "exactly one of \"candidate\" or \"refresh\" is required".into(),
            ))
        }
    };
    state
        .rollout
        .start(&state.registry, &state.telemetry, &key, body.slice)
}

/// Registry gauges the exporters report next to telemetry.
fn ops_gauges(state: &AppState) -> OpsGauges {
    OpsGauges {
        models_registered: state.registry.len(),
        models_resident: state.registry.resident_count(),
        kernel_backend: hamlet_ml::kernels::backend().name(),
    }
}

/// Demotes every promoted **non-latest** version whose telemetry last-hit
/// timestamp is at least `idle` old (never-hit versions count as idle
/// since boot). The latest version of each name is never touched — it
/// serves bare-name traffic. Returns the demoted keys.
///
/// This is the telemetry-driven ops loop: the reactor's timer wheel calls
/// it via [`ServerOptions::on_tick`] when `--demote-idle-secs` is set, so
/// a burst of pinned traffic against an old version stops costing payload
/// memory once the burst is over. Racing a concurrent predict is benign:
/// the predict either holds the artifact `Arc` already (it finishes
/// normally) or re-promotes the lazy slot on its next request.
pub fn demote_idle(state: &AppState, idle: std::time::Duration) -> Vec<String> {
    let summaries = state.registry.list();
    let mut demoted = Vec::new();
    for s in &summaries {
        if !s.resident {
            continue;
        }
        let latest = summaries
            .iter()
            .filter(|o| o.name == s.name)
            .map(|o| o.version)
            .max()
            .unwrap_or(s.version);
        if s.version == latest {
            continue;
        }
        if state.telemetry.idle_for(&s.key) >= idle && state.registry.demote(&s.key).is_ok() {
            demoted.push(s.key.clone());
        }
    }
    demoted
}

/// Builds the router over shared state.
pub fn router(state: Arc<AppState>) -> Handler {
    Arc::new(move |req: &Request, responder: Responder| {
        // `/v1/predict` owns its responder (it may defer into the
        // coalescer); every other endpoint answers synchronously.
        if (req.method.as_str(), req.path.as_str()) == ("POST", "/v1/predict") {
            return predict(&state, req, responder);
        }
        let sync_start = Instant::now();
        let endpoint = Endpoint::of(&req.path);
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => ok_json(&Health {
                status: "ok".into(),
                models: state.registry.len(),
                // Same counter block the coalescer records into (shared
                // through telemetry): one accounting source of truth.
                coalesce: state.telemetry.coalesce_stats().snapshot(),
            }),
            ("GET", "/v1/stats") => ok_json(&crate::telemetry::stats_response(
                &state.telemetry,
                ops_gauges(&state),
                &state.registry.list(),
                state.rollout.snapshot(),
            )),
            ("GET", "/metrics") => Response::text(
                200,
                crate::telemetry::prometheus(
                    &state.telemetry,
                    ops_gauges(&state),
                    &state.registry.list(),
                    Some(&state.net),
                    &state.rollout.snapshot(),
                ),
            ),
            ("GET", "/v1/models") => ok_json(&ModelsResponse {
                models: state.registry.list(),
            }),
            ("POST", "/v1/models/demote") => match demote(&state, req) {
                Ok(summary) => ok_json(&summary),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/explain") => match explain(&state, req) {
                Ok(resp) => ok_json(&resp),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/advise") => match advise(req) {
                Ok(resp) => ok_json(&resp),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/train") => match train(&state, req) {
                Ok(resp) => resp,
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/observe") => match observe(&state, req) {
                Ok(resp) => ok_json(&resp),
                Err(e) => error_response(&e),
            },
            ("GET", "/v1/rollout/status") => ok_json(&state.rollout.snapshot()),
            ("POST", "/v1/rollout/start") => match rollout_start(&state, req) {
                Ok(snapshot) => ok_json(&snapshot),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/rollout/abort") => match state.rollout.abort(&state.telemetry) {
                Ok(snapshot) => ok_json(&snapshot),
                Err(e) => error_response(&e),
            },
            ("GET" | "POST", _) => Response::json(
                404,
                "{\"error\":\"no such endpoint; see /healthz, /metrics, /v1/stats, \
                 /v1/models, /v1/models/demote, /v1/predict, /v1/explain, /v1/advise, \
                 /v1/train, /v1/observe, /v1/rollout/status, /v1/rollout/start, \
                 /v1/rollout/abort\"}",
            ),
            _ => Response::json(405, "{\"error\":\"method not allowed\"}"),
        };
        state
            .telemetry
            .endpoint(endpoint)
            .observe(sync_start.elapsed(), response.status >= 400);
        responder.send(response);
    })
}

/// Binds and starts the full server with default I/O options.
pub fn serve(addr: &str, workers: usize, state: Arc<AppState>) -> std::io::Result<Server> {
    serve_with(
        addr,
        ServerOptions {
            workers,
            ..ServerOptions::default()
        },
        state,
    )
}

/// Binds and starts the full server with explicit [`ServerOptions`]
/// (connection cap, timeouts, executor count, reactor count). The app
/// state's [`NetStats`](crate::http::NetStats) is wired into the server so
/// `/metrics` reports the live reactors and fair-queue depths.
pub fn serve_with(
    addr: &str,
    mut opts: ServerOptions,
    state: Arc<AppState>,
) -> std::io::Result<Server> {
    opts.net_stats = Some(Arc::clone(&state.net));
    Server::bind_with(addr, router(Arc::clone(&state)), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> Arc<AppState> {
        state_with_coalesce(CoalesceConfig::default())
    }

    fn state_with_coalesce(coalesce: CoalesceConfig) -> Arc<AppState> {
        let telemetry = Telemetry::in_memory();
        Arc::new(AppState {
            registry: ModelRegistry::new(),
            artifact_dir: std::env::temp_dir().join("hamlet-serve-router-tests"),
            predict_threads: 2,
            latency: LatencyTracker::new(),
            coalescer: Coalescer::with_stats(coalesce, telemetry.coalesce_stats()),
            telemetry,
            net: Arc::new(crate::http::NetStats::new()),
            rollout: Arc::new(RolloutPlane::in_memory(GuardrailConfig::default())),
            faults: Faults::default(),
            shard_budget: ShardBudget::new(2),
            train_gate: std::sync::atomic::AtomicBool::new(false),
        })
    }

    fn call(handler: &Handler, method: &str, path: &str, body: &str) -> (u16, String) {
        // Mirror the connection parser: split the query off the target so
        // tests can pass "/v1/predict?explain_tiers=1" naturally.
        let (path, query) = path.split_once('?').unwrap_or((path, ""));
        let (responder, rx) = Responder::direct();
        handler(
            &Request {
                method: method.into(),
                path: path.into(),
                query: query.into(),
                body: body.as_bytes().to_vec(),
                keep_alive: false,
            },
            responder,
        );
        let resp = rx.recv().expect("handler answered");
        (resp.status, String::from_utf8(resp.body).unwrap())
    }

    #[test]
    fn routes_dispatch_and_404() {
        let handler = router(state());
        let (status, body) = call(&handler, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        assert!(body.contains("coalesce"), "{body}");
        let (status, _) = call(&handler, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = call(&handler, "DELETE", "/healthz", "");
        assert_eq!(status, 405);
        let (status, _) = call(&handler, "GET", "/v1/models", "");
        assert_eq!(status, 200);
    }

    #[test]
    fn predict_unknown_model_is_404() {
        let handler = router(state());
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ghost\",\"rows\":[[0]]}",
        );
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("ghost"));
    }

    #[test]
    fn predict_ragged_rows_are_400_not_misaligned() {
        // Rows of compensating lengths must be rejected, not silently
        // spliced into a misaligned row-major buffer.
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("ragged", 1));
        let handler = router(app);
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ragged\",\"rows\":[[0,1,0],[1]]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("row 0"), "{body}");
        // Correct widths still work.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ragged\",\"rows\":[[0,1],[1,0]]}",
        );
        assert_eq!(status, 200, "{body}");
    }

    #[test]
    fn predict_raw_rows_encode_server_side() {
        let app = state();
        // toy_artifact: xs0 closed {v0,v1}; fk open {v0..v3, Others}.
        app.registry
            .insert(crate::artifact::tests::toy_artifact("raw", 1));
        let handler = router(app);
        // Known labels, plus an unseen label on the open fk → Others.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"raw\",\"rows_raw\":[[\"v1\",\"v3\"],[\"v0\",\"mystery-fk\"]]}",
        );
        assert_eq!(status, 200, "{body}");
        let resp: crate::api::PredictResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.labels.len(), 2);
        // Unseen label on the *closed* feature is a 400 naming row+feature.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"raw\",\"rows_raw\":[[\"v1\",\"v0\"],[\"surprise\",\"v0\"]]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("row 1"), "{body}");
        assert!(body.contains("xs0"), "{body}");
        // Both or neither input shape is a 400.
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"raw\",\"rows\":[[0,0]],\"rows_raw\":[[\"v0\",\"v0\"]]}",
        );
        assert_eq!(status, 400);
        let (status, _) = call(&handler, "POST", "/v1/predict", "{\"model\":\"raw\"}");
        assert_eq!(status, 400);
    }

    #[test]
    fn demote_endpoint_round_trips_residency() {
        let dir = std::env::temp_dir().join(format!("hamlet-srv-demote-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        crate::artifact::tests::toy_artifact("dm", 1)
            .save(&dir)
            .unwrap();
        crate::artifact::tests::toy_artifact("dm", 2)
            .save(&dir)
            .unwrap();
        let (app, loaded) = AppState::warm(dir.clone()).unwrap();
        assert_eq!(loaded, 2);
        let handler = router(Arc::clone(&app));
        // Promote dm@1 by predicting against it, pinned.
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"dm@1\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 200);
        assert_eq!(app.registry.resident_count(), 2);
        // Demote it over HTTP.
        let (status, body) = call(&handler, "POST", "/v1/models/demote", "{\"key\":\"dm@1\"}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"resident\":false"), "{body}");
        assert_eq!(app.registry.resident_count(), 1);
        // The latest version refuses with a clear 400.
        let (status, body) = call(&handler, "POST", "/v1/models/demote", "{\"key\":\"dm@2\"}");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("latest"), "{body}");
        // Unknown keys 404.
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/models/demote",
            "{\"key\":\"ghost@1\"}",
        );
        assert_eq!(status, 404);
        // And the demoted version still serves (re-promotes on demand).
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"dm@1\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_decodes_rows_against_the_contract() {
        let app = state();
        // toy_artifact: xs0 closed {v0,v1}; fk open {v0..v3, Others}.
        app.registry
            .insert(crate::artifact::tests::toy_artifact("exp", 1));
        let handler = router(app);
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/explain",
            "{\"model\":\"exp\",\"rows\":[[1,3],[0,4]]}",
        );
        assert_eq!(status, 200, "{body}");
        let resp: crate::api::ExplainResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.model, "exp@1");
        assert_eq!(resp.rows_raw.len(), 2);
        assert_eq!(resp.rows_raw[0][0], "v1");
        assert_eq!(resp.rows_raw[0][1], "v3");
        assert_eq!(
            resp.rows_raw[1][1], "Others",
            "the open-domain fallback slot decodes by name"
        );
        // Out-of-domain code: 400 naming the row.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/explain",
            "{\"model\":\"exp\",\"rows\":[[0,0],[0,9]]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("row 1"), "{body}");
        // Empty batch and unknown model.
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/explain",
            "{\"model\":\"exp\",\"rows\":[]}",
        );
        assert_eq!(status, 400);
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/explain",
            "{\"model\":\"ghost\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn predict_errors_name_every_offending_row() {
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("multi", 1));
        let handler = router(app);
        // Row 0 fine; row 1 bad code on fk; row 2 wrong width.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"multi\",\"rows\":[[0,0],[0,9],[1]]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("row 1"), "{body}");
        assert!(body.contains("fk"), "{body}");
        assert!(body.contains("row 2"), "{body}");
    }

    #[test]
    fn predict_malformed_body_is_400() {
        let handler = router(state());
        let (status, _) = call(&handler, "POST", "/v1/predict", "{not json");
        assert_eq!(status, 400);
        let (status, _) = call(&handler, "POST", "/v1/predict", "{\"model\":3}");
        assert_eq!(status, 400);
    }

    #[test]
    fn advise_matches_core_advisor() {
        use hamlet_core::advisor::{advise_dims, Advice, DimStats};
        use hamlet_core::model_zoo::ModelFamily;

        let handler = router(state());
        let dims = vec![
            DimStats::closed("safe", 100),
            DimStats::closed("risky", 5000),
        ];
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/advise",
            &serde_json::to_string(&crate::api::AdviseRequest {
                family: ModelFamily::TreeOrAnn,
                n_train: 6000,
                dims: dims.clone(),
            })
            .unwrap(),
        );
        assert_eq!(status, 200, "{body}");
        let got: crate::api::AdviseResponse = serde_json::from_str(&body).unwrap();
        let want = advise_dims(&dims, 6000, ModelFamily::TreeOrAnn);
        assert_eq!(got.dimensions.len(), want.dimensions.len());
        for (g, w) in got.dimensions.iter().zip(&want.dimensions) {
            assert_eq!(g.advice, w.advice);
            assert!((g.tuple_ratio - w.tuple_ratio).abs() < 1e-12);
        }
        assert_eq!(got.dimensions[0].advice, Advice::AvoidJoin);
        assert_eq!(got.dimensions[1].advice, Advice::RetainJoin);
    }

    #[test]
    fn concurrent_train_requests_get_429() {
        let app = state();
        let handler = router(Arc::clone(&app));
        // Simulate an in-flight training run by holding the gate.
        let permit = TrainPermit::acquire(&app.train_gate).unwrap();
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/train",
            "{\"name\":\"x\",\"dataset\":\"movies\",\"spec\":\"TreeGini\"}",
        );
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("in progress"), "{body}");
        drop(permit);
        // A failed (or panicked) run must release the gate: this request
        // gets past admission and fails on the body instead of with 429.
        let (status, _) = call(&handler, "POST", "/v1/train", "{not json");
        assert_eq!(status, 400);
        let (status, _) = call(&handler, "POST", "/v1/train", "{not json");
        assert_eq!(status, 400, "gate must be released after a failed run");
    }

    #[test]
    fn shard_budget_splits_fairly_and_releases_on_drop() {
        let budget = ShardBudget::new(4);
        let a = budget.reserve(3);
        assert_eq!(a.threads(), 3);
        let b = budget.reserve(3);
        assert_eq!(b.threads(), 1, "only one slot left");
        let c = budget.reserve(3);
        assert_eq!(c.threads(), 1, "dry pool still grants the worker thread");
        assert_eq!(c.reserved, 0);
        drop(a);
        let d = budget.reserve(4);
        assert_eq!(d.threads(), 3, "dropped permits return to the pool");
        drop(b);
        drop(c);
        drop(d);
        assert_eq!(
            budget.reserve(usize::MAX).threads(),
            4,
            "everything released"
        );
    }

    #[test]
    fn latency_tracker_adapts_shard_size() {
        let t = LatencyTracker::new();
        // Unobserved models use the library's fixed floor.
        assert_eq!(t.shard_rows("fresh@1"), hamlet_ml::any::MIN_ROWS_PER_SHARD);
        // A cheap model (100 ns/row) gets coarse shards near the target
        // budget; an expensive one (50 µs/row) gets the minimum.
        t.observe("tree@1", 100.0);
        assert_eq!(t.shard_rows("tree@1"), 2500);
        t.observe("svm@1", 50_000.0);
        assert_eq!(t.shard_rows("svm@1"), MIN_ADAPTIVE_SHARD_ROWS);
        // Extremes clamp rather than explode.
        t.observe("instant@1", 1e-3);
        assert_eq!(t.shard_rows("instant@1"), MAX_ADAPTIVE_SHARD_ROWS);
        // The EWMA tracks drift: after many fast observations a formerly
        // slow model's shards grow.
        for _ in 0..200 {
            t.observe("svm@1", 1_000.0);
        }
        assert!(t.shard_rows("svm@1") > 200, "{}", t.shard_rows("svm@1"));
        // Garbage observations are ignored.
        t.observe("svm@1", f64::NAN);
        t.observe("svm@1", -5.0);
        assert!(t.ns_per_row("svm@1").unwrap().is_finite());
    }

    #[test]
    fn predict_records_latency_observations() {
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("obs", 1));
        let handler = router(Arc::clone(&app));
        assert!(app.latency.ns_per_row("obs@1").is_none());
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"obs\",\"rows\":[[0,0],[1,1]]}",
        );
        assert_eq!(status, 200);
        let first = app.latency.ns_per_row("obs@1").expect("observed");
        assert!(first > 0.0);
        // More traffic keeps folding in (the EWMA moves or stays finite).
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"obs\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 200);
        assert!(app.latency.ns_per_row("obs@1").unwrap().is_finite());
    }

    #[test]
    fn cascade_predicts_report_tiers_and_telemetry() {
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_cascade_artifact("casc", 1));
        let handler = router(Arc::clone(&app));
        // Plain predict: labels plus per-row tier provenance, no
        // confidence unless asked for.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"casc\",\"rows\":[[0,0],[1,1],[0,2]]}",
        );
        assert_eq!(status, 200, "{body}");
        let resp: crate::api::PredictResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.labels.len(), 3);
        let tiers = resp.tiers.expect("cascade responses carry tier provenance");
        assert_eq!(tiers.len(), 3);
        assert!(tiers.iter().all(|&t| t < 2), "{tiers:?}");
        assert!(resp.tier_confidence.is_none());
        // ?explain_tiers=1 adds calibrated per-row confidence.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict?explain_tiers=1",
            "{\"model\":\"casc\",\"rows\":[[0,0],[1,1]]}",
        );
        assert_eq!(status, 200, "{body}");
        let resp: crate::api::PredictResponse = serde_json::from_str(&body).unwrap();
        let conf = resp.tier_confidence.expect("explain_tiers adds confidence");
        assert_eq!(conf.len(), 2);
        assert!(conf.iter().all(|c| (0.5..1.0).contains(c)), "{conf:?}");
        // Tier telemetry shows up on /v1/stats and /metrics.
        let (status, body) = call(&handler, "GET", "/v1/stats", "");
        assert_eq!(status, 200);
        let stats: crate::api::StatsResponse = serde_json::from_str(&body).unwrap();
        let row = stats.models.iter().find(|m| m.model == "casc@1").unwrap();
        let tier_rows = row.cascade_tier_rows.as_ref().expect("tier rows recorded");
        assert_eq!(tier_rows.iter().sum::<u64>(), 5, "{tier_rows:?}");
        let ratio = row.cascade_escalation_ratio.unwrap();
        assert!((0.0..=1.0).contains(&ratio));
        let (status, text) = call(&handler, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(
            text.contains("hamlet_cascade_tier_rows_total{model=\"casc@1\",tier=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("hamlet_cascade_escalation_ratio{model=\"casc@1\"}"),
            "{text}"
        );
        // Non-cascade models stay silent on the cascade families.
        let row_free = stats.models.iter().all(|m| {
            m.model == "casc@1"
                || (m.cascade_tier_rows.is_none() && m.cascade_escalation_ratio.is_none())
        });
        assert!(row_free);
    }

    #[test]
    fn advise_empty_dims_is_400() {
        let handler = router(state());
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/advise",
            "{\"family\":\"Linear\",\"n_train\":10,\"dims\":[]}",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn observe_endpoint_buffers_labeled_rows() {
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("obs", 1));
        let handler = router(Arc::clone(&app));
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/observe",
            "{\"model\":\"obs\",\"rows\":[[0,1],[1,0]],\"labels\":[true,false]}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"accepted\":2"), "{body}");
        assert!(body.contains("\"buffered\":2"), "{body}");
        // Rows and labels must pair up.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/observe",
            "{\"model\":\"obs\",\"rows\":[[0,1]],\"labels\":[true,false]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("mismatch"), "{body}");
        // Rows are validated against the contract like /v1/predict codes.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/observe",
            "{\"model\":\"obs\",\"rows\":[[9,0]],\"labels\":[true]}",
        );
        assert_eq!(status, 400, "{body}");
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/observe",
            "{\"model\":\"ghost\",\"rows\":[[0]],\"labels\":[true]}",
        );
        assert_eq!(status, 404);
        assert_eq!(app.rollout.observe.snapshot("obs").len(), 2);
    }

    #[test]
    fn rollout_endpoints_drive_shadow_then_canary() {
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("m", 1));
        let (cand_key, _) = app
            .registry
            .register_candidate(crate::artifact::tests::toy_artifact("m", 2), 0, |_| Ok(()))
            .unwrap();
        assert_eq!(cand_key, "m@2");
        let handler = router(Arc::clone(&app));
        let (status, body) = call(&handler, "GET", "/v1/rollout/status", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"active\":false"), "{body}");
        // Start with a full canary slice so routing is deterministic below.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/rollout/start",
            "{\"candidate\":\"m@2\",\"slice\":100}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"phase\":\"shadow\""), "{body}");
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/rollout/start",
            "{\"candidate\":\"m@2\"}",
        );
        assert_eq!(status, 400, "one rollout at a time");
        // Shadow: bare-name traffic is served by the incumbent, mirrored to
        // the candidate, and scored against the incumbent's labels.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"m\",\"rows\":[[0,0],[1,1]]}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"model\":\"m@1\""), "{body}");
        let snap = app.telemetry.model("m@2").snapshot();
        assert_eq!(snap.shadow_rows, 2, "mirrored rows scored");
        assert_eq!(
            snap.shadow_agreement(),
            Some(1.0),
            "identical toy models agree"
        );
        // Clear the graduation bar and tick: shadow → canary.
        app.telemetry.model("m@2").record_shadow(200, 200);
        app.rollout.tick(&app.registry, &app.telemetry);
        let (_, body) = call(&handler, "GET", "/v1/rollout/status", "");
        assert!(body.contains("\"phase\":\"canary\""), "{body}");
        // Canary at slice 100: every bare-name request routes to m@2...
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"m\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"model\":\"m@2\""), "{body}");
        // ...but pinned requests are never re-routed.
        let (_, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"m@1\",\"rows\":[[0,0]]}",
        );
        assert!(body.contains("\"model\":\"m@1\""), "{body}");
        // The state gauge reaches /metrics while active.
        let (_, text) = call(&handler, "GET", "/metrics", "");
        assert!(
            text.contains("hamlet_rollout_state{model=\"m\"} 2"),
            "{text}"
        );
        // Abort tears it down; a second abort is a clean 400.
        let (status, body) = call(&handler, "POST", "/v1/rollout/abort", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"active\":false"), "{body}");
        let (status, _) = call(&handler, "POST", "/v1/rollout/abort", "");
        assert_eq!(status, 400);
    }

    #[test]
    fn rollout_start_requires_exactly_one_source() {
        let handler = router(state());
        let (status, body) = call(&handler, "POST", "/v1/rollout/start", "{}");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("exactly one"), "{body}");
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/rollout/start",
            "{\"candidate\":\"a@1\",\"refresh\":\"a\"}",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn predict_panic_is_contained_to_a_500() {
        let telemetry = Telemetry::in_memory();
        let app = Arc::new(AppState {
            registry: ModelRegistry::new(),
            artifact_dir: std::env::temp_dir().join("hamlet-srv-panic"),
            predict_threads: 2,
            latency: LatencyTracker::new(),
            coalescer: Coalescer::with_stats(CoalesceConfig::default(), telemetry.coalesce_stats()),
            telemetry,
            net: Arc::new(crate::http::NetStats::new()),
            rollout: Arc::new(crate::rollout::RolloutPlane::in_memory(
                GuardrailConfig::default(),
            )),
            faults: Faults {
                predict_panic: Some("boom@1".into()),
                flip_labels: None,
            },
            shard_budget: ShardBudget::new(2),
            train_gate: std::sync::atomic::AtomicBool::new(false),
        });
        app.registry
            .insert(crate::artifact::tests::toy_artifact("boom", 1));
        app.registry
            .insert(crate::artifact::tests::toy_artifact("fine", 1));
        let handler = router(Arc::clone(&app));
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"boom\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("isolated"), "{body}");
        // Panics are tagged distinctly from ordinary errors.
        let snap = app.telemetry.endpoint(Endpoint::Predict).snapshot();
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.errors, 1);
        // The executor survives: a healthy model still answers.
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"fine\",\"rows\":[[0,0]]}",
        );
        assert_eq!(status, 200);
        let (_, text) = call(&handler, "GET", "/metrics", "");
        assert!(
            text.contains("hamlet_request_panics_total{endpoint=\"predict\"} 1"),
            "{text}"
        );
    }
}
