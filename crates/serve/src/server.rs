//! Endpoint handlers: the bridge from HTTP to registry/advisor/trainer.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use hamlet_core::advisor::advise_dims;

use crate::api::{
    AdviseRequest, ApiError, Health, ModelsResponse, PredictRequest, PredictResponse, TrainRequest,
    TrainResponse,
};
use crate::error::ServeError;
use crate::http::{Handler, Request, Response, Server};
use crate::registry::ModelRegistry;
use crate::train::train_and_register;

/// Shared state behind every worker thread.
pub struct AppState {
    /// The live model registry.
    pub registry: ModelRegistry,
    /// Directory artifacts are persisted into (and warm-loaded from).
    pub artifact_dir: PathBuf,
    /// Admission gate for `/v1/train`: training runs for seconds to minutes
    /// on a worker thread, so at most one runs at a time — otherwise a
    /// handful of train requests would occupy every worker and starve the
    /// predict/health hot path. An atomic flag (not a `Mutex`) so a panic
    /// inside a training run can never poison the gate shut: the RAII
    /// release in [`TrainPermit`] runs during unwinding.
    train_gate: std::sync::atomic::AtomicBool,
}

/// RAII permit for the training gate; releases on drop (including panics).
struct TrainPermit<'a>(&'a std::sync::atomic::AtomicBool);

impl<'a> TrainPermit<'a> {
    fn acquire(gate: &'a std::sync::atomic::AtomicBool) -> Option<Self> {
        use std::sync::atomic::Ordering;
        gate.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            .then_some(TrainPermit(gate))
    }
}

impl Drop for TrainPermit<'_> {
    fn drop(&mut self) {
        self.0.store(false, std::sync::atomic::Ordering::Release);
    }
}

impl AppState {
    /// State with a warm-loaded registry.
    pub fn warm(artifact_dir: PathBuf) -> crate::error::Result<(Arc<AppState>, usize)> {
        let (registry, loaded) = ModelRegistry::warm_load(&artifact_dir)?;
        Ok((
            Arc::new(AppState {
                registry,
                artifact_dir,
                train_gate: std::sync::atomic::AtomicBool::new(false),
            }),
            loaded,
        ))
    }
}

fn error_response(e: &ServeError) -> Response {
    let status = match e {
        ServeError::BadRequest(_) | ServeError::Json(_) => 400,
        ServeError::ModelNotFound(_) => 404,
        ServeError::Format { .. } => 422,
        ServeError::Io { .. } | ServeError::Train(_) => 500,
    };
    let body = serde_json::to_string(&ApiError {
        error: e.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".into());
    Response::json(status, body)
}

fn ok_json<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => error_response(&ServeError::Json(e.to_string())),
    }
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, ServeError> {
    serde_json::from_slice(&req.body).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// `POST /v1/predict`: resolve → validate → batched enum-dispatch predict.
fn predict(state: &AppState, req: &Request) -> Result<PredictResponse, ServeError> {
    let body: PredictRequest = parse_body(req)?;
    let artifact = state.registry.get(&body.model)?;
    let start = Instant::now();
    let d = artifact.features.len();
    let n = body.rows.len();
    // Flatten into one row-major buffer for the batched hot path. Each row's
    // width is checked *before* flattening: compensating-length rows (e.g.
    // [[0,1,0],[1]] against d=2) would otherwise splice across row
    // boundaries and pass the total-length check with misaligned codes.
    let mut rows = Vec::with_capacity(n * d);
    for (i, row) in body.rows.iter().enumerate() {
        if row.len() != d {
            return Err(ServeError::BadRequest(format!(
                "row {i} has {} codes; model `{}` expects {d} features per row",
                row.len(),
                artifact.key()
            )));
        }
        rows.extend_from_slice(row);
    }
    artifact.validate_rows(&rows, n)?;
    let labels = artifact.model.predict_batch(&rows, d);
    Ok(PredictResponse {
        model: artifact.key(),
        labels,
        latency_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// `POST /v1/advise`: star-schema stats → per-dimension verdicts.
fn advise(req: &Request) -> Result<crate::api::AdviseResponse, ServeError> {
    let body: AdviseRequest = parse_body(req)?;
    if body.dims.is_empty() {
        return Err(ServeError::BadRequest("dims must be non-empty".into()));
    }
    // Zero-row dimensions would produce an infinite tuple ratio, which JSON
    // cannot carry; a real dimension table always has at least one row.
    if let Some(bad) = body.dims.iter().find(|d| d.n_rows == 0) {
        return Err(ServeError::BadRequest(format!(
            "dimension `{}` has n_rows = 0; dimension tables are non-empty",
            bad.name
        )));
    }
    Ok(advise_dims(&body.dims, body.n_train, body.family))
}

/// `POST /v1/train`: run the experiment pipeline, persist, register. At
/// most one training runs at a time (see `AppState::train_gate`); a second
/// concurrent request gets a 429 instead of tying up another worker.
fn train(state: &AppState, req: &Request) -> Result<Response, ServeError> {
    let Some(_running) = TrainPermit::acquire(&state.train_gate) else {
        return Ok(Response::json(
            429,
            "{\"error\":\"a training run is already in progress; retry later\"}",
        ));
    };
    let body: TrainRequest = parse_body(req)?;
    let resp: TrainResponse = train_and_register(&state.registry, &state.artifact_dir, &body)?;
    Ok(ok_json(&resp))
}

/// Builds the router over shared state.
pub fn router(state: Arc<AppState>) -> Handler {
    Arc::new(move |req: &Request| -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => ok_json(&Health {
                status: "ok".into(),
                models: state.registry.len(),
            }),
            ("GET", "/v1/models") => ok_json(&ModelsResponse {
                models: state.registry.list(),
            }),
            ("POST", "/v1/predict") => match predict(&state, req) {
                Ok(resp) => ok_json(&resp),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/advise") => match advise(req) {
                Ok(resp) => ok_json(&resp),
                Err(e) => error_response(&e),
            },
            ("POST", "/v1/train") => match train(&state, req) {
                Ok(resp) => resp,
                Err(e) => error_response(&e),
            },
            ("GET" | "POST", _) => Response::json(
                404,
                "{\"error\":\"no such endpoint; see /healthz, /v1/models, /v1/predict, \
                 /v1/advise, /v1/train\"}",
            ),
            _ => Response::json(405, "{\"error\":\"method not allowed\"}"),
        }
    })
}

/// Binds and starts the full server.
pub fn serve(addr: &str, workers: usize, state: Arc<AppState>) -> std::io::Result<Server> {
    Server::bind(addr, workers, router(state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> Arc<AppState> {
        Arc::new(AppState {
            registry: ModelRegistry::new(),
            artifact_dir: std::env::temp_dir().join("hamlet-serve-router-tests"),
            train_gate: std::sync::atomic::AtomicBool::new(false),
        })
    }

    fn call(handler: &Handler, method: &str, path: &str, body: &str) -> (u16, String) {
        let resp = handler(&Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        });
        (resp.status, String::from_utf8(resp.body).unwrap())
    }

    #[test]
    fn routes_dispatch_and_404() {
        let handler = router(state());
        let (status, body) = call(&handler, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        let (status, _) = call(&handler, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = call(&handler, "DELETE", "/healthz", "");
        assert_eq!(status, 405);
        let (status, _) = call(&handler, "GET", "/v1/models", "");
        assert_eq!(status, 200);
    }

    #[test]
    fn predict_unknown_model_is_404() {
        let handler = router(state());
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ghost\",\"rows\":[[0]]}",
        );
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("ghost"));
    }

    #[test]
    fn predict_ragged_rows_are_400_not_misaligned() {
        // Rows of compensating lengths must be rejected, not silently
        // spliced into a misaligned row-major buffer.
        let app = state();
        app.registry
            .insert(crate::artifact::tests::toy_artifact("ragged", 1));
        let handler = router(app);
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ragged\",\"rows\":[[0,1,0],[1]]}",
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("row 0"), "{body}");
        // Correct widths still work.
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/predict",
            "{\"model\":\"ragged\",\"rows\":[[0,1],[1,0]]}",
        );
        assert_eq!(status, 200, "{body}");
    }

    #[test]
    fn predict_malformed_body_is_400() {
        let handler = router(state());
        let (status, _) = call(&handler, "POST", "/v1/predict", "{not json");
        assert_eq!(status, 400);
        let (status, _) = call(&handler, "POST", "/v1/predict", "{\"model\":3}");
        assert_eq!(status, 400);
    }

    #[test]
    fn advise_matches_core_advisor() {
        use hamlet_core::advisor::{advise_dims, Advice, DimStats};
        use hamlet_core::model_zoo::ModelFamily;

        let handler = router(state());
        let dims = vec![
            DimStats::closed("safe", 100),
            DimStats::closed("risky", 5000),
        ];
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/advise",
            &serde_json::to_string(&crate::api::AdviseRequest {
                family: ModelFamily::TreeOrAnn,
                n_train: 6000,
                dims: dims.clone(),
            })
            .unwrap(),
        );
        assert_eq!(status, 200, "{body}");
        let got: crate::api::AdviseResponse = serde_json::from_str(&body).unwrap();
        let want = advise_dims(&dims, 6000, ModelFamily::TreeOrAnn);
        assert_eq!(got.dimensions.len(), want.dimensions.len());
        for (g, w) in got.dimensions.iter().zip(&want.dimensions) {
            assert_eq!(g.advice, w.advice);
            assert!((g.tuple_ratio - w.tuple_ratio).abs() < 1e-12);
        }
        assert_eq!(got.dimensions[0].advice, Advice::AvoidJoin);
        assert_eq!(got.dimensions[1].advice, Advice::RetainJoin);
    }

    #[test]
    fn concurrent_train_requests_get_429() {
        let app = state();
        let handler = router(Arc::clone(&app));
        // Simulate an in-flight training run by holding the gate.
        let permit = TrainPermit::acquire(&app.train_gate).unwrap();
        let (status, body) = call(
            &handler,
            "POST",
            "/v1/train",
            "{\"name\":\"x\",\"dataset\":\"movies\",\"spec\":\"TreeGini\"}",
        );
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("in progress"), "{body}");
        drop(permit);
        // A failed (or panicked) run must release the gate: this request
        // gets past admission and fails on the body instead of with 429.
        let (status, _) = call(&handler, "POST", "/v1/train", "{not json");
        assert_eq!(status, 400);
        let (status, _) = call(&handler, "POST", "/v1/train", "{not json");
        assert_eq!(status, 400, "gate must be released after a failed run");
    }

    #[test]
    fn advise_empty_dims_is_400() {
        let handler = router(state());
        let (status, _) = call(
            &handler,
            "POST",
            "/v1/advise",
            "{\"family\":\"Linear\",\"n_train\":10,\"dims\":[]}",
        );
        assert_eq!(status, 400);
    }
}
