//! A deliberately small HTTP/1.1 server on `std::net` — event-driven since
//! the reactor refactor.
//!
//! No async runtime is available offline, and none is needed: a single
//! **reactor thread** (see [`crate::reactor`]) multiplexes every connection
//! over raw `epoll`, parsing requests incrementally through each
//! connection's explicit state machine (see [`crate::conn`]). Parsed
//! requests are handed to a fixed pool of **executor threads** over a
//! channel; executors run the router/handler and hand finished responses
//! back to the reactor, which writes them as the socket allows.
//!
//! Consequences of the split:
//!
//! - HTTP/1.1 connections are **keep-alive by default** (close on
//!   `Connection: close`, HTTP/1.0 without an explicit keep-alive, parse
//!   errors, or the per-connection request cap), and an *idle* keep-alive
//!   connection costs zero threads — `--workers` now sizes request
//!   execution, not connection concurrency.
//! - Pipelined requests are parsed as they arrive, executed strictly in
//!   order, and their responses batched into one write buffer.
//! - Handlers receive a [`Responder`] instead of returning a value, so a
//!   handler may **defer**: hand its responder to another thread (e.g. the
//!   predict coalescer merging many in-flight requests into one batch) and
//!   return immediately, freeing the executor for the next request. The
//!   response is delivered whenever `Responder::send` runs; a responder
//!   dropped without sending (handler bug or panic) delivers a 500, so no
//!   request is ever silently abandoned.
//! - Slow or dead peers are reaped by a coarse deadline wheel with
//!   state-dependent timeouts (idle vs. mid-request vs. mid-write);
//!   handlers themselves are never timed out (training runs for minutes).
//! - Malformed requests get a 400 and close the connection, oversized
//!   bodies a 413, connections over [`ServerOptions::max_conns`] a 503,
//!   and handler panics are confined to the request that caused them.

use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Upper bound on request bodies (16 MiB) — predict batches are bounded by
/// the client; this guards the server's memory.
pub const MAX_BODY_BYTES: u64 = 16 * 1024 * 1024;

/// Default upper bound on requests served over one keep-alive connection
/// before the server closes it (see [`ServerOptions::max_keepalive_requests`]).
pub const MAX_KEEPALIVE_REQUESTS: usize = 100;

/// Default cap on simultaneously open connections.
pub const MAX_CONNS: usize = 1024;

/// Tuning knobs for [`Server::bind_with`]. `Default` matches the CLI
/// defaults.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Executor threads running request handlers. This no longer bounds
    /// connection concurrency — idle connections are parked in the
    /// reactor, not on a thread.
    pub workers: usize,
    /// Cap on simultaneously open connections; excess connections are
    /// answered with a 503 and closed.
    pub max_conns: usize,
    /// A request (head + body) must arrive completely within this long of
    /// its first byte, and a queued response must make write progress at
    /// this cadence — the slow-loris/dead-peer reaping deadline.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Requests served over one keep-alive connection before close.
    pub max_keepalive_requests: usize,
    /// Which dispatched requests the queue-depth gauge counts (what
    /// [`Responder::queue_depth`] reports). The gauge exists for the
    /// predict coalescer's "are merge partners pending?" question, so the
    /// default counts only `POST /v1/predict` — counting every endpoint
    /// would let an unrelated parked job (a `/v1/train` runs for minutes)
    /// impersonate a merge partner for its whole duration.
    pub queue_gauge: fn(&Request) -> bool,
    /// Optional periodic application callback driven by the reactor's
    /// timer wheel (the auto-demoter rides this). Runs on reactor 0's
    /// thread, so it must be brief and non-blocking; cadence is quantized
    /// to the wheel's slot width (~half a second).
    pub on_tick: Option<AppTick>,
    /// Reactor (event-loop) threads sharing the accept load. With more
    /// than one, each reactor gets its own `SO_REUSEPORT` listening socket
    /// (falling back to an accept-and-deal topology where that bind
    /// fails), its own epoll instance, and its own timer wheel. Default:
    /// `min(4, cores/4).max(1)`, overridable with `HAMLET_REACTORS`.
    pub reactors: usize,
    /// Flush response segments with one `writev` of header+body iovecs
    /// per syscall (default). Off, each segment takes its own `write` —
    /// kept as a bench/debug comparison knob, byte-identical output.
    pub vectored_writes: bool,
    /// Shared sink for per-reactor connection gauges and per-model fair
    /// queue depths; the server installs its reactors/dispatcher into it
    /// at bind, and telemetry exporters read it. `None` works fine — the
    /// server then keeps stats nobody exports.
    pub net_stats: Option<Arc<NetStats>>,
}

/// Default [`ServerOptions::reactors`]: scale with the machine but stay
/// modest (executors and inference shards want cores too), overridable
/// with the `HAMLET_REACTORS` environment variable (which is how CI runs
/// the whole existing suite multi-reactor).
fn default_reactors() -> usize {
    if let Ok(v) = std::env::var("HAMLET_REACTORS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    (cores / 4).clamp(1, 4)
}

/// A periodic callback the reactor fires from its timer wheel.
#[derive(Clone)]
pub struct AppTick {
    /// Requested period (effective cadence is at least one wheel slot).
    pub every: Duration,
    /// The callback itself.
    pub run: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for AppTick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppTick")
            .field("every", &self.every)
            .finish()
    }
}

/// Default [`ServerOptions::queue_gauge`]: coalescable predict requests.
fn gauge_predicts(request: &Request) -> bool {
    request.method == "POST" && request.path == "/v1/predict"
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            max_conns: MAX_CONNS,
            request_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            max_keepalive_requests: MAX_KEEPALIVE_REQUESTS,
            queue_gauge: gauge_predicts,
            on_tick: None,
            reactors: default_reactors(),
            vectored_writes: true,
            net_stats: None,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string (the part after `?`), empty when absent. Routing
    /// ignores it; handlers opt into specific flags via [`Request::flag`].
    pub query: String,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and an explicit
    /// `Connection: keep-alive` / `Connection: close` header always wins.
    pub keep_alive: bool,
}

impl Request {
    /// Whether the query string carries a truthy flag: `?name=1` or
    /// `?name=true` (in any `&`-separated position).
    pub fn flag(&self, name: &str) -> bool {
        self.query.split('&').any(|kv| {
            kv.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .is_some_and(|v| v == "1" || v == "true")
        })
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with a status code.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialized status line + headers (the head segment of the
    /// connection's vectored write queue; the body rides as its own iovec
    /// without being copied into the head).
    pub(crate) fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
             Connection: {connection}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )
        .into_bytes()
    }
}

/// One response as read off the wire by [`read_response`].
#[derive(Debug, Clone)]
pub struct RawResponse {
    /// Parsed status code.
    pub status: u16,
    /// The raw status line + headers (terminator included).
    pub head: String,
    /// The `Content-Length`-framed body bytes.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// Head + body as one string (lossy), for assertions and diagnostics.
    pub fn text(&self) -> String {
        format!("{}{}", self.head, String::from_utf8_lossy(&self.body))
    }
}

/// Reads exactly one HTTP response (status line + headers +
/// `Content-Length`-framed body) from `stream`, leaving any pipelined
/// bytes behind it unread — so a keep-alive socket can be reused for the
/// next request. A deliberately minimal *client-side* reader shared by the
/// `probe` CLI, the benches and the test suites; not a general HTTP client
/// (no chunked encoding, which this server never emits).
pub fn read_response(stream: &mut impl std::io::Read) -> std::io::Result<RawResponse> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
        if head.len() > 64 * 1024 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unterminated response head",
            ));
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(RawResponse { status, head, body })
}

/// The application's request handler. Receives the parsed request and a
/// one-shot [`Responder`]; it must (eventually) call `Responder::send`
/// exactly once — synchronously before returning, or later from another
/// thread after stashing the responder (deferred dispatch).
pub type Handler = Arc<dyn Fn(&Request, Responder) + Send + Sync>;

/// Where a finished [`Response`] goes.
enum ResponseSink {
    /// Back to the reactor: completion channel + waker, keyed by the
    /// owning connection's token.
    Reactor {
        token: u64,
        done: Sender<Completion>,
        waker: Arc<crate::reactor::Waker>,
    },
    /// Straight to a channel — the direct-call path used by tests and any
    /// in-process caller of a [`Handler`].
    Direct(Sender<Response>),
}

/// A one-shot reply handle for exactly one request.
///
/// `send` consumes the responder; dropping one without sending delivers a
/// 500 (this is what turns a handler panic mid-defer into an error
/// response instead of a hung connection). The responder also exposes the
/// server's **executor queue depth** — how many gauge-eligible requests
/// (by default `POST /v1/predict`, see [`ServerOptions::queue_gauge`]) are
/// currently queued for or running on the executor pool — which is what
/// lets the predict coalescer wait for merge partners only when some are
/// actually in flight.
pub struct Responder {
    sink: Option<ResponseSink>,
    depth: Arc<AtomicUsize>,
}

impl Responder {
    fn for_reactor(
        token: u64,
        done: Sender<Completion>,
        waker: Arc<crate::reactor::Waker>,
        depth: Arc<AtomicUsize>,
    ) -> Responder {
        Responder {
            sink: Some(ResponseSink::Reactor { token, done, waker }),
            depth,
        }
    }

    /// A responder delivering into a plain channel, for driving a
    /// [`Handler`] without a server. Reports a queue depth of 1 (only this
    /// request in flight).
    pub fn direct() -> (Responder, Receiver<Response>) {
        Responder::direct_with_depth(1)
    }

    /// [`Responder::direct`] with a fixed queue depth — lets tests steer
    /// depth-sensitive handlers (e.g. force the coalescer to hold a batch
    /// open as if other requests were pending).
    pub fn direct_with_depth(depth: usize) -> (Responder, Receiver<Response>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            Responder {
                sink: Some(ResponseSink::Direct(tx)),
                depth: Arc::new(AtomicUsize::new(depth)),
            },
            rx,
        )
    }

    /// Gauge-eligible requests currently queued for or executing on the
    /// executor pool, including the one this responder answers (so ≥ 1
    /// while its handler runs).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed).max(1)
    }

    /// Delivers the response. Infallible from the caller's view: if the
    /// server is shutting down (reactor gone) the response has nowhere to
    /// go and is dropped.
    pub fn send(mut self, response: Response) {
        self.deliver(response);
    }

    fn deliver(&mut self, response: Response) {
        let Some(sink) = self.sink.take() else {
            return;
        };
        match sink {
            ResponseSink::Reactor { token, done, waker } => {
                // A failed send means the reactor is gone (shutdown
                // mid-flight): the response has nowhere to go.
                if done.send(Completion { token, response }).is_ok() {
                    waker.wake();
                }
            }
            ResponseSink::Direct(tx) => {
                let _ = tx.send(response);
            }
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if self.sink.is_some() {
            // The handler (or whoever it deferred to) died without
            // answering — typically a panic mid-request. The peer gets a
            // 500 instead of a connection wedged in `Dispatched` forever.
            self.deliver(Response::json(
                500,
                "{\"error\":\"internal error: request dropped without a response\"}",
            ));
        }
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder")
            .field("pending", &self.sink.is_some())
            .finish()
    }
}

/// A parsed request travelling from a reactor to an executor.
pub(crate) struct Job {
    /// Index of the reactor that owns the connection — routes the
    /// completion back to the right completion channel + waker.
    pub reactor: usize,
    /// The owning connection's token on that reactor.
    pub token: u64,
    pub request: Request,
    /// Whether this job was counted into the queue-depth gauge (see
    /// [`ServerOptions::queue_gauge`]); the executor decrements iff set.
    pub counted: bool,
}

/// A finished response travelling from an executor back to the reactor.
pub(crate) struct Completion {
    pub token: u64,
    pub response: Response,
}

/// The fair-queue key for a request: the path, refined to
/// `/v1/predict:<model>` for predict requests so one hot model queues
/// separately from the rest.
pub(crate) fn fair_key(request: &Request) -> String {
    if request.method == "POST" && request.path == "/v1/predict" {
        if let Some(model) = scan_model(&request.body) {
            return format!("{}:{model}", request.path);
        }
    }
    request.path.clone()
}

/// Cheap scan for `"model": "<name>"` in a JSON body — no full parse on
/// the reactor thread. Bails (→ path-keyed) on anything exotic: escapes
/// in the name, missing quotes, non-UTF-8.
fn scan_model(body: &[u8]) -> Option<String> {
    const NEEDLE: &[u8] = b"\"model\"";
    let at = body.windows(NEEDLE.len()).position(|w| w == NEEDLE)?;
    let mut i = at + NEEDLE.len();
    while body.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if body.get(i) != Some(&b':') {
        return None;
    }
    i += 1;
    while body.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if body.get(i) != Some(&b'"') {
        return None;
    }
    let rest = &body[i + 1..];
    let end = rest.iter().position(|&b| b == b'"' || b == b'\\')?;
    if rest[end] == b'\\' {
        return None;
    }
    std::str::from_utf8(&rest[..end]).ok().map(str::to_string)
}

/// Per-model fair queues GC'd down to this many retained depth gauges;
/// past the cap, drained models stop being exported rather than growing
/// the map unboundedly under path-cardinality abuse.
const FAIR_KEY_GAUGE_CAP: usize = 512;

/// Deficit-round-robin (quantum = 1 job) fair dispatch queue between the
/// reactors and the executor pool.
///
/// Jobs are queued per [`fair_key`] (≈ per model); executors pop one job
/// from the front key then rotate it to the back, so a model flooding
/// thousands of requests still only gets one executor slot per round and
/// cannot starve a cheap model queued behind it. Replaces the former
/// global FIFO channel.
///
/// Lifecycle: each reactor holds a [`DispatchGuard`]; when the last one
/// drops (shutdown), [`Dispatcher::pop`] drains what's queued and then
/// returns `None`, which is the executors' exit signal.
pub(crate) struct Dispatcher {
    inner: Mutex<DispatchInner>,
    ready: Condvar,
}

struct DispatchInner {
    /// Non-empty per-key FIFO queues.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over the keys of `queues`.
    ring: VecDeque<String>,
    /// Total queued jobs across all keys.
    len: usize,
    /// Live reactors (producers); 0 = closed.
    open_reactors: usize,
    /// Exported queue depths. Keys are *retained* at depth 0 (so a model
    /// that was ever queued keeps its gauge) up to [`FAIR_KEY_GAUGE_CAP`].
    depths: HashMap<String, usize>,
}

impl Dispatcher {
    pub(crate) fn new(reactors: usize) -> Dispatcher {
        Dispatcher {
            inner: Mutex::new(DispatchInner {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                len: 0,
                open_reactors: reactors,
                depths: HashMap::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Queue one job under its fair key and wake an executor.
    pub(crate) fn push(&self, key: String, job: Job) {
        let mut guard = self.inner.lock().expect("dispatcher poisoned");
        let inner = &mut *guard;
        *inner.depths.entry(key.clone()).or_insert(0) += 1;
        let queue = inner.queues.entry(key.clone()).or_default();
        if queue.is_empty() {
            inner.ring.push_back(key);
        }
        queue.push_back(job);
        inner.len += 1;
        drop(guard);
        self.ready.notify_one();
    }

    /// Block for the next job, round-robin across keys. `None` = every
    /// reactor exited and the queues are drained: executor exit signal.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut guard = self.inner.lock().expect("dispatcher poisoned");
        loop {
            if guard.len > 0 {
                let inner = &mut *guard;
                let key = inner.ring.pop_front().expect("len > 0 ⇒ ring non-empty");
                let queue = inner.queues.get_mut(&key).expect("ring key has a queue");
                let job = queue.pop_front().expect("ring key queue non-empty");
                inner.len -= 1;
                if let Some(depth) = inner.depths.get_mut(&key) {
                    *depth = depth.saturating_sub(1);
                }
                if queue.is_empty() {
                    inner.queues.remove(&key);
                    if inner.depths.len() > FAIR_KEY_GAUGE_CAP {
                        inner.depths.remove(&key);
                    }
                } else {
                    inner.ring.push_back(key);
                }
                return Some(job);
            }
            if guard.open_reactors == 0 {
                return None;
            }
            guard = self.ready.wait(guard).expect("dispatcher poisoned");
        }
    }

    /// Register one live reactor-producer; its drop is the close signal.
    pub(crate) fn reactor_guard(self: &Arc<Self>) -> DispatchGuard {
        DispatchGuard(Arc::clone(self))
    }

    /// Current per-key queue depths, sorted by key (telemetry export).
    pub(crate) fn depth_snapshot(&self) -> Vec<(String, usize)> {
        let inner = self.inner.lock().expect("dispatcher poisoned");
        let mut out: Vec<(String, usize)> =
            inner.depths.iter().map(|(k, &d)| (k.clone(), d)).collect();
        out.sort();
        out
    }
}

/// Counts a reactor as a live producer; dropping the last one closes the
/// dispatcher (created with the count pre-set by [`Dispatcher::new`], so
/// the guard only ever decrements).
pub(crate) struct DispatchGuard(Arc<Dispatcher>);

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("dispatcher poisoned");
        inner.open_reactors = inner.open_reactors.saturating_sub(1);
        let closed = inner.open_reactors == 0;
        drop(inner);
        if closed {
            self.0.ready.notify_all();
        }
    }
}

/// Per-reactor gauges, updated by the owning reactor thread and read by
/// telemetry exporters.
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Currently open connections on this reactor.
    pub connections: AtomicUsize,
    /// Connections this reactor has adopted since start.
    pub accepted_total: AtomicU64,
}

/// One reactor's gauges at a point in time.
#[derive(Debug, Clone)]
pub struct ReactorSnapshot {
    pub index: usize,
    pub connections: usize,
    pub accepted_total: u64,
}

/// Shared network-plane observability: per-reactor connection gauges and
/// the fair dispatcher's per-model queue depths. Created by the
/// application (so `/metrics` can read it), installed by the server at
/// bind.
pub struct NetStats {
    reactors: RwLock<Vec<Arc<ReactorStats>>>,
    dispatcher: RwLock<Option<Arc<Dispatcher>>>,
}

impl Default for NetStats {
    fn default() -> Self {
        NetStats {
            reactors: RwLock::new(Vec::new()),
            dispatcher: RwLock::new(None),
        }
    }
}

impl NetStats {
    pub fn new() -> NetStats {
        NetStats::default()
    }

    pub(crate) fn install(&self, reactors: Vec<Arc<ReactorStats>>, dispatcher: Arc<Dispatcher>) {
        *self.reactors.write().expect("net stats poisoned") = reactors;
        *self.dispatcher.write().expect("net stats poisoned") = Some(dispatcher);
    }

    /// Per-reactor gauges (empty until a server installs itself).
    pub fn reactor_snapshots(&self) -> Vec<ReactorSnapshot> {
        self.reactors
            .read()
            .expect("net stats poisoned")
            .iter()
            .enumerate()
            .map(|(index, s)| ReactorSnapshot {
                index,
                connections: s.connections.load(Ordering::Relaxed),
                accepted_total: s.accepted_total.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Fair-queue depth per model key, sorted (empty until installed).
    pub fn queue_depths(&self) -> Vec<(String, usize)> {
        match &*self.dispatcher.read().expect("net stats poisoned") {
            Some(d) => d.depth_snapshot(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStats")
            .field("reactors", &self.reactor_snapshots().len())
            .finish()
    }
}

/// A handle that can stop a running [`Server`] from another thread (the
/// `Server` itself is typically parked in [`Server::block_until_shutdown`]).
#[derive(Clone)]
pub struct StopHandle {
    shutdown: Arc<AtomicBool>,
    stopped: Arc<(Mutex<bool>, Condvar)>,
    wakers: Vec<Arc<crate::reactor::Waker>>,
}

impl StopHandle {
    /// Signals shutdown: every reactor exits its next loop iteration and
    /// any thread parked in [`Server::block_until_shutdown`] wakes
    /// immediately.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        let (lock, cond) = &*self.stopped;
        let mut stopped = lock.lock().expect("lifecycle poisoned");
        *stopped = true;
        cond.notify_all();
    }
}

/// An executor's route back to one reactor: completion channel + waker.
struct ReactorHandle {
    done: Sender<Completion>,
    waker: Arc<crate::reactor::Waker>,
}

/// A running server: N reactor threads + a fixed executor pool.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    stopped: Arc<(Mutex<bool>, Condvar)>,
    wakers: Vec<Arc<crate::reactor::Waker>>,
    reactors: Vec<std::thread::JoinHandle<()>>,
    executors: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) with `n_workers`
    /// executor threads and default I/O options.
    pub fn bind(addr: &str, n_workers: usize, handler: Handler) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            handler,
            ServerOptions {
                workers: n_workers,
                ..ServerOptions::default()
            },
        )
    }

    /// Binds `addr` and starts the reactor fleet + executor pool with
    /// explicit [`ServerOptions`].
    pub fn bind_with(addr: &str, handler: Handler, opts: ServerOptions) -> std::io::Result<Server> {
        use crate::reactor::{AcceptRole, ReactorConfig, Waker};
        let n = opts.reactors.max(1);
        let opts = Arc::new(opts);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stopped = Arc::new((Mutex::new(false), Condvar::new()));
        let wakers: Vec<Arc<Waker>> = (0..n)
            .map(|_| Waker::new().map(Arc::new))
            .collect::<std::io::Result<_>>()?;

        // Listening topology: single listener when single-reactor; one
        // SO_REUSEPORT shard per reactor otherwise, falling back to
        // accept-and-deal (reactor 0 owns the listener) if that bind fails.
        let mut roles: Vec<AcceptRole> = Vec::with_capacity(n);
        let local;
        if n == 1 {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            local = listener.local_addr()?;
            roles.push(AcceptRole::Shard(listener));
        } else {
            match crate::reactor::reuseport_listeners(addr, n) {
                Ok(listeners) => {
                    local = listeners[0].local_addr()?;
                    roles.extend(listeners.into_iter().map(AcceptRole::Shard));
                }
                Err(_) => {
                    let listener = TcpListener::bind(addr)?;
                    listener.set_nonblocking(true)?;
                    local = listener.local_addr()?;
                    let mut siblings = Vec::with_capacity(n - 1);
                    let mut members = Vec::with_capacity(n - 1);
                    for waker in wakers.iter().skip(1) {
                        let (tx, rx) = std::sync::mpsc::channel();
                        siblings.push((tx, Arc::clone(waker)));
                        members.push(AcceptRole::Member(rx));
                    }
                    roles.push(AcceptRole::Owner { listener, siblings });
                    roles.extend(members);
                }
            }
        }

        let dispatcher = Arc::new(Dispatcher::new(n));
        let stats: Vec<Arc<ReactorStats>> =
            (0..n).map(|_| Arc::new(ReactorStats::default())).collect();
        let total_conns = Arc::new(AtomicUsize::new(0));
        if let Some(net) = &opts.net_stats {
            net.install(stats.clone(), Arc::clone(&dispatcher));
        }
        // Requests queued for / running on the pool: reactors increment
        // per dispatched job, executors decrement when the handler returns.
        let queue_depth = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::with_capacity(n);
        let mut completion_rxs = Vec::with_capacity(n);
        for waker in &wakers {
            let (done_tx, done_rx): (Sender<Completion>, Receiver<Completion>) =
                std::sync::mpsc::channel();
            handles.push(ReactorHandle {
                done: done_tx,
                waker: Arc::clone(waker),
            });
            completion_rxs.push(done_rx);
        }
        let handles = Arc::new(handles);

        let executors = (0..opts.workers.max(1))
            .map(|i| {
                let dispatcher = Arc::clone(&dispatcher);
                let handles = Arc::clone(&handles);
                let handler = Arc::clone(&handler);
                let queue_depth = Arc::clone(&queue_depth);
                std::thread::Builder::new()
                    .name(format!("hamlet-serve-exec-{i}"))
                    .spawn(move || executor_loop(&dispatcher, &handles, &handler, &queue_depth))
                    .expect("spawning executor thread")
            })
            .collect();

        let reactors = roles
            .into_iter()
            .zip(completion_rxs)
            .enumerate()
            .map(|(index, (role, completions))| {
                let cfg = ReactorConfig {
                    index,
                    role,
                    dispatcher: Arc::clone(&dispatcher),
                    completions,
                    waker: Arc::clone(&wakers[index]),
                    shutdown: Arc::clone(&shutdown),
                    opts: Arc::clone(&opts),
                    queue_depth: Arc::clone(&queue_depth),
                    stats: Arc::clone(&stats[index]),
                    total_conns: Arc::clone(&total_conns),
                };
                std::thread::Builder::new()
                    .name(format!("hamlet-serve-reactor-{index}"))
                    .spawn(move || crate::reactor::run(cfg))
                    .expect("spawning reactor thread")
            })
            .collect();

        Ok(Server {
            addr: local,
            shutdown,
            stopped,
            wakers,
            reactors,
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A clonable handle that can stop this server from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            shutdown: Arc::clone(&self.shutdown),
            stopped: Arc::clone(&self.stopped),
            wakers: self.wakers.clone(),
        }
    }

    /// Signals shutdown and joins every reactor and executor.
    pub fn shutdown(mut self) {
        self.stop_handle().stop();
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
        // The last reactor's dispatch guard closed the dispatcher;
        // executors drain the queues and exit.
        for w in self.executors.drain(..) {
            let _ = w.join();
        }
    }

    /// Parks the calling thread until [`StopHandle::stop`] (or
    /// [`Server::shutdown`] from another thread via a handle) is called.
    /// Zero CPU while parked — this replaced a 3600 s sleep/poll loop, so
    /// stopping is now prompt instead of "within the hour".
    pub fn block_until_shutdown(&self) {
        let (lock, cond) = &*self.stopped;
        let mut stopped = lock.lock().expect("lifecycle poisoned");
        while !*stopped {
            stopped = cond.wait(stopped).expect("lifecycle poisoned");
        }
    }
}

/// One executor thread: pull fair-queued requests, run the handler
/// (panics confined to the request — an unwound handler's [`Responder`]
/// delivers a 500 from its destructor), route the completion back to the
/// owning reactor, track the shared queue depth.
fn executor_loop(
    dispatcher: &Dispatcher,
    handles: &[ReactorHandle],
    handler: &Handler,
    queue_depth: &Arc<AtomicUsize>,
) {
    while let Some(Job {
        reactor,
        token,
        request,
        counted,
    }) = dispatcher.pop()
    {
        let home = &handles[reactor];
        let responder = Responder::for_reactor(
            token,
            home.done.clone(),
            Arc::clone(&home.waker),
            Arc::clone(queue_depth),
        );
        // The responder moves into the handler; on a panic it is dropped
        // during unwinding and answers 500, on a deferral it outlives this
        // call and answers from wherever the work finishes.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler(&request, responder)
        }));
        if counted {
            queue_depth.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn echo_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request, responder: Responder| {
                responder.send(Response::text(
                    200,
                    format!("{} {} {}", req.method, req.path, req.body.len()),
                ))
            }),
        )
        .unwrap()
    }

    /// One request on a fresh connection; `Connection: close` so the
    /// response can be read to EOF.
    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_and_responds_over_real_sockets() {
        let server = echo_server();
        let addr = server.addr();
        let resp = roundtrip(
            addr,
            "POST /v1/echo?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\
             Connection: close\r\n\r\nhello",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("POST /v1/echo 5"), "{resp}");
        // Parallel requests across the executor pool.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    roundtrip(
                        addr,
                        "GET /ping HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
                    )
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().contains("GET /ping 0"));
        }
        server.shutdown();
    }

    #[test]
    fn http11_is_keep_alive_by_default() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // No Connection header at all: HTTP/1.1 stays open.
        for i in 0..5 {
            s.write_all(format!("GET /req{i} HTTP/1.1\r\nHost: h\r\n\r\n").as_bytes())
                .unwrap();
            let resp = read_one_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
            assert!(resp.contains(&format!("GET /req{i} 0")), "{resp}");
        }
        // An explicit close is honoured and the socket drains to EOF.
        s.write_all(b"GET /last HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .unwrap();
        let resp = read_one_response(&mut s);
        assert!(resp.contains("Connection: close"), "{resp}");
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server closed after Connection: close");
        server.shutdown();
    }

    #[test]
    fn http10_closes_by_default_but_honours_keep_alive() {
        let server = echo_server();
        // Bare HTTP/1.0: one response then EOF.
        let resp = roundtrip(server.addr(), "GET /old HTTP/1.0\r\nHost: h\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");
        // HTTP/1.0 + explicit keep-alive stays open.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..2 {
            s.write_all(b"GET /ka HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let resp = read_one_response(&mut s);
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
        }
        server.shutdown();
    }

    /// One full response as text, leaving the keep-alive socket reusable.
    fn read_one_response(s: &mut TcpStream) -> String {
        read_response(s).expect("one response").text()
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server();
        let resp = roundtrip(server.addr(), "NONSENSE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = roundtrip(
            server.addr(),
            "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let server = echo_server();
        let resp = roundtrip(
            server.addr(),
            &format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn unbounded_header_lines_are_rejected_not_buffered() {
        let server = echo_server();
        // A header line past the 16 KiB cap must get 413, not grow memory.
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(2 * crate::conn::MAX_LINE_BYTES)
        );
        let resp = roundtrip(server.addr(), &huge);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        // Too many headers are likewise bounded.
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..200 {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        let resp = roundtrip(server.addr(), &many);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn handler_panics_become_500() {
        let server = Server::bind(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request, responder: Responder| {
                if req.path == "/boom" {
                    panic!("handler exploded");
                }
                responder.send(Response::text(200, "ok"))
            }),
        )
        .unwrap();
        let resp = roundtrip(
            server.addr(),
            "GET /boom HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        // The executor survives the panic.
        let resp = roundtrip(
            server.addr(),
            "GET /fine HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn deferred_responses_free_the_executor_and_still_arrive() {
        // One executor; /defer parks its responder on a side thread for
        // 150 ms. A /fast request issued meanwhile must complete *before*
        // the deferred one answers — proving deferral releases the worker.
        let server = Server::bind(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request, responder: Responder| {
                if req.path == "/defer" {
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(150));
                        responder.send(Response::text(200, "late"));
                    });
                } else {
                    responder.send(Response::text(200, "fast"));
                }
            }),
        )
        .unwrap();
        let addr = server.addr();
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /defer HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let /defer dispatch
        let start = std::time::Instant::now();
        let fast = roundtrip(addr, "GET /fast HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(fast.contains("fast"), "{fast}");
        assert!(
            start.elapsed() < Duration::from_millis(120),
            "the lone executor was blocked by a deferred request"
        );
        let mut out = String::new();
        slow.read_to_string(&mut out).unwrap();
        assert!(out.contains("late"), "{out}");
        server.shutdown();
    }

    #[test]
    fn dropped_responder_answers_500() {
        // A handler that "forgets" to respond: the responder's destructor
        // must deliver a 500 rather than wedge the connection.
        let server = Server::bind(
            "127.0.0.1:0",
            1,
            Arc::new(|_req: &Request, responder: Responder| drop(responder)),
        )
        .unwrap();
        let resp = roundtrip(
            server.addr(),
            "GET /lost HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        assert!(resp.contains("without a response"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn direct_responders_collect_and_report_depth() {
        let (responder, rx) = Responder::direct();
        assert_eq!(responder.queue_depth(), 1);
        responder.send(Response::text(200, "hi"));
        assert_eq!(rx.recv().unwrap().status, 200);
        let (responder, rx) = Responder::direct_with_depth(5);
        assert_eq!(responder.queue_depth(), 5);
        drop(responder);
        assert_eq!(rx.recv().unwrap().status, 500, "drop = 500");
    }

    #[test]
    fn stop_handle_wakes_block_until_shutdown_promptly() {
        let server = echo_server();
        let handle = server.stop_handle();
        let start = std::time::Instant::now();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            handle.stop();
        });
        server.block_until_shutdown();
        let waited = start.elapsed();
        assert!(
            waited < Duration::from_secs(5),
            "parked thread woke in {waited:?}, not promptly"
        );
        stopper.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn max_conns_overflow_gets_503() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            Arc::new(|_req: &Request, responder: Responder| {
                responder.send(Response::text(200, "ok"))
            }),
            ServerOptions {
                workers: 1,
                max_conns: 2,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // Two idle connections occupy the table...
        let _a = TcpStream::connect(addr).unwrap();
        let _b = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(200)); // let the reactor accept them
                                                        // ...so the third is told 503 and closed.
        let mut c = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        // Dropping one frees a slot for a real request.
        drop(_a);
        std::thread::sleep(Duration::from_millis(200));
        let resp = roundtrip(addr, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }
}
