//! A deliberately small HTTP/1.1 server on `std::net`.
//!
//! No async runtime is available offline, and none is needed for the
//! latency envelope this layer targets: a fixed pool of worker threads pulls
//! accepted connections off an `mpsc` channel, parses requests
//! (request-line + headers + `Content-Length` body), dispatches to the
//! router and writes responses. A client that sends `Connection:
//! keep-alive` keeps its socket open and is served up to
//! [`MAX_KEEPALIVE_REQUESTS`] requests on it (one `BufReader` per
//! connection, so pipelined bytes are never dropped between requests); all
//! other clients get one request per connection (`Connection: close`), the
//! pre-keep-alive behaviour. Malformed requests get a 400 and close the
//! connection, oversized bodies a 413, and worker panics are confined to
//! the connection that caused them. A keep-alive connection occupies its
//! worker thread between requests, so the per-connection request cap plus
//! the idle read timeout bound how long a slow client can hold a worker.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on request bodies (16 MiB) — predict batches are bounded by
/// the client; this guards the server's memory.
pub const MAX_BODY_BYTES: u64 = 16 * 1024 * 1024;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on requests served over one keep-alive connection before the
/// server closes it. Bounds how long one client can monopolize a worker
/// thread from the fixed pool.
pub const MAX_KEEPALIVE_REQUESTS: usize = 100;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (`Connection: keep-alive`).
    pub keep_alive: bool,
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with a status code.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
             Connection: {connection}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The application's request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server: acceptor thread + fixed worker pool.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// with `n_workers` handler threads.
    pub fn bind(addr: &str, n_workers: usize, handler: Handler) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..n_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("hamlet-serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = rx.lock().expect("worker queue poisoned").recv();
                        match conn {
                            Ok(stream) => handle_connection(stream, &handler),
                            Err(_) => return, // acceptor gone: drain and exit
                        }
                    })
                    .expect("spawning worker thread")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("hamlet-serve-acceptor".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            return; // drops tx → workers drain and exit
                        }
                        match conn {
                            Ok(stream) => {
                                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                                let _ = stream.set_nodelay(true);
                                if tx.send(stream).is_err() {
                                    return;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                })
                .expect("spawning acceptor thread")
        };

        Ok(Server {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins all threads. The acceptor is woken by a
    /// loopback connection so `listener.incoming()` observes the flag.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks the calling thread forever (CLI `serve` mode).
    pub fn block_forever(&self) -> ! {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    // One BufReader for the connection's lifetime: bytes a pipelining
    // client sent ahead stay buffered for the next request instead of
    // being dropped with a per-request reader.
    let mut reader = BufReader::new(stream);
    for served in 1..=MAX_KEEPALIVE_REQUESTS {
        let mut request_error = false;
        let mut client_keep_alive = false;
        let response = match read_request(&mut reader) {
            Ok(request) => {
                client_keep_alive = request.keep_alive;
                // Confine handler panics to this connection.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)));
                result.unwrap_or_else(|_| {
                    Response::json(
                        500,
                        "{\"error\":\"internal handler panic\"}".as_bytes().to_vec(),
                    )
                })
            }
            Err(ReadError::TooLarge(what)) => {
                request_error = true;
                Response::json(413, format!("{{\"error\":\"{what}\"}}").into_bytes())
            }
            Err(ReadError::Malformed(msg)) => {
                request_error = true;
                Response::json(400, format!("{{\"error\":\"{msg}\"}}").into_bytes())
            }
            // Clean close or vanished client: nothing to write. (Eof is
            // normalized inside read_request; kept here for exhaustiveness.)
            Err(ReadError::Io | ReadError::Eof) => return,
        };
        if request_error {
            // The client may still be mid-send; closing with unread input
            // makes the kernel RST the connection and the client never sees
            // the error response. Drain a bounded amount first (abusive
            // streams beyond the cap still get dropped). The parse state is
            // unknown afterwards, so the connection always closes.
            drain_bounded(&mut reader);
        }
        let keep_alive = client_keep_alive && !request_error && served < MAX_KEEPALIVE_REQUESTS;
        if response.write_to(reader.get_mut(), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Reads and discards up to 1 MiB of pending input with a short timeout.
fn drain_bounded(reader: &mut BufReader<TcpStream>) {
    let _ = reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 8192];
    let mut total = 0usize;
    while total < 1024 * 1024 {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
    let _ = reader.get_mut().set_read_timeout(Some(IO_TIMEOUT));
}

enum ReadError {
    Io,
    /// The peer closed the connection at a line boundary. Clean close
    /// *before* a request line (the normal end of a keep-alive
    /// conversation) is not an error; mid-request it is truncation.
    Eof,
    /// A size cap was exceeded; the payload names which limit.
    TooLarge(&'static str),
    Malformed(&'static str),
}

/// Cap on the request line and each header line; a client streaming bytes
/// with no newline must not grow server memory unboundedly.
const MAX_LINE_BYTES: u64 = 16 * 1024;

/// Cap on the number of headers per request.
const MAX_HEADERS: usize = 100;

/// `read_line` with a hard length cap. Returns the line without its
/// terminator; errors when the cap is hit before a newline.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
) -> Result<(), ReadError> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES)
        .read_until(b'\n', buf)
        .map_err(|_| ReadError::Io)?;
    if n == 0 {
        return Err(ReadError::Eof);
    }
    if buf.last() != Some(&b'\n') {
        // Either the peer closed mid-line or the line exceeds the cap.
        return Err(if n as u64 == MAX_LINE_BYTES {
            ReadError::TooLarge("request/header line exceeds 16 KiB")
        } else {
            ReadError::Malformed("truncated request")
        });
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    Ok(())
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = Vec::new();
    // EOF before any request bytes is a clean close (the normal end of a
    // keep-alive conversation), not a protocol error.
    read_line_bounded(reader, &mut line).map_err(|e| match e {
        ReadError::Eof => ReadError::Io,
        other => other,
    })?;
    let line = String::from_utf8(line).map_err(|_| ReadError::Malformed("non-UTF-8 request"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ReadError::Malformed("missing path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(ReadError::Malformed("path must be absolute"));
    }

    let mut content_length: u64 = 0;
    let mut keep_alive = false;
    let mut header = Vec::new();
    for n_headers in 0.. {
        if n_headers >= MAX_HEADERS {
            return Err(ReadError::TooLarge("more than 100 headers"));
        }
        read_line_bounded(reader, &mut header).map_err(|e| match e {
            ReadError::Eof => ReadError::Malformed("truncated request"),
            other => other,
        })?;
        if header.is_empty() {
            break;
        }
        let Ok(text) = std::str::from_utf8(&header) else {
            continue; // tolerate non-UTF-8 headers we don't care about
        };
        if let Some((name, value)) = text.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                // Conservative: only an explicit keep-alive opts in; an
                // absent Connection header keeps the historical
                // one-request-per-connection behaviour.
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("body exceeds 16 MiB"));
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body).map_err(|_| ReadError::Io)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request| {
                Response::text(
                    200,
                    format!("{} {} {}", req.method, req.path, req.body.len()),
                )
            }),
        )
        .unwrap()
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_and_responds_over_real_sockets() {
        let server = echo_server();
        let addr = server.addr();
        let resp = roundtrip(
            addr,
            "POST /v1/echo?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("POST /v1/echo 5"), "{resp}");
        // Parallel requests across the pool.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || roundtrip(addr, "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n"))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().contains("GET /ping 0"));
        }
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for i in 0..5 {
            s.write_all(
                format!("GET /req{i} HTTP/1.1\r\nHost: h\r\nConnection: keep-alive\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
            let resp = read_one_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
            assert!(resp.contains(&format!("GET /req{i} 0")), "{resp}");
        }
        // Dropping the keep-alive header closes the connection after the
        // response.
        s.write_all(b"GET /last HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        let resp = read_one_response(&mut s);
        assert!(resp.contains("Connection: close"), "{resp}");
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server closed after Connection: close");
        server.shutdown();
    }

    /// Reads exactly one HTTP response (headers + Content-Length body) so a
    /// keep-alive socket can be reused for the next request.
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            s.read_exact(&mut byte).unwrap();
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf.clone()).unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).unwrap();
        head + &String::from_utf8(body).unwrap()
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server();
        let resp = roundtrip(server.addr(), "NONSENSE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = roundtrip(
            server.addr(),
            "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let server = echo_server();
        let resp = roundtrip(
            server.addr(),
            &format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn unbounded_header_lines_are_rejected_not_buffered() {
        let server = echo_server();
        // A header line past the 16 KiB cap must get 413, not grow memory.
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(2 * MAX_LINE_BYTES as usize)
        );
        let resp = roundtrip(server.addr(), &huge);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        // Too many headers are likewise bounded.
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..200 {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        let resp = roundtrip(server.addr(), &many);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn handler_panics_become_500() {
        let server = Server::bind(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request| {
                if req.path == "/boom" {
                    panic!("handler exploded");
                }
                Response::text(200, "ok")
            }),
        )
        .unwrap();
        let resp = roundtrip(server.addr(), "GET /boom HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        // The worker survives the panic.
        let resp = roundtrip(server.addr(), "GET /fine HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }
}
