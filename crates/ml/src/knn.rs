//! 1-nearest-neighbour over categorical rows.
//!
//! The paper's "braindead" baseline (§3): with one-hot encoding, Euclidean
//! distance reduces to Hamming distance over the categorical codes, so the
//! model is literally "find the most-matching training row". Its behaviour
//! under NoJoin (memorise FK, match on it) is the paper's §5.1 lens for
//! explaining the RBF-SVM.

use crate::binenc::PodVec;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;
use crate::svm::kernel::match_count;

/// A fitted (i.e. memorised) 1-NN classifier.
///
/// The memorised training matrix lives behind [`PodVec`] so a format-v3
/// artifact loaded via mmap scans neighbours straight out of the mapped
/// file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OneNearestNeighbor {
    pub(crate) d: usize,
    pub(crate) rows: PodVec<u32>,
    pub(crate) labels: Vec<bool>,
}

impl OneNearestNeighbor {
    /// "Fits" by storing the training set.
    pub fn fit(ds: &CatDataset) -> Result<Self> {
        if ds.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit 1-NN on an empty dataset".into(),
            });
        }
        let d = ds.n_features();
        let mut rows = Vec::with_capacity(ds.n_rows() * d);
        for i in 0..ds.n_rows() {
            rows.extend_from_slice(ds.row(i));
        }
        Ok(Self {
            d,
            rows: rows.into(),
            labels: ds.labels().to_vec(),
        })
    }

    /// Index of the nearest training row (maximum match count; first wins on
    /// ties, matching the determinism the experiments need).
    pub fn nearest(&self, row: &[u32]) -> usize {
        let mut best = 0usize;
        let mut best_m = 0u32;
        let mut first = true;
        for (i, train) in self.rows.chunks_exact(self.d).enumerate() {
            let m = match_count(train, row);
            if first || m > best_m {
                best = i;
                best_m = m;
                first = false;
            }
        }
        best
    }

    /// Number of memorised examples.
    pub fn n_train(&self) -> usize {
        self.labels.len()
    }
}

impl Classifier for OneNearestNeighbor {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.labels[self.nearest(row)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn meta(d: usize, k: u32) -> Vec<FeatureMeta> {
        (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect()
    }

    #[test]
    fn memorises_training_data() {
        let ds =
            CatDataset::new(meta(2, 3), vec![0, 0, 1, 1, 2, 2], vec![true, false, true]).unwrap();
        let knn = OneNearestNeighbor::fit(&ds).unwrap();
        assert!((knn.accuracy(&ds) - 1.0).abs() < 1e-12);
        assert_eq!(knn.n_train(), 3);
    }

    #[test]
    fn nearest_by_hamming() {
        let ds = CatDataset::new(
            meta(3, 4),
            vec![
                0, 1, 2, //
                3, 3, 3,
            ],
            vec![true, false],
        )
        .unwrap();
        let knn = OneNearestNeighbor::fit(&ds).unwrap();
        // Matches row 0 on two features.
        assert_eq!(knn.nearest(&[0, 1, 3]), 0);
        assert!(knn.predict_row(&[0, 1, 3]));
        // Matches row 1 on two features.
        assert_eq!(knn.nearest(&[3, 3, 0]), 1);
        assert!(!knn.predict_row(&[3, 3, 0]));
    }

    #[test]
    fn ties_break_to_first_row() {
        let ds = CatDataset::new(meta(1, 3), vec![0, 1], vec![true, false]).unwrap();
        let knn = OneNearestNeighbor::fit(&ds).unwrap();
        // Code 2 matches neither: 0 matches each → first row wins.
        assert_eq!(knn.nearest(&[2]), 0);
        assert!(knn.predict_row(&[2]));
    }

    #[test]
    fn empty_rejected() {
        let err = CatDataset::new(meta(1, 2), vec![], vec![]);
        assert!(err.is_err());
    }
}
