//! [`FeatureContract`]: the serializable input contract of a trained model.
//!
//! The paper (§2.2) assumes every feature — foreign keys included — has a
//! known finite domain, optionally with an `Others` slot absorbing unseen
//! values. A contract captures that assumption as data: per feature, the
//! name, star-schema provenance, cardinality and (when known) the full
//! label↔code bijection from `hamlet_relation::CatDomain`. It travels with
//! the model from the generated star schema (`CatDataset::contract`) through
//! tuning (`hamlet-core`) into persisted artifacts (`hamlet-serve`), so a
//! serving endpoint can accept *raw label strings* and dictionary-encode
//! them server-side — the NoJoin FK-as-feature rewrite at ingest — instead
//! of pushing the encoding burden onto every client.

use std::fmt;
use std::sync::Arc;

use hamlet_relation::domain::CatDomain;
use hamlet_relation::fingerprint::Fingerprint;

use crate::binenc::{BinReader, BinWriter};
use crate::dataset::{FeatureMeta, Provenance};
use crate::error::{MlError, Result};

/// Upper bound on per-row violations collected by batch validation and
/// encoding; past this the error reports only the total. Bounds both the
/// work done on hostile batches and the size of error responses.
pub const MAX_COLLECTED_ISSUES: usize = 8;

/// One per-row violation found while validating or encoding a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIssue {
    /// Index of the offending row in the request batch.
    pub row: usize,
    /// Name of the offending feature, when the violation is feature-local
    /// (out-of-domain code, unknown label). `None` for row-level problems
    /// (wrong width).
    pub feature: Option<String>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for RowIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.feature {
            Some(name) => write!(f, "row {} feature `{}`: {}", self.row, name, self.detail),
            None => write!(f, "row {}: {}", self.row, self.detail),
        }
    }
}

/// Why a batch could not be validated or encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The contract carries no dictionary for `feature`, so raw labels
    /// cannot be encoded at all (pre-contract / format-v1 artifacts).
    MissingDomain {
        /// First feature lacking a dictionary.
        feature: String,
    },
    /// Per-row violations, capped at [`MAX_COLLECTED_ISSUES`].
    Rows {
        /// The first violations found, in row order.
        issues: Vec<RowIssue>,
        /// Total number of offending rows (may exceed `issues.len()`).
        total: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::MissingDomain { feature } => write!(
                f,
                "feature `{feature}` has no dictionary in this model's contract; \
                 send pre-encoded `rows` or retrain to a format-v2 artifact"
            ),
            BatchError::Rows { issues, total } => {
                let listed: Vec<String> = issues.iter().map(ToString::to_string).collect();
                write!(f, "{}", listed.join("; "))?;
                if *total > issues.len() {
                    write!(f, " (+{} more offending row(s))", total - issues.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A model's input contract: ordered per-feature metadata, optionally with
/// full label↔code dictionaries. Serializes as a bare array of
/// [`FeatureMeta`] so format-v1 artifact payloads (the same array, minus
/// `domain` entries) deserialize through the identical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureContract {
    features: Vec<FeatureMeta>,
}

impl FeatureContract {
    /// Builds a contract, validating that every supplied dictionary agrees
    /// with its feature's declared cardinality.
    pub fn new(features: Vec<FeatureMeta>) -> Result<Self> {
        if features.is_empty() {
            return Err(MlError::Shape {
                detail: "a feature contract needs at least one feature".into(),
            });
        }
        for f in &features {
            if let Some(domain) = &f.domain {
                if domain.cardinality() != f.cardinality {
                    return Err(MlError::Invalid(format!(
                        "feature `{}` declares cardinality {} but its domain `{}` has {}",
                        f.name,
                        f.cardinality,
                        domain.name(),
                        domain.cardinality()
                    )));
                }
            }
        }
        Ok(Self { features })
    }

    /// Per-feature metadata, in row order.
    pub fn features(&self) -> &[FeatureMeta] {
        &self.features
    }

    /// Metadata of one feature.
    pub fn feature(&self, j: usize) -> &FeatureMeta {
        &self.features[j]
    }

    /// Number of features per row.
    pub fn width(&self) -> usize {
        self.features.len()
    }

    /// Whether every feature carries its dictionary (required for
    /// raw-label encoding).
    pub fn has_domains(&self) -> bool {
        self.features.iter().all(|f| f.domain.is_some())
    }

    /// Whether feature `j`'s domain is *open* — it has an `Others` slot that
    /// absorbs labels never seen at training time.
    pub fn is_open(&self, j: usize) -> bool {
        self.features[j]
            .domain
            .as_ref()
            .is_some_and(|d| d.others_code().is_some())
    }

    /// Order-sensitive fingerprint of the feature space: names,
    /// cardinalities, provenance and dictionary labels. Two models with
    /// equal fingerprints consume bit-identical input batches.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.features.len() as u64);
        for f in &self.features {
            fp.write_str(&f.name);
            fp.write_u64(u64::from(f.cardinality));
            let (tag, dim) = match f.provenance {
                Provenance::Home => (0u64, 0usize),
                Provenance::ForeignKey { dim } => (1, dim),
                Provenance::Foreign { dim } => (2, dim),
            };
            fp.write_u64(tag).write_u64(dim as u64);
            match &f.domain {
                None => {
                    fp.write_u64(0);
                }
                Some(domain) => {
                    fp.write_u64(1).write_u64(u64::from(domain.cardinality()));
                    for label in domain.labels() {
                        fp.write_str(label);
                    }
                }
            }
        }
        fp.finish()
    }

    /// Validates a batch of pre-encoded rows (width and per-feature code
    /// range), returning the flattened row-major buffer the batched predict
    /// hot path consumes. All offending rows are found (not just the
    /// first); the first [`MAX_COLLECTED_ISSUES`] are reported in detail.
    pub fn validate_batch(&self, rows: &[Vec<u32>]) -> std::result::Result<Vec<u32>, BatchError> {
        let d = self.width();
        let mut flat = Vec::with_capacity(rows.len() * d);
        let mut issues = Vec::new();
        let mut total = 0usize;
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                total += 1;
                if issues.len() < MAX_COLLECTED_ISSUES {
                    issues.push(RowIssue {
                        row: i,
                        feature: None,
                        detail: format!("has {} codes; expected {d} features per row", row.len()),
                    });
                }
                continue;
            }
            let mut row_bad = false;
            for (meta, &code) in self.features.iter().zip(row) {
                if code >= meta.cardinality {
                    row_bad = true;
                    if issues.len() < MAX_COLLECTED_ISSUES {
                        issues.push(RowIssue {
                            row: i,
                            feature: Some(meta.name.clone()),
                            detail: format!(
                                "code {code} out of domain (cardinality {})",
                                meta.cardinality
                            ),
                        });
                    }
                }
            }
            if row_bad {
                total += 1;
            } else {
                flat.extend_from_slice(row);
            }
        }
        if total > 0 {
            return Err(BatchError::Rows { issues, total });
        }
        Ok(flat)
    }

    /// Dictionary-encodes a batch of raw label rows into the flattened
    /// row-major code buffer. Labels unseen at training time fall back to
    /// the `Others` slot on open domains (the paper's §2.2 convention) and
    /// are per-row errors on closed domains.
    pub fn encode_batch(&self, rows: &[Vec<String>]) -> std::result::Result<Vec<u32>, BatchError> {
        if let Some(missing) = self.features.iter().find(|f| f.domain.is_none()) {
            return Err(BatchError::MissingDomain {
                feature: missing.name.clone(),
            });
        }
        let d = self.width();
        let mut flat = Vec::with_capacity(rows.len() * d);
        let mut issues = Vec::new();
        let mut total = 0usize;
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                total += 1;
                if issues.len() < MAX_COLLECTED_ISSUES {
                    issues.push(RowIssue {
                        row: i,
                        feature: None,
                        detail: format!("has {} labels; expected {d} features per row", row.len()),
                    });
                }
                continue;
            }
            let mark = flat.len();
            let mut row_bad = false;
            for (meta, label) in self.features.iter().zip(row) {
                let domain = meta.domain.as_ref().expect("checked above");
                match domain.encode(label) {
                    Some(code) => flat.push(code),
                    None => {
                        row_bad = true;
                        if issues.len() < MAX_COLLECTED_ISSUES {
                            issues.push(RowIssue {
                                row: i,
                                feature: Some(meta.name.clone()),
                                detail: format!(
                                    "label `{label}` not in closed domain `{}` \
                                     (no `Others` slot)",
                                    domain.name()
                                ),
                            });
                        }
                    }
                }
            }
            if row_bad {
                total += 1;
                flat.truncate(mark);
            }
        }
        if total > 0 {
            return Err(BatchError::Rows { issues, total });
        }
        Ok(flat)
    }

    /// Decodes one row of codes back into labels. Errors when the contract
    /// lacks a dictionary or a code is out of range.
    pub fn decode_row(&self, codes: &[u32]) -> Result<Vec<String>> {
        if codes.len() != self.width() {
            return Err(MlError::Shape {
                detail: format!(
                    "row has {} codes; contract has {} features",
                    codes.len(),
                    self.width()
                ),
            });
        }
        let mut labels = Vec::with_capacity(codes.len());
        for (j, (meta, &code)) in self.features.iter().zip(codes).enumerate() {
            let domain = meta.domain.as_ref().ok_or_else(|| {
                MlError::Invalid(format!("feature `{}` has no dictionary", meta.name))
            })?;
            if !domain.contains(code) {
                return Err(MlError::BadCode {
                    feature: j,
                    code,
                    cardinality: meta.cardinality,
                });
            }
            labels.push(domain.label(code).to_string());
        }
        Ok(labels)
    }
}

/// Deduplicating pool of dictionaries for by-reference contract encoding.
///
/// The star schema shares one `CatDomain` allocation between a fact table's
/// FK column and the dimension's RID column, but v2 JSON artifacts inline
/// the labels once per *feature* that references them. Format v3 restores
/// the sharing on disk: every distinct domain is interned here exactly once
/// (deduplicated first by allocation, then by content, so domains that were
/// split by an earlier JSON load re-merge), features reference domains by
/// index, and decoding rebuilds one shared `Arc` per distinct dictionary.
#[derive(Debug, Default)]
pub struct DomainInterner {
    domains: Vec<Arc<CatDomain>>,
}

impl DomainInterner {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `domain` in the pool, interning it on first sight.
    pub fn intern(&mut self, domain: &Arc<CatDomain>) -> u32 {
        for (i, existing) in self.domains.iter().enumerate() {
            if Arc::ptr_eq(existing, domain) || **existing == **domain {
                return i as u32;
            }
        }
        self.domains.push(Arc::clone(domain));
        (self.domains.len() - 1) as u32
    }

    /// Interned domains, in reference order.
    pub fn domains(&self) -> &[Arc<CatDomain>] {
        &self.domains
    }

    /// Number of distinct dictionaries interned.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no dictionary was interned.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Writes the pool as the format-v3 `DICT` section: a count, then per
    /// domain its name and labels as length-prefixed strings.
    pub fn encode_bin(&self, w: &mut BinWriter) {
        w.put_u32(self.domains.len() as u32);
        for domain in &self.domains {
            w.put_str(domain.name());
            w.put_u32(domain.cardinality());
            for label in domain.labels() {
                w.put_str(label);
            }
        }
    }

    /// Reads a pool written by [`DomainInterner::encode_bin`]. Each domain
    /// is rebuilt through `CatDomain::new`, so the code index and `Others`
    /// slot are re-derived and duplicate labels in a corrupted file are
    /// rejected.
    pub fn decode_bin(r: &mut BinReader) -> Result<Vec<Arc<CatDomain>>> {
        let count = r.read_u32()? as usize;
        let mut domains = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let name = r.read_str()?;
            let n_labels = r.read_u32()? as usize;
            if n_labels > r.remaining() / 4 {
                return Err(MlError::Invalid(format!(
                    "corrupt dictionary `{name}`: {n_labels} labels overrun section"
                )));
            }
            let labels = (0..n_labels)
                .map(|_| r.read_str())
                .collect::<Result<Vec<_>>>()?;
            domains.push(CatDomain::new(name, labels)?.into_shared());
        }
        Ok(domains)
    }
}

impl FeatureContract {
    /// Serializes the contract with dictionaries *by reference*: the JSON
    /// form of each feature carries a `domain_ref` index into `pool`
    /// instead of inline labels. Used by the format-v3 `META` section
    /// alongside the pool's binary `DICT` section.
    pub fn serialize_by_ref(&self, pool: &mut DomainInterner) -> serde::Value {
        let features = self
            .features
            .iter()
            .map(|f| {
                serde::Value::Obj(vec![
                    ("name".to_string(), serde::Value::Str(f.name.clone())),
                    (
                        "cardinality".to_string(),
                        serde::Value::Num(serde::Number::UInt(u64::from(f.cardinality))),
                    ),
                    (
                        "provenance".to_string(),
                        serde::Serialize::serialize(&f.provenance),
                    ),
                    (
                        "domain_ref".to_string(),
                        match &f.domain {
                            None => serde::Value::Null,
                            Some(d) => {
                                serde::Value::Num(serde::Number::UInt(u64::from(pool.intern(d))))
                            }
                        },
                    ),
                ])
            })
            .collect();
        serde::Value::Arr(features)
    }

    /// Inverse of [`FeatureContract::serialize_by_ref`], resolving
    /// `domain_ref` indices against a decoded dictionary pool. Referenced
    /// domains are shared (`Arc`) between every feature that names them,
    /// restoring the in-memory dedup that v2 JSON loads lose.
    pub fn deserialize_by_ref(v: &serde::Value, pool: &[Arc<CatDomain>]) -> Result<Self> {
        let invalid = |what: String| MlError::Invalid(format!("corrupt contract: {what}"));
        let serde::Value::Arr(entries) = v else {
            return Err(invalid(format!("expected array, got {}", v.kind())));
        };
        let mut features = Vec::with_capacity(entries.len());
        for (j, entry) in entries.iter().enumerate() {
            let obj = entry
                .as_obj_view("contract feature")
                .map_err(|e| invalid(format!("feature {j}: {e}")))?;
            let name = match obj.field("name") {
                serde::Value::Str(s) => s.clone(),
                other => return Err(invalid(format!("feature {j}: name is {}", other.kind()))),
            };
            let cardinality = match obj.field("cardinality") {
                serde::Value::Num(n) => n
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| invalid(format!("feature `{name}`: bad cardinality")))?,
                other => {
                    return Err(invalid(format!(
                        "feature `{name}`: cardinality is {}",
                        other.kind()
                    )))
                }
            };
            let provenance =
                <Provenance as serde::Deserialize>::deserialize(obj.field("provenance"))
                    .map_err(|e| invalid(format!("feature `{name}`: {e}")))?;
            let domain = match obj.field("domain_ref") {
                serde::Value::Null => None,
                serde::Value::Num(n) => {
                    let idx = n
                        .as_u64()
                        .and_then(|v| usize::try_from(v).ok())
                        .filter(|&i| i < pool.len())
                        .ok_or_else(|| {
                            invalid(format!(
                                "feature `{name}`: domain_ref out of range (pool has {})",
                                pool.len()
                            ))
                        })?;
                    Some(Arc::clone(&pool[idx]))
                }
                other => {
                    return Err(invalid(format!(
                        "feature `{name}`: domain_ref is {}",
                        other.kind()
                    )))
                }
            };
            features.push(FeatureMeta {
                name,
                cardinality,
                provenance,
                domain,
            });
        }
        FeatureContract::new(features)
    }
}

impl serde::Serialize for FeatureContract {
    fn serialize(&self) -> serde::Value {
        serde::Serialize::serialize(&self.features)
    }
}

impl serde::Deserialize for FeatureContract {
    fn deserialize(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let features = Vec::<FeatureMeta>::deserialize(v)?;
        FeatureContract::new(features).map_err(|e| serde::Error(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relation::domain::CatDomain;

    fn contract_open_closed() -> FeatureContract {
        // Feature 0: closed domain {v0, v1}; feature 1: open domain
        // {v0, v1, v2, Others}.
        FeatureContract::new(vec![
            FeatureMeta::with_domain(
                "xs",
                Provenance::Home,
                CatDomain::synthetic("xs", 2).into_shared(),
            ),
            FeatureMeta::with_domain(
                "fk",
                Provenance::ForeignKey { dim: 0 },
                CatDomain::synthetic_with_others("fk", 3).into_shared(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn new_rejects_domain_cardinality_mismatch() {
        let mut meta = FeatureMeta::with_domain(
            "f",
            Provenance::Home,
            CatDomain::synthetic("f", 3).into_shared(),
        );
        meta.cardinality = 5;
        assert!(FeatureContract::new(vec![meta]).is_err());
        assert!(FeatureContract::new(vec![]).is_err());
    }

    #[test]
    fn encode_open_absorbs_closed_rejects() {
        let c = contract_open_closed();
        assert!(!c.is_open(0));
        assert!(c.is_open(1));
        // Known labels encode exactly; unseen FK label hits Others (code 3).
        let flat = c
            .encode_batch(&[
                vec!["v1".into(), "v2".into()],
                vec!["v0".into(), "brand-new-entity".into()],
            ])
            .unwrap();
        assert_eq!(flat, vec![1, 2, 0, 3]);
        // Unseen label on the closed feature is a per-row error naming both
        // the row and the feature.
        let err = c
            .encode_batch(&[
                vec!["v0".into(), "v0".into()],
                vec!["nope".into(), "v0".into()],
            ])
            .unwrap_err();
        match &err {
            BatchError::Rows { issues, total } => {
                assert_eq!(*total, 1);
                assert_eq!(issues[0].row, 1);
                assert_eq!(issues[0].feature.as_deref(), Some("xs"));
            }
            other => panic!("expected Rows, got {other:?}"),
        }
        assert!(err.to_string().contains("row 1"));
        assert!(err.to_string().contains("`xs`"));
    }

    #[test]
    fn encode_without_domains_is_a_contract_error() {
        let c = FeatureContract::new(vec![FeatureMeta::new("f", 4, Provenance::Home)]).unwrap();
        assert!(!c.has_domains());
        match c.encode_batch(&[vec!["v0".into()]]) {
            Err(BatchError::MissingDomain { feature }) => assert_eq!(feature, "f"),
            other => panic!("expected MissingDomain, got {other:?}"),
        }
    }

    #[test]
    fn validate_batch_reports_every_offending_row() {
        let c = contract_open_closed();
        let err = c
            .validate_batch(&[
                vec![0, 1],
                vec![0],    // wrong width
                vec![0, 9], // bad code
                vec![5, 0], // bad code
            ])
            .unwrap_err();
        match err {
            BatchError::Rows { issues, total } => {
                assert_eq!(total, 3);
                assert_eq!(issues.len(), 3);
                assert_eq!(issues[0].row, 1);
                assert!(issues[0].feature.is_none());
                assert_eq!(issues[1].row, 2);
                assert_eq!(issues[1].feature.as_deref(), Some("fk"));
                assert_eq!(issues[2].row, 3);
                assert_eq!(issues[2].feature.as_deref(), Some("xs"));
            }
            other => panic!("expected Rows, got {other:?}"),
        }
        // A clean batch flattens row-major.
        assert_eq!(
            c.validate_batch(&[vec![0, 3], vec![1, 0]]).unwrap(),
            vec![0, 3, 1, 0]
        );
    }

    #[test]
    fn issue_collection_is_capped_but_total_is_exact() {
        let c = contract_open_closed();
        let rows: Vec<Vec<u32>> = (0..20).map(|_| vec![9, 9]).collect();
        match c.validate_batch(&rows).unwrap_err() {
            BatchError::Rows { issues, total } => {
                assert_eq!(total, 20);
                assert_eq!(issues.len(), MAX_COLLECTED_ISSUES);
            }
            other => panic!("expected Rows, got {other:?}"),
        }
    }

    #[test]
    fn decode_then_encode_roundtrips() {
        let c = contract_open_closed();
        for codes in [[0u32, 0], [1, 3], [0, 2]] {
            let labels = c.decode_row(&codes).unwrap();
            let back = c.encode_batch(&[labels]).unwrap();
            assert_eq!(back, codes);
        }
        assert!(c.decode_row(&[0]).is_err());
        assert!(c.decode_row(&[0, 9]).is_err());
    }

    #[test]
    fn serde_roundtrips_as_bare_feature_array() {
        use serde::{Deserialize, Serialize};
        let c = contract_open_closed();
        let v = c.serialize();
        assert!(matches!(v, serde::Value::Arr(_)), "serializes as array");
        let back = FeatureContract::deserialize(&v).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.fingerprint(), c.fingerprint());
    }

    #[test]
    fn by_ref_roundtrip_dedups_shared_domains() {
        use crate::binenc::{BinReader, BinWriter};
        // Three features, two referencing the *same* Arc (FK + RID case)
        // and one open domain; plus a dictionary-less feature.
        let shared = CatDomain::synthetic("d0", 3).into_shared();
        let c = FeatureContract::new(vec![
            FeatureMeta::with_domain("fk", Provenance::ForeignKey { dim: 0 }, Arc::clone(&shared)),
            FeatureMeta::with_domain("rid", Provenance::Foreign { dim: 0 }, Arc::clone(&shared)),
            FeatureMeta::with_domain(
                "open",
                Provenance::Home,
                CatDomain::synthetic_with_others("open", 2).into_shared(),
            ),
            FeatureMeta::new("bare", 4, Provenance::Home),
        ])
        .unwrap();

        let mut pool = DomainInterner::new();
        let v = c.serialize_by_ref(&mut pool);
        assert_eq!(pool.len(), 2, "shared Arc interned once");
        // A content-equal but separately allocated domain also dedups.
        assert_eq!(pool.intern(&CatDomain::synthetic("d0", 3).into_shared()), 0);

        let mut w = BinWriter::new();
        pool.encode_bin(&mut w);
        let mut r = BinReader::over_heap(w.finish());
        let domains = DomainInterner::decode_bin(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(domains.len(), 2);

        let back = FeatureContract::deserialize_by_ref(&v, &domains).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.fingerprint(), c.fingerprint());
        // The decode restores *sharing*, not just equality.
        assert!(Arc::ptr_eq(
            back.feature(0).domain.as_ref().unwrap(),
            back.feature(1).domain.as_ref().unwrap()
        ));
        assert!(back.feature(3).domain.is_none());
        assert!(back.is_open(2));
    }

    #[test]
    fn by_ref_decode_rejects_dangling_refs_and_bad_shapes() {
        let c = contract_open_closed();
        let mut pool = DomainInterner::new();
        let v = c.serialize_by_ref(&mut pool);
        // Dangling domain_ref: pool too small.
        let err = FeatureContract::deserialize_by_ref(&v, &[]).unwrap_err();
        assert!(err.to_string().contains("domain_ref"), "{err}");
        // Non-array contract.
        assert!(FeatureContract::deserialize_by_ref(&serde::Value::Null, &[]).is_err());
        // Cardinality/domain mismatch is caught by FeatureContract::new.
        let wrong_pool = vec![
            CatDomain::synthetic("xs", 9).into_shared(),
            CatDomain::synthetic("fk", 9).into_shared(),
        ];
        assert!(FeatureContract::deserialize_by_ref(&v, &wrong_pool).is_err());
    }

    #[test]
    fn fingerprint_tracks_domains() {
        let a = contract_open_closed();
        let mut features = a.features().to_vec();
        features[1] = FeatureMeta::with_domain(
            "fk",
            Provenance::ForeignKey { dim: 0 },
            CatDomain::new("fk", vec!["x".into(), "y".into(), "z".into(), "w".into()])
                .unwrap()
                .into_shared(),
        );
        let b = FeatureContract::new(features).unwrap();
        // Same names/cardinalities/provenance, different labels.
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
